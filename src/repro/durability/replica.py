"""Hot-standby replication: tail a primary's WAL feed into a local engine.

The primary exposes its log through ``GET /replicate?since=<lsn>``
(served by :mod:`repro.service.server`), returning::

    {"reset": bool, "last_lsn": int,
     "records": [{"lsn": int, "op": str, "data": {...}}, ...]}

:class:`ReplicaTailer` polls that feed from a background thread and
applies each record to a local :class:`~repro.durability.engine.
DurableDynamicRRQ` through :meth:`apply_replicated` — so the standby
writes the primary's records into its *own* WAL under the primary's
LSNs before applying them.  A promoted standby therefore owns a
complete, recoverable log and can serve writes immediately.

When the standby has fallen behind the primary's retained feed window,
the primary answers with ``reset: true`` and a single full-state record;
the tailer applies it and resumes incremental tailing.

Replication lag is ``primary last_lsn − local last_lsn``, measured at
every successful poll and surfaced through :meth:`status` (the service
wires this into ``/healthz`` and ``/metrics``).  Transport errors are
counted, never fatal: the tailer backs off and retries until
:meth:`stop` (called by ``POST /promote``).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import Callable, Optional

from ..errors import ReproError
from ..resilience.faults import fire
from .engine import DurableDynamicRRQ
from .wal import WalRecord

#: Seconds between polls when the standby is fully caught up.
DEFAULT_POLL_INTERVAL_S = 0.05
#: Cap for the exponential error backoff.
MAX_BACKOFF_S = 2.0


def http_feed_fetcher(primary_url: str, *, batch: int = 512,
                      timeout_s: float = 5.0) -> Callable[[int], dict]:
    """A fetch callable hitting ``<primary_url>/replicate`` over HTTP."""
    base = primary_url.rstrip("/")

    def fetch(since: int) -> dict:
        url = f"{base}/replicate?since={int(since)}&limit={int(batch)}"
        with urllib.request.urlopen(url, timeout=timeout_s) as resp:
            return json.loads(resp.read().decode("utf-8"))

    return fetch


class ReplicaTailer:
    """Background thread keeping a standby engine in sync with a primary.

    ``source`` is either a primary base URL (``http://host:port``) or a
    callable ``fetch(since_lsn) -> feed dict`` (used by in-process
    tests).  The tailer never mutates the engine except through
    :meth:`DurableDynamicRRQ.apply_replicated`, so every applied record
    is WAL-durable on the standby before it is visible to queries.
    """

    def __init__(self, engine: DurableDynamicRRQ, source,
                 poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
                 batch: int = 512) -> None:
        self.engine = engine
        self._batch = int(batch)
        self._fetch, self._source_url = self._make_fetch(source)
        self.poll_interval_s = float(poll_interval_s)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._lag = -1            # unknown until the first successful poll
        self._applied = 0
        self._resets = 0
        self._errors = 0
        self._last_error = ""
        self._last_poll_at = 0.0

    def _make_fetch(self, source):
        if callable(source):
            return source, None
        return (http_feed_fetcher(str(source), batch=self._batch),
                str(source).rstrip("/"))

    def retarget(self, source) -> None:
        """Tail a different primary from the next poll on (failover).

        The local engine's LSN lineage continues unchanged: the new
        primary either serves the tail after our ``last_lsn`` or answers
        with a full-state ``reset`` if we are outside its retained
        window — both are the normal tailing paths.
        """
        fetch, url = self._make_fetch(source)
        with self._lock:
            self._fetch = fetch
            self._source_url = url

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReplicaTailer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._run,
                                        name="repro-replica-tailer",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop tailing (idempotent).  Called on shutdown and promote."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout_s)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # one poll step (public so tests can drive it synchronously)
    # ------------------------------------------------------------------
    def poll_once(self) -> int:
        """Fetch and apply one feed batch; returns records applied."""
        fire("replicate.apply")
        with self._lock:
            fetch = self._fetch
        feed = fetch(self.engine.last_lsn)
        records = feed.get("records", [])
        applied = 0
        for raw in records:
            record = WalRecord(lsn=int(raw["lsn"]), op=str(raw["op"]),
                               data=raw.get("data", {}))
            if self.engine.apply_replicated(record):
                applied += 1
        with self._lock:
            if feed.get("reset"):
                self._resets += 1
            self._applied += applied
            self._lag = max(0, int(feed.get("last_lsn", 0))
                            - self.engine.last_lsn)
            self._last_poll_at = time.time()  # wall-clock: display only
            self._last_error = ""
        return applied

    def _run(self) -> None:
        backoff = self.poll_interval_s
        while not self._stop.is_set():
            try:
                applied = self.poll_once()
            except (urllib.error.URLError, OSError, ValueError,
                    ReproError) as exc:
                with self._lock:
                    self._errors += 1
                    self._last_error = f"{type(exc).__name__}: {exc}"
                self._stop.wait(backoff)
                backoff = min(backoff * 2, MAX_BACKOFF_S)
                continue
            backoff = self.poll_interval_s
            if applied == 0:
                self._stop.wait(self.poll_interval_s)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Snapshot for ``/healthz`` and ``/metrics``."""
        with self._lock:
            return {
                "running": self.running,
                "lag": self._lag,
                "caught_up": self._lag == 0,
                "source": self._source_url,
                "applied_records": self._applied,
                "feed_resets": self._resets,
                "poll_errors": self._errors,
                "last_error": self._last_error,
                "last_poll_at": self._last_poll_at,
                "local_last_lsn": self.engine.last_lsn,
            }
