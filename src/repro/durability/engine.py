"""``DurableDynamicRRQ``: the log-before-apply wrapper around the
dynamic engine.

Every mutation follows the same three-step dance, serialized under one
reentrant lock shared with the query path::

    validate  ->  WAL append (+fsync per policy)  ->  apply in memory
                  ^^^^^^^^^^ the acknowledgment point

A mutation is acknowledged to the caller only after its record is in
the log, so a crash at any instant loses *at most* unacknowledged work;
recovery loads the latest committed snapshot, replays the WAL tail
(records at or below the snapshot barrier are skipped — replay is
idempotent by LSN), drops a torn trailing record, and refuses with
:class:`~repro.errors.WalCorruptionError` on mid-log damage.

Replication rides the same log: the engine retains recent records in
memory and serves them through :meth:`replication_feed`; a standby that
has fallen behind the retained window (or starts empty) receives a
``reset`` record carrying the full state, then tails incrementally.
:meth:`apply_replicated` is the standby half — it persists the
primary's records under the primary's LSNs into the standby's own WAL
before applying them, so a promoted standby is itself durable.
"""

from __future__ import annotations

import json
import shutil
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, List, Optional, Tuple, Union

import numpy as np

from ..data.datasets import check_query_point
from ..data.io import atomic_write_bytes
from ..errors import DataValidationError, InvalidParameterError
from ..ext.dynamic import DynamicRRQEngine
from ..obs.trace import span
from ..resilience.faults import fire
from ..storage import DEFAULT_SEAL_ROWS, SegmentStore
from ..storage.manifest import CURRENT_NAME as _STORE_CURRENT_NAME
from .snapshot import load_snapshot, sweep_orphans, write_snapshot
from .wal import WalRecord, WalWriter, read_wal, wal_path

PathLike = Union[str, Path]

_PARAMS_NAME = "engine.json"

#: Subdirectory a segmented engine keeps its store in.
SEGMENTS_DIRNAME = "segments"

#: Storage backends: ``flat`` rebuilds kernel arrays on mutation (the
#: original DynamicRRQEngine), ``segmented`` is the MVCC segment store,
#: ``auto`` detects what the directory holds (fresh dirs become flat).
BACKENDS = ("auto", "flat", "segmented")

#: Every op the WAL may carry (``reset`` is the full-state transfer).
WAL_OPS = ("insert_product", "delete_product", "modify_product",
           "insert_weight", "delete_weight", "modify_weight",
           "compact", "rebuild", "reset")

#: How many applied records are retained in memory for the feed.
DEFAULT_FEED_RETAIN = 65536

#: Most records one ``replication_feed`` response returns.
DEFAULT_FEED_BATCH = 512


def _vector_list(row: np.ndarray) -> List[float]:
    """Exact JSON encoding of one vector (Python float repr round-trips)."""
    return [float(x) for x in row]


class DurableDynamicRRQ:
    """A :class:`DynamicRRQEngine` whose mutations survive crashes.

    Parameters
    ----------
    directory:
        The durability directory (WAL + snapshots + params).  When it
        already holds state, recovery runs and the constructor's engine
        parameters are ignored in favor of the persisted ones.
    dim:
        Required when creating a fresh directory.
    fsync:
        WAL fsync policy — ``always`` (acknowledged writes survive power
        loss), ``interval`` (survive process death; a machine crash may
        lose the last interval), ``never`` (flush to the OS only).
    snapshot_every:
        Take a snapshot automatically after this many applied mutations
        (0 disables; :meth:`snapshot` is always available manually).
    backend:
        ``flat`` | ``segmented`` | ``auto`` (detect from the directory;
        fresh directories default to ``flat``).  The choice is recorded
        in ``engine.json`` and enforced on reopen.
    seal_every:
        Segmented only: seal the delta into a new segment once it holds
        this many buffered mutations (0 disables auto-seal).
    auto_compact:
        Segmented only: run the background compactor thread.
    """

    method = "durable-dynamic"

    def __init__(self, directory: PathLike, dim: Optional[int] = None,
                 value_range: float = 1.0, partitions: int = 32,
                 chunk: int = 256, fsync: str = "always",
                 fsync_interval_s: float = 0.05,
                 snapshot_every: int = 0,
                 feed_retain: int = DEFAULT_FEED_RETAIN,
                 backend: str = "auto",
                 seal_every: int = DEFAULT_SEAL_ROWS,
                 auto_compact: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.lock = threading.RLock()
        self._fsync_policy = fsync
        self._fsync_interval_s = fsync_interval_s
        self.snapshot_every = max(0, int(snapshot_every))
        self.seal_every = max(0, int(seal_every))
        self._auto_compact = bool(auto_compact)
        self.snapshots_taken = 0
        self.replayed_records = 0
        self.replay_time_s = 0.0
        self.snapshot_lsn = 0
        self._mutations_since_snapshot = 0
        self._feed: Deque[WalRecord] = deque(maxlen=max(1, int(feed_retain)))

        self._stored_backend: Optional[str] = None
        params = self._load_params()
        self.backend = self._resolve_backend(backend)
        if params is None:
            if dim is None:
                raise InvalidParameterError(
                    f"{self.directory} holds no engine state and no 'dim' "
                    "was given to create one"
                )
            params = {"dim": int(dim), "value_range": float(value_range),
                      "partitions": int(partitions), "chunk": int(chunk)}
            self._write_params(params)
        self.params = params
        self.engine = self._make_engine(params)
        self._recover()
        if self.backend == "segmented" and self._auto_compact:
            self.engine.start_compactor()

    # ------------------------------------------------------------------
    # construction / recovery
    # ------------------------------------------------------------------

    def _params_path(self) -> Path:
        return self.directory / _PARAMS_NAME

    def _load_params(self) -> Optional[dict]:
        target = self._params_path()
        if not target.exists():
            return None
        try:
            params = json.loads(target.read_text())
            if isinstance(params.get("backend"), str):
                self._stored_backend = params["backend"]
            return {"dim": int(params["dim"]),
                    "value_range": float(params["value_range"]),
                    "partitions": int(params["partitions"]),
                    "chunk": int(params["chunk"])}
        except (ValueError, KeyError, TypeError):
            raise DataValidationError(
                f"{target}: malformed engine parameter file"
            ) from None

    def _write_params(self, params: dict) -> None:
        body = dict(params)
        body["backend"] = self.backend
        atomic_write_bytes(
            self._params_path(),
            json.dumps(body, indent=2, sort_keys=True).encode(),
        )

    def _resolve_backend(self, requested: str) -> str:
        """Reconcile the requested backend with what the directory holds.

        Priority: the backend recorded in ``engine.json``, then what
        the on-disk layout implies (a store manifest vs. flat snapshot/
        WAL state), then the request itself — ``auto`` resolving to
        ``flat`` for a fresh directory.  An explicit request that
        contradicts existing state is refused rather than silently
        reinterpreting acknowledged data.
        """
        if requested not in BACKENDS:
            raise InvalidParameterError(
                f"unknown storage backend {requested!r}; "
                f"expected one of {BACKENDS}"
            )
        persisted = self._stored_backend
        if persisted is None:
            seg_current = (self.directory / SEGMENTS_DIRNAME
                           / _STORE_CURRENT_NAME)
            if seg_current.exists():
                persisted = "segmented"
            elif (self.directory / "CURRENT").exists() or \
                    any(self.directory.glob("snapshot-*")) or \
                    wal_path(self.directory).exists():
                persisted = "flat"
        if persisted is not None:
            if requested not in ("auto", persisted):
                raise InvalidParameterError(
                    f"{self.directory} holds {persisted!r} storage; "
                    f"cannot open it with backend={requested!r}"
                )
            return persisted
        return "flat" if requested == "auto" else requested

    def _make_engine(self, params: dict):
        """Construct (or reopen) the storage engine for ``self.backend``."""
        if self.backend != "segmented":
            return DynamicRRQEngine(**params)
        seg_dir = self.directory / SEGMENTS_DIRNAME
        if (seg_dir / _STORE_CURRENT_NAME).exists():
            return SegmentStore.from_directory(seg_dir,
                                               chunk=params["chunk"])
        return SegmentStore(directory=seg_dir, **params)

    def _recover(self) -> None:
        """Committed state + WAL tail replay (LSN-idempotent).

        Flat: load the latest snapshot, replay records past its barrier.
        Segmented: the store already reopened at its manifest barrier
        (``applied_lsn``); replay reconstructs the delta — the records
        past that barrier — with identical global ids every time.
        """
        started = time.perf_counter()
        applied = 0
        if self.backend == "segmented":
            applied = self.snapshot_lsn = int(self.engine.applied_lsn)
        else:
            snap = load_snapshot(self.directory)
            if snap is not None:
                self.engine.load_state_arrays(
                    snap["products"], snap["p_alive"],
                    snap["weights"], snap["w_alive"],
                )
                applied = self.snapshot_lsn = snap["lsn"]
        records, valid_bytes, _torn = read_wal(wal_path(self.directory))
        self._wal_records: List[WalRecord] = list(records)
        for record in records:
            if record.lsn <= applied:
                continue  # at or below the snapshot barrier: already in
            self._apply(record)
            applied = record.lsn
            self.replayed_records += 1
        self._feed.extend(records)
        last_lsn = max(applied,
                       records[-1].lsn if records else 0)
        self._wal = WalWriter(
            wal_path(self.directory),
            fsync=self._fsync_policy,
            fsync_interval_s=self._fsync_interval_s,
            truncate_to=valid_bytes,
            next_lsn=last_lsn + 1,
        )
        self.replay_time_s = time.perf_counter() - started
        sweep_orphans(self.directory)

    @classmethod
    def open(cls, directory: PathLike, **kwargs) -> "DurableDynamicRRQ":
        """Open (recover) or create a durability directory (alias)."""
        return cls(directory, **kwargs)

    @classmethod
    def bootstrap(cls, directory: PathLike, products, weights,
                  partitions: int = 32, chunk: int = 256,
                  fsync: str = "always",
                  snapshot_every: int = 0,
                  backend: str = "auto") -> "DurableDynamicRRQ":
        """Seed a fresh durability directory from static containers.

        The whole initial state is logged as one ``reset`` record (so a
        standby tailing from LSN 0 receives it) and then captured in a
        snapshot, leaving a truncated WAL.
        """
        engine = DynamicRRQEngine.from_datasets(
            products, weights, partitions=partitions, chunk=chunk
        )
        durable = cls.open(directory, fsync=fsync,
                           snapshot_every=snapshot_every,
                           dim=products.dim,
                           value_range=products.value_range,
                           partitions=partitions, chunk=chunk,
                           backend=backend)
        if durable.last_lsn:
            return durable  # directory already had history: recover wins
        state = engine.state_arrays()
        durable._log_and_apply("reset", {
            "params": durable.params,
            "products": [_vector_list(r) for r in state["products"]],
            "p_alive": [bool(x) for x in state["p_alive"]],
            "weights": [_vector_list(r) for r in state["weights"]],
            "w_alive": [bool(x) for x in state["w_alive"]],
        })
        durable.snapshot()
        return durable

    # ------------------------------------------------------------------
    # the WAL state machine
    # ------------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """LSN of the last acknowledged (logged) mutation."""
        if hasattr(self, "_wal"):
            return self._wal.last_lsn
        return 0

    def _validate(self, op: str, data: dict) -> None:
        """Reject a bad mutation *before* it reaches the log.

        Log-before-apply only works if apply cannot fail on anything a
        caller can get wrong; everything the engine would reject is
        checked here first, so a validation error leaves no record.
        """
        dim = self.params["dim"]
        if op == "insert_product":
            row = check_query_point(data["vector"], dim)
            if row.max(initial=0.0) >= self.params["value_range"]:
                raise DataValidationError(
                    "product values must lie in [0, value_range)"
                )
        elif op == "insert_weight":
            row = check_query_point(data["vector"], dim)
            total = float(row.sum())
            if data.get("renormalize"):
                if total <= 0:
                    raise DataValidationError("weight vector sums to zero")
            elif abs(total - 1.0) > 1e-6:
                raise DataValidationError(
                    f"weight vector sums to {total:.6f}, expected 1.0"
                )
        elif op == "modify_product":
            row = check_query_point(data["vector"], dim)
            if row.max(initial=0.0) >= self.params["value_range"]:
                raise DataValidationError(
                    "product values must lie in [0, value_range)"
                )
            self.engine.products[int(data["index"])]  # raises if not live
        elif op == "modify_weight":
            row = check_query_point(data["vector"], dim)
            total = float(row.sum())
            if data.get("renormalize"):
                if total <= 0:
                    raise DataValidationError("weight vector sums to zero")
            elif abs(total - 1.0) > 1e-6:
                raise DataValidationError(
                    f"weight vector sums to {total:.6f}, expected 1.0"
                )
            self.engine.weights[int(data["index"])]
        elif op == "delete_product":
            self.engine.products[int(data["index"])]  # raises if not live
        elif op == "delete_weight":
            self.engine.weights[int(data["index"])]
        elif op not in WAL_OPS:
            raise InvalidParameterError(f"unknown WAL op {op!r}")

    def _apply(self, record: WalRecord):
        """Apply one (already validated/logged) record to the engine."""
        result = self._dispatch(record)
        if self.backend == "segmented":
            self.engine.note_lsn(record.lsn)
        return result

    def _dispatch(self, record: WalRecord):
        op, data = record.op, record.data
        if op == "insert_product":
            return self.engine.insert_product(
                np.asarray(data["vector"], dtype=np.float64))
        if op == "delete_product":
            return self.engine.delete_product(int(data["index"]))
        if op == "modify_product":
            return self.engine.modify_product(
                int(data["index"]),
                np.asarray(data["vector"], dtype=np.float64))
        if op == "insert_weight":
            return self.engine.insert_weight(
                np.asarray(data["vector"], dtype=np.float64),
                renormalize=bool(data.get("renormalize", False)))
        if op == "delete_weight":
            return self.engine.delete_weight(int(data["index"]))
        if op == "modify_weight":
            return self.engine.modify_weight(
                int(data["index"]),
                np.asarray(data["vector"], dtype=np.float64),
                renormalize=bool(data.get("renormalize", False)))
        if op == "compact":
            return self.engine.compact()
        if op == "rebuild":
            return self.engine.rebuild()
        if op == "reset":
            return self._apply_reset(data)
        raise InvalidParameterError(f"unknown WAL op {op!r}")

    def _apply_reset(self, data: dict) -> None:
        params = {"dim": int(data["params"]["dim"]),
                  "value_range": float(data["params"]["value_range"]),
                  "partitions": int(data["params"]["partitions"]),
                  "chunk": int(data["params"]["chunk"])}
        if params != self.params:
            listeners = self.engine._change_listeners
            self.params = params
            self._write_params(params)
            if self.backend == "segmented":
                # A reset replaces the lineage wholesale: drop the old
                # store directory and start a fresh one (the caller
                # checkpoints right after, recommitting the manifest).
                self.engine.close()
                seg_dir = self.directory / SEGMENTS_DIRNAME
                shutil.rmtree(seg_dir, ignore_errors=True)
                self.engine = SegmentStore(directory=seg_dir, **params)
                if self._auto_compact:
                    self.engine.start_compactor()
            else:
                self.engine = DynamicRRQEngine(**params)
            self.engine._change_listeners = listeners
        dim = params["dim"]
        products = np.asarray(data["products"],
                              dtype=np.float64).reshape(-1, dim)
        weights = np.asarray(data["weights"],
                             dtype=np.float64).reshape(-1, dim)
        self.engine.load_state_arrays(
            products, np.asarray(data["p_alive"], dtype=bool),
            weights, np.asarray(data["w_alive"], dtype=bool),
        )

    def _log_and_apply(self, op: str, data: dict):
        """validate -> append (ack) -> apply; returns (lsn, apply result)."""
        with self.lock:
            self._validate(op, data)
            with span("wal.append") as sp:
                sp.annotate("op", op)
                record = self._wal.append(op, data)
                sp.annotate("lsn", record.lsn)
            result = self._apply(record)
            self._wal_records.append(record)
            self._feed.append(record)
            self._mutations_since_snapshot += 1
            if self.backend == "segmented" and self.seal_every and \
                    self.engine.delta_rows() >= self.seal_every:
                # Non-blocking: if the compactor holds the maintenance
                # lock the seal simply waits for a later mutation.
                self.engine.seal(blocking=False)
            if self.snapshot_every and \
                    self._mutations_since_snapshot >= self.snapshot_every:
                self.snapshot()
            return record.lsn, result

    # ------------------------------------------------------------------
    # mutations (the public, acknowledged API)
    # ------------------------------------------------------------------

    def insert_product(self, vector) -> Tuple[int, int]:
        """Durably add a product; returns ``(stable index, lsn)``."""
        lsn, idx = self._log_and_apply(
            "insert_product", {"vector": _vector_list(
                np.asarray(vector, dtype=np.float64).reshape(-1))})
        return idx, lsn

    def delete_product(self, index: int) -> int:
        """Durably tombstone a product; returns the mutation's LSN."""
        lsn, _ = self._log_and_apply("delete_product",
                                     {"index": int(index)})
        return lsn

    def insert_weight(self, vector, renormalize: bool = False
                      ) -> Tuple[int, int]:
        """Durably add a preference; returns ``(stable index, lsn)``."""
        lsn, idx = self._log_and_apply(
            "insert_weight",
            {"vector": _vector_list(
                np.asarray(vector, dtype=np.float64).reshape(-1)),
             "renormalize": bool(renormalize)})
        return idx, lsn

    def delete_weight(self, index: int) -> int:
        """Durably tombstone a preference; returns the mutation's LSN."""
        lsn, _ = self._log_and_apply("delete_weight", {"index": int(index)})
        return lsn

    def modify_product(self, index: int, vector) -> Tuple[int, int]:
        """Durably replace a product; returns ``(new index, lsn)``.

        Logged as one record, applied as one atomic tombstone+insert —
        no snapshot or replica ever observes the in-between state.
        """
        lsn, idx = self._log_and_apply(
            "modify_product",
            {"index": int(index),
             "vector": _vector_list(
                 np.asarray(vector, dtype=np.float64).reshape(-1))})
        return idx, lsn

    def modify_weight(self, index: int, vector,
                      renormalize: bool = False) -> Tuple[int, int]:
        """Durably replace a preference; returns ``(new index, lsn)``."""
        lsn, idx = self._log_and_apply(
            "modify_weight",
            {"index": int(index),
             "vector": _vector_list(
                 np.asarray(vector, dtype=np.float64).reshape(-1)),
             "renormalize": bool(renormalize)})
        return idx, lsn

    def compact(self):
        """Drop tombstones; returns ``(p_map, w_map, lsn)``.

        The maps give, per old stable index, the new index or -1 — so
        callers (and replicas, which replay the same op) keep stable
        ids across the physical reshuffle.

        Flat backend: logged, because compaction *renumbers* ids and a
        replica must replay the identical reshuffle.  Segmented
        backend: purely physical (ids are stable), so nothing is
        logged — the store seals, merges every segment, and the maps
        are identity for live ids.
        """
        if self.backend == "segmented":
            with self.lock:
                p_map, w_map = self.engine.compact()
                return p_map, w_map, self.last_lsn
        lsn, maps = self._log_and_apply("compact", {})
        return maps[0], maps[1], lsn

    def rebuild(self) -> int:
        """Durably force a weight-axis rebuild; returns the LSN."""
        lsn, _ = self._log_and_apply("rebuild", {})
        return lsn

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> int:
        """Capture the current state, then truncate the WAL at its barrier.

        Returns the barrier LSN.  Crash-safe at every step: the
        ``CURRENT`` pointer flip is the commit point, and replay is
        LSN-idempotent, so a WAL that outlives its snapshot is harmless.
        """
        with self.lock:
            self._wal.sync()
            barrier = self.last_lsn
            if self.backend == "segmented":
                # Seal the delta and advance the manifest barrier: the
                # store's CURRENT flip is the commit point here.
                self.engine.checkpoint(barrier)
            else:
                state = self.engine.state_arrays()
                write_snapshot(
                    self.directory, lsn=barrier,
                    products=state["products"], p_alive=state["p_alive"],
                    weights=state["weights"], w_alive=state["w_alive"],
                    meta=dict(self.params),
                )
            self._wal.truncate_through(barrier, self._wal_records)
            self._wal_records = [r for r in self._wal_records
                                 if r.lsn > barrier]
            self.snapshots_taken += 1
            self.snapshot_lsn = barrier
            self._mutations_since_snapshot = 0
            return barrier

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------

    def replication_feed(self, since: int,
                         limit: int = DEFAULT_FEED_BATCH) -> dict:
        """Records after LSN ``since`` for a tailing standby.

        When ``since`` predates the retained window (a brand-new or
        long-dead standby) the response instead carries one ``reset``
        record with the full current state at ``last_lsn``; the standby
        adopts it and tails incrementally from there.
        """
        since = int(since)
        if since < 0:
            raise InvalidParameterError("since must be >= 0")
        with self.lock:
            fire("replicate.feed")
            last = self.last_lsn
            first_retained = self._feed[0].lsn if self._feed else last + 1
            if since + 1 < first_retained:
                state = self.engine.state_arrays()
                reset = WalRecord(lsn=last, op="reset", data={
                    "params": dict(self.params),
                    "products": [_vector_list(r)
                                 for r in state["products"]],
                    "p_alive": [bool(x) for x in state["p_alive"]],
                    "weights": [_vector_list(r) for r in state["weights"]],
                    "w_alive": [bool(x) for x in state["w_alive"]],
                })
                return {"reset": True, "last_lsn": last,
                        "records": [{"lsn": reset.lsn, "op": reset.op,
                                     "data": reset.data}]}
            out = [{"lsn": r.lsn, "op": r.op, "data": r.data}
                   for r in self._feed if r.lsn > since][: int(limit)]
            return {"reset": False, "last_lsn": last, "records": out}

    def apply_replicated(self, record: WalRecord) -> bool:
        """Standby apply: persist the primary's record, then apply it.

        Returns False (a no-op) for records at or below the local LSN —
        replaying a feed twice applies each LSN once.  A ``reset``
        record replaces the local lineage wholesale; any other gap in
        LSNs means the standby missed history and must re-sync.
        """
        with self.lock:
            if record.lsn <= self.last_lsn and record.op != "reset":
                return False
            if record.op == "reset":
                if record.lsn < self.last_lsn:
                    return False  # stale full-state transfer
                self._wal.reset_to(record.lsn)
                self._wal.append(record.op, record.data)
                self._wal_records = [record]
                self._feed.clear()
                self._feed.append(record)
                self._apply(record)
                self.snapshot()  # make the adopted state cheap to recover
                return True
            if record.lsn != self.last_lsn + 1:
                raise InvalidParameterError(
                    f"replication gap: got lsn {record.lsn}, expected "
                    f"{self.last_lsn + 1}; standby must re-sync"
                )
            self._wal.append_record(record)  # log-before-apply, as primary
            self._apply(record)
            self._wal_records.append(record)
            self._feed.append(record)
            return True

    # ------------------------------------------------------------------
    # queries / serving facade (delegation under the engine lock)
    # ------------------------------------------------------------------

    @property
    def products(self):
        return self.engine.products

    @property
    def weights(self):
        return self.engine.weights

    @property
    def num_products(self) -> int:
        return self.engine.num_products

    @property
    def num_weights(self) -> int:
        return self.engine.num_weights

    def fragmentation(self) -> float:
        return self.engine.fragmentation()

    def add_change_listener(self, callback) -> None:
        self.engine.add_change_listener(callback)

    def reverse_topk(self, q, k: int, counter=None):
        with self.lock:
            return self.engine.reverse_topk(q, k, counter)

    def reverse_kranks(self, q, k: int, counter=None):
        with self.lock:
            return self.engine.reverse_kranks(q, k, counter)

    def pin_snapshot(self):
        """Pin an MVCC read snapshot (segmented only; ``None`` on flat).

        The caller owns the pin: queries against the returned
        :class:`~repro.storage.snapshot.StoreSnapshot` never take the
        engine lock and never observe later mutations.  Release it.
        """
        if self.backend == "segmented":
            return self.engine.pin()
        return None

    def storage_stats(self) -> Optional[dict]:
        """The segment store's health dict (``None`` on the flat backend)."""
        if self.backend == "segmented":
            return self.engine.storage_stats()
        return None

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------

    def durability_stats(self) -> dict:
        """JSON-ready WAL/snapshot/replay counters (``/metrics``, ``info``)."""
        with self.lock:
            return {
                "backend": self.backend,
                "wal": self._wal.stats(),
                "last_lsn": self.last_lsn,
                "snapshot_lsn": self.snapshot_lsn,
                "snapshots_taken": self.snapshots_taken,
                "replayed_records": self.replayed_records,
                "replay_time_s": self.replay_time_s,
                "feed_retained": len(self._feed),
            }

    def close(self) -> None:
        """Flush and close the WAL; the engine stays queryable in memory."""
        with self.lock:
            self._wal.close()
        if self.backend == "segmented":
            self.engine.close()  # stops the compactor thread

    def __enter__(self) -> "DurableDynamicRRQ":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
