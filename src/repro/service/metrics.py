"""Service-level metrics: the numbers behind ``GET /metrics``.

The library already counts algorithmic work (:class:`repro.stats.counters.
OpCounter`) and wall-clock samples (:class:`repro.stats.timing.Timer`);
this module aggregates both across *requests* and adds the serving-side
dimensions the paper never needed: throughput (qps), latency percentiles,
micro-batch sizes, admission rejections, and the cache hit rate.  Both
renderings — the original JSON body and the Prometheus text exposition
(``?format=prometheus``, built with :mod:`repro.obs.prom`) — come from
the same counters, so they can never disagree.

Everything is guarded by one lock — the snapshot is cheap (a few hundred
floats at most) and taken far less often than it is updated, so a single
mutex beats cleverness.  :meth:`snapshot` builds every nested dict fresh
*under that lock*, so a concurrent ``/metrics`` read can never observe a
half-folded kernel or stage map (the concurrency test hammers exactly
this).  Latency samples are bounded so a long-running server cannot grow
without limit; percentiles therefore describe the most recent
``max_samples`` requests, which is what an operator wants anyway.

Clock discipline: every duration (uptime, qps denominators, latencies)
is computed from :func:`time.monotonic` / :func:`time.perf_counter`.
Wall-clock time appears exactly once, as the human-readable
``started_at`` timestamp — a backwards NTP step can therefore never
yield negative uptime or a skewed qps (the regression test pins it).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from ..obs.prom import (
    FILTER_RATE_BUCKETS,
    LATENCY_BUCKETS_S,
    Exposition,
    Histogram,
)
from ..stats.counters import OpCounter
from ..stats.timing import Timer, percentile

__all__ = ["ServiceMetrics", "percentile", "DEFAULT_MAX_SAMPLES"]

#: Latency samples retained for percentile estimation.
DEFAULT_MAX_SAMPLES = 4096


class ServiceMetrics:
    """Aggregated request/batch/cache statistics for one service.

    The scheduler reports batches, the service frontend reports request
    outcomes, and :meth:`snapshot` / :meth:`prometheus` render both into
    the ``/metrics`` bodies.  ``record_request`` and ``record_kernel``
    accept the request's trace id, which becomes the exemplar on the
    matching Prometheus histogram bucket — the hop from a latency spike
    on a dashboard back to the exact trace in ``GET /traces``.
    """

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES):
        self._lock = threading.Lock()
        self._started = time.time()  # wall-clock: display timestamp only
        self._started_mono = time.monotonic()
        self._latency = Timer()
        self._max_samples = max_samples
        self._requests_total = 0
        self._requests_by_kind: Dict[str, int] = {}
        self._cache_hits = 0
        self._rejected_overload = 0
        self._rejected_deadline = 0
        self._rejected_unavailable = 0
        self._errors = 0
        self._degraded = 0
        self._batches = 0
        self._coalesced_batches = 0
        self._batched_requests = 0
        self._max_batch_size = 0
        self._ops = OpCounter()
        self._kernel_queries = 0
        self._kernel_stage_s = {"filter": 0.0, "refine": 0.0, "merge": 0.0}
        self._kernel_pairs = {"total": 0, "case1": 0, "case2": 0,
                              "refined": 0, "domin_skipped": 0, "f32": 0}
        self._kernel_fused = {"batches": 0, "queries": 0}
        self._kernel_weights_pruned = 0
        self._mutations_total = 0
        self._mutations_by_op: Dict[str, int] = {}
        self._mutations_rejected = 0
        self._tuner_runs = 0
        self._tuner_swaps = 0
        self._tuner_rejected = 0
        self._tuner_last_improvement = 0.0
        self._tuner_last_fraction = -1.0  # -1 = no tuner run yet
        self._latency_hist = Histogram(LATENCY_BUCKETS_S)
        self._filter_rate_hist = Histogram(FILTER_RATE_BUCKETS)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_request(self, kind: str, latency_s: float,
                       cache_hit: bool = False,
                       degraded: bool = False,
                       trace_id: Optional[str] = None) -> None:
        """One successfully answered request (``degraded`` = via fallback).

        ``trace_id`` (when the request was traced) becomes the exemplar
        on the latency-histogram bucket this observation lands in.
        """
        with self._lock:
            self._requests_total += 1
            self._requests_by_kind[kind] = (
                self._requests_by_kind.get(kind, 0) + 1
            )
            if cache_hit:
                self._cache_hits += 1
            if degraded:
                self._degraded += 1
            self._latency.samples.append(latency_s)
            if len(self._latency.samples) > self._max_samples:
                del self._latency.samples[: -self._max_samples]
            self._latency_hist.observe(latency_s, exemplar=trace_id)

    def record_rejection(self, overload: bool) -> None:
        """One admission rejection (429 when ``overload`` else 504)."""
        with self._lock:
            if overload:
                self._rejected_overload += 1
            else:
                self._rejected_deadline += 1

    def record_unavailable(self) -> None:
        """One request shed because the service is shutting down (503)."""
        with self._lock:
            self._rejected_unavailable += 1

    def record_error(self) -> None:
        """One request that failed for a non-admission reason."""
        with self._lock:
            self._errors += 1

    def record_mutation(self, op: str, rejected: bool = False) -> None:
        """One mutation request (insert/delete/compact/rebuild/snapshot).

        ``rejected`` counts mutations refused by role checks (a write
        sent to a standby, HTTP 409) — they never reach the WAL.
        """
        with self._lock:
            if rejected:
                self._mutations_rejected += 1
                return
            self._mutations_total += 1
            self._mutations_by_op[op] = self._mutations_by_op.get(op, 0) + 1

    def record_tuner(self, status: str, improvement: Optional[float] = None,
                     fraction: Optional[float] = None) -> None:
        """One auto-tuner run.

        ``status`` is ``"swapped"`` (a new config was flipped in),
        ``"rejected"`` (a run completed but kept the current config —
        insufficient improvement, or verification refused the swap) or
        ``"skipped"`` (the trigger didn't fire / nothing to tune).
        ``improvement`` is the measured drop in the undecided+refined
        fraction; ``fraction`` the serving config's fraction after the
        run.
        """
        with self._lock:
            self._tuner_runs += 1
            if status == "swapped":
                self._tuner_swaps += 1
            elif status == "rejected":
                self._tuner_rejected += 1
            if improvement is not None:
                self._tuner_last_improvement = float(improvement)
            if fraction is not None:
                self._tuner_last_fraction = float(fraction)

    def record_kernel(self, stats: dict,
                      trace_id: Optional[str] = None) -> None:
        """Fold one blocked-kernel stats snapshot into the gauges.

        ``stats`` is the dict produced by
        :meth:`repro.vectorized.girkernel.KernelStats.snapshot` — queries
        served, per-stage wall-clock (filter/refine/merge) and the pair
        classification tallies behind the filter-rate gauge.  The
        per-query filter rate feeds the effectiveness histogram, with
        ``trace_id`` as its exemplar.
        """
        with self._lock:
            self._kernel_queries += stats["queries"]
            for stage in self._kernel_stage_s:
                self._kernel_stage_s[stage] += stats["stage_s"][stage]
            for key in self._kernel_pairs:
                self._kernel_pairs[key] += stats["pairs"].get(key, 0)
            fused = stats.get("fused", {})
            self._kernel_fused["batches"] += fused.get("batches", 0)
            self._kernel_fused["queries"] += fused.get("queries", 0)
            self._kernel_weights_pruned += stats["weights_pruned"]
            if stats["pairs"]["total"]:
                self._filter_rate_hist.observe(stats["filter_rate"],
                                               exemplar=trace_id)

    def record_batch(self, size: int, counter: Optional[OpCounter] = None) -> None:
        """One dispatched micro-batch of ``size`` coalesced requests."""
        with self._lock:
            self._batches += 1
            self._batched_requests += size
            if size > 1:
                self._coalesced_batches += 1
            if size > self._max_batch_size:
                self._max_batch_size = size
            if counter is not None:
                self._ops.merge(counter)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def uptime_s(self) -> float:
        """Seconds since the metrics object (≈ the service) was created.

        Monotonic by construction: wall-clock steps (NTP corrections,
        manual clock changes) cannot make this negative or jump.
        """
        return time.monotonic() - self._started_mono

    def snapshot(self, cache_stats: Optional[dict] = None,
                 durability: Optional[dict] = None,
                 replication: Optional[dict] = None,
                 storage: Optional[dict] = None) -> dict:
        """A JSON-ready dict of everything ``/metrics`` exposes.

        Every nested dict is freshly built under the lock (the kernel
        stage/pair maps are copied, never aliased), so the caller owns
        the result outright and no concurrent ``record_*`` can mutate or
        tear it.  ``durability`` (WAL/snapshot counters from
        :meth:`~repro.durability.engine.DurableDynamicRRQ.
        durability_stats`), ``replication`` (standby tailer status) and
        ``storage`` (the segment store's health dict) are attached
        verbatim when the serving stack provides them.
        """
        with self._lock:
            samples = list(self._latency.samples)
            uptime = time.monotonic() - self._started_mono
            qps = self._requests_total / uptime if uptime > 0 else 0.0
            mean_batch = (
                self._batched_requests / self._batches if self._batches else 0.0
            )
            snap = {
                "started_at": self._started,
                "uptime_s": uptime,
                "requests": {
                    "total": self._requests_total,
                    "by_kind": dict(self._requests_by_kind),
                    "cache_hits": self._cache_hits,
                    "rejected_overload": self._rejected_overload,
                    "rejected_deadline": self._rejected_deadline,
                    "rejected_unavailable": self._rejected_unavailable,
                    "errors": self._errors,
                    "degraded": self._degraded,
                },
                "qps": qps,
                "latency_ms": {
                    "count": len(samples),
                    "mean": (sum(samples) / len(samples) * 1000.0
                             if samples else 0.0),
                    "p50": percentile(samples, 0.50) * 1000.0,
                    "p95": percentile(samples, 0.95) * 1000.0,
                    "p99": percentile(samples, 0.99) * 1000.0,
                },
                "batches": {
                    "total": self._batches,
                    "coalesced": self._coalesced_batches,
                    "batched_requests": self._batched_requests,
                    "mean_size": mean_batch,
                    "max_size": self._max_batch_size,
                },
                "ops": self._ops.snapshot(),
                "kernel": {
                    "queries": self._kernel_queries,
                    "stage_s": dict(self._kernel_stage_s),
                    "pairs": dict(self._kernel_pairs),
                    "fused": dict(self._kernel_fused),
                    "weights_pruned": self._kernel_weights_pruned,
                    "filter_rate": (
                        (self._kernel_pairs["case1"]
                         + self._kernel_pairs["case2"])
                        / self._kernel_pairs["total"]
                        if self._kernel_pairs["total"] else 0.0
                    ),
                },
                "mutations": {
                    "total": self._mutations_total,
                    "by_op": dict(self._mutations_by_op),
                    "rejected_not_primary": self._mutations_rejected,
                },
                "tuner": {
                    "runs": self._tuner_runs,
                    "swaps": self._tuner_swaps,
                    "rejected": self._tuner_rejected,
                    "last_improvement": self._tuner_last_improvement,
                    "last_undecided_refined_fraction":
                        self._tuner_last_fraction,
                },
            }
        if cache_stats is not None:
            snap["cache"] = cache_stats
        if durability is not None:
            snap["durability"] = durability
        if replication is not None:
            snap["replication"] = replication
        if storage is not None:
            snap["storage"] = storage
        return snap

    def prometheus(self, cache_stats: Optional[dict] = None,
                   durability: Optional[dict] = None,
                   replication: Optional[dict] = None,
                   slowlog: Optional[dict] = None,
                   traces: Optional[dict] = None,
                   storage: Optional[dict] = None) -> str:
        """The ``GET /metrics?format=prometheus`` body.

        Histogram state is captured under the lock; rendering happens
        outside it.  Metric names and labels are documented in
        ``docs/observability.md`` — change them there first.
        """
        with self._lock:
            uptime = time.monotonic() - self._started_mono
            qps = self._requests_total / uptime if uptime > 0 else 0.0
            by_kind = dict(self._requests_by_kind)
            rejections = {
                "overload": self._rejected_overload,
                "deadline": self._rejected_deadline,
                "unavailable": self._rejected_unavailable,
            }
            errors = self._errors
            cache_hits = self._cache_hits
            degraded = self._degraded
            batches = self._batches
            coalesced = self._coalesced_batches
            batched_requests = self._batched_requests
            max_batch = self._max_batch_size
            kernel_queries = self._kernel_queries
            stage_s = dict(self._kernel_stage_s)
            kernel_pairs = dict(self._kernel_pairs)
            kernel_fused = dict(self._kernel_fused)
            weights_pruned = self._kernel_weights_pruned
            filter_rate = (
                (kernel_pairs["case1"] + kernel_pairs["case2"])
                / kernel_pairs["total"] if kernel_pairs["total"] else 0.0
            )
            mutations_by_op = dict(self._mutations_by_op)
            mutations_rejected = self._mutations_rejected
            tuner_runs = self._tuner_runs
            tuner_swaps = self._tuner_swaps
            tuner_rejected = self._tuner_rejected
            tuner_last_improvement = self._tuner_last_improvement
            tuner_last_fraction = self._tuner_last_fraction
            latency_hist = self._latency_hist.snapshot()
            rate_hist = self._filter_rate_hist.snapshot()

        exp = Exposition()
        exp.gauge("rrq_uptime_seconds",
                  "Seconds since the service started (monotonic clock).",
                  uptime)
        exp.gauge("rrq_qps", "Requests per second over the uptime window.",
                  qps)
        for kind in sorted(by_kind):
            exp.counter("rrq_requests_total",
                        "Successfully answered requests by query kind.",
                        by_kind[kind], labels={"kind": kind})
        if not by_kind:
            exp.counter("rrq_requests_total",
                        "Successfully answered requests by query kind.",
                        0, labels={"kind": "rtk"})
        for reason in ("overload", "deadline", "unavailable"):
            exp.counter("rrq_requests_rejected_total",
                        "Requests rejected at admission, by reason "
                        "(429 overload, 504 deadline, 503 unavailable).",
                        rejections[reason], labels={"reason": reason})
        exp.counter("rrq_request_errors_total",
                    "Requests that failed for a non-admission reason.",
                    errors)
        exp.counter("rrq_cache_hits_total",
                    "Requests answered from the LRU result cache.",
                    cache_hits)
        exp.counter("rrq_degraded_responses_total",
                    "Responses served by the degraded fallback path.",
                    degraded)
        exp.histogram("rrq_request_latency_seconds",
                      "Service-side request latency; bucket exemplars "
                      "carry the trace id of the last request observed.",
                      latency_hist)
        exp.counter("rrq_batches_total",
                    "Micro-batches dispatched by the scheduler.", batches)
        exp.counter("rrq_batches_coalesced_total",
                    "Micro-batches that coalesced more than one request.",
                    coalesced)
        exp.counter("rrq_batched_requests_total",
                    "Requests answered through micro-batches.",
                    batched_requests)
        exp.gauge("rrq_batch_size_max",
                  "Largest micro-batch dispatched so far.", max_batch)
        exp.counter("rrq_kernel_queries_total",
                    "Queries answered by the blocked GIR kernel.",
                    kernel_queries)
        for stage in ("filter", "refine", "merge"):
            exp.counter("rrq_kernel_stage_seconds_total",
                        "Cumulative kernel wall-clock by stage.",
                        stage_s[stage], labels={"stage": stage})
        for klass in ("total", "case1", "case2", "refined",
                      "domin_skipped", "f32"):
            exp.counter("rrq_kernel_pairs_total",
                        "(p, w) pairs by grid-bound classification "
                        "outcome (the paper's Table-4 accounting; 'f32' "
                        "counts pairs classified by the float32 prefilter).",
                        kernel_pairs[klass], labels={"class": klass})
        exp.counter("rrq_kernel_fused_batches_total",
                    "Fused multi-query kernel passes (one shared "
                    "gather/matmul pipeline per coalesced batch).",
                    kernel_fused["batches"])
        exp.counter("rrq_kernel_fused_queries_total",
                    "Queries answered inside a fused multi-query pass.",
                    kernel_fused["queries"])
        exp.counter("rrq_kernel_weights_pruned_total",
                    "Weight vectors pruned by the k/minRank abort before "
                    "refinement.", weights_pruned)
        exp.gauge("rrq_kernel_filter_rate",
                  "Fraction of classified pairs decided by bounds alone.",
                  filter_rate)
        exp.histogram("rrq_query_filter_rate",
                      "Per-query filter effectiveness (fraction of pairs "
                      "decided without an inner product).", rate_hist)
        for op in sorted(mutations_by_op):
            exp.counter("rrq_mutations_total",
                        "Durable mutations applied, by operation.",
                        mutations_by_op[op], labels={"op": op})
        exp.counter("rrq_mutations_rejected_total",
                    "Mutations refused by role checks (sent to a standby).",
                    mutations_rejected)
        exp.counter("rrq_tuner_runs_total",
                    "Auto-tuner runs (including skipped/rejected ones).",
                    tuner_runs)
        exp.counter("rrq_tuner_swaps_total",
                    "Auto-tuner runs that hot-swapped a new grid config.",
                    tuner_swaps)
        exp.counter("rrq_tuner_rejected_total",
                    "Auto-tuner runs that kept the current config "
                    "(insufficient improvement or verification refusal).",
                    tuner_rejected)
        exp.gauge("rrq_tuner_last_improvement",
                  "Undecided+refined fraction drop measured by the last "
                  "completed tuner run.", tuner_last_improvement)
        exp.gauge("rrq_tuner_last_undecided_refined_fraction",
                  "Serving config's undecided+refined fraction after the "
                  "last tuner run (-1 before the first).",
                  tuner_last_fraction)
        if cache_stats is not None:
            exp.gauge("rrq_cache_entries", "Entries in the result cache.",
                      cache_stats.get("entries", 0))
            exp.gauge("rrq_cache_capacity", "Result cache capacity.",
                      cache_stats.get("capacity", 0))
            exp.counter("rrq_cache_lookup_hits_total",
                        "Result-cache lookup hits.",
                        cache_stats.get("hits", 0))
            exp.counter("rrq_cache_lookup_misses_total",
                        "Result-cache lookup misses.",
                        cache_stats.get("misses", 0))
            exp.counter("rrq_cache_invalidations_total",
                        "Result-cache invalidations (mutations flush).",
                        cache_stats.get("invalidations", 0))
        if durability is not None:
            wal = durability.get("wal", {})
            exp.gauge("rrq_wal_last_lsn",
                      "Highest acknowledged WAL log sequence number.",
                      durability.get("last_lsn", 0))
            exp.gauge("rrq_snapshot_lsn",
                      "LSN of the latest committed snapshot.",
                      durability.get("snapshot_lsn", 0))
            exp.counter("rrq_wal_appends_total",
                        "Records appended to the write-ahead log.",
                        wal.get("appends", 0))
            exp.counter("rrq_wal_fsyncs_total",
                        "fsync calls issued by the WAL writer.",
                        wal.get("fsyncs", 0))
        if replication is not None:
            exp.gauge("rrq_replication_lag",
                      "Primary LSN minus local LSN at the last poll "
                      "(-1 before the first successful poll).",
                      replication.get("lag", -1))
            exp.counter("rrq_replication_applied_total",
                        "Replicated records applied by the tailer.",
                        replication.get("applied_records", 0))
            exp.counter("rrq_replication_errors_total",
                        "Replication poll errors.",
                        replication.get("poll_errors", 0))
        if slowlog is not None:
            exp.counter("rrq_slow_queries_total",
                        "Requests recorded by the slow-query log.",
                        slowlog.get("recorded_total", 0))
            threshold = slowlog.get("threshold_s")
            if threshold is not None:
                exp.gauge("rrq_slow_query_threshold_seconds",
                          "Latency threshold of the slow-query log.",
                          threshold)
        if traces is not None:
            exp.counter("rrq_traces_finished_total",
                        "Traces completed and stored in the ring.",
                        traces.get("finished_total", 0))
        if storage is not None:
            exp.gauge("rrq_storage_segments",
                      "Immutable segments in the store.",
                      storage.get("segments", 0))
            exp.gauge("rrq_storage_delta_rows",
                      "Buffered delta mutations since the last seal.",
                      storage.get("delta_rows", 0))
            exp.gauge("rrq_storage_live_fraction",
                      "Fraction of physically stored rows that are live.",
                      storage.get("live_fraction", 1.0))
            exp.gauge("rrq_storage_dead_fraction",
                      "Fraction of physically stored rows that are dead "
                      "(the compaction trigger).",
                      storage.get("dead_fraction", 0.0))
            exp.gauge("rrq_storage_pinned_snapshots",
                      "MVCC snapshots currently pinned by readers.",
                      storage.get("pinned_snapshots", 0))
            exp.gauge("rrq_storage_retired_segments_pending",
                      "Retired segments kept alive by pinned snapshots.",
                      storage.get("retired_pending", 0))
            exp.gauge("rrq_storage_manifest_generation",
                      "Committed store manifest generation.",
                      storage.get("manifest_generation", 0))
            exp.gauge("rrq_storage_manifest_lsn",
                      "WAL barrier of the committed store manifest.",
                      storage.get("manifest_lsn", 0))
            exp.counter("rrq_storage_seals_total",
                        "Delta seals (new segments committed).",
                        storage.get("seals_total", 0))
            exp.counter("rrq_storage_compactions_total",
                        "Segment-merge compactions committed.",
                        storage.get("compactions_total", 0))
            exp.counter("rrq_storage_compaction_seconds_total",
                        "Cumulative wall-clock spent compacting.",
                        storage.get("compaction_seconds_total", 0.0))
            exp.counter("rrq_storage_segments_retired_total",
                        "Segments superseded by compaction.",
                        storage.get("segments_retired_total", 0))
        return exp.render()
