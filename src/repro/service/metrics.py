"""Service-level metrics: the numbers behind ``GET /metrics``.

The library already counts algorithmic work (:class:`repro.stats.counters.
OpCounter`) and wall-clock samples (:class:`repro.stats.timing.Timer`);
this module aggregates both across *requests* and adds the serving-side
dimensions the paper never needed: throughput (qps), latency percentiles,
micro-batch sizes, admission rejections, and the cache hit rate.

Everything is guarded by one lock — the snapshot is cheap (a few hundred
floats at most) and taken far less often than it is updated, so a single
mutex beats cleverness.  Latency samples are bounded so a long-running
server cannot grow without limit; percentiles therefore describe the most
recent ``max_samples`` requests, which is what an operator wants anyway.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional

from ..stats.counters import OpCounter
from ..stats.timing import Timer

#: Latency samples retained for percentile estimation.
DEFAULT_MAX_SAMPLES = 4096


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-quantile (0 < q <= 1) of ``samples`` by nearest-rank.

    Nearest-rank is the conventional choice for operational latency
    reporting: the result is always an observed sample.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class ServiceMetrics:
    """Aggregated request/batch/cache statistics for one service.

    The scheduler reports batches, the service frontend reports request
    outcomes, and :meth:`snapshot` renders both into the flat dict the
    ``/metrics`` endpoint serializes.
    """

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES):
        self._lock = threading.Lock()
        self._started = time.time()
        self._started_mono = time.monotonic()
        self._latency = Timer()
        self._max_samples = max_samples
        self._requests_total = 0
        self._requests_by_kind: Dict[str, int] = {}
        self._cache_hits = 0
        self._rejected_overload = 0
        self._rejected_deadline = 0
        self._rejected_unavailable = 0
        self._errors = 0
        self._degraded = 0
        self._batches = 0
        self._coalesced_batches = 0
        self._batched_requests = 0
        self._max_batch_size = 0
        self._ops = OpCounter()
        self._kernel_queries = 0
        self._kernel_stage_s = {"filter": 0.0, "refine": 0.0, "merge": 0.0}
        self._kernel_pairs = {"total": 0, "case1": 0, "case2": 0,
                              "refined": 0, "domin_skipped": 0}
        self._kernel_weights_pruned = 0
        self._mutations_total = 0
        self._mutations_by_op: Dict[str, int] = {}
        self._mutations_rejected = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_request(self, kind: str, latency_s: float,
                       cache_hit: bool = False,
                       degraded: bool = False) -> None:
        """One successfully answered request (``degraded`` = via fallback)."""
        with self._lock:
            self._requests_total += 1
            self._requests_by_kind[kind] = (
                self._requests_by_kind.get(kind, 0) + 1
            )
            if cache_hit:
                self._cache_hits += 1
            if degraded:
                self._degraded += 1
            self._latency.samples.append(latency_s)
            if len(self._latency.samples) > self._max_samples:
                del self._latency.samples[: -self._max_samples]

    def record_rejection(self, overload: bool) -> None:
        """One admission rejection (429 when ``overload`` else 504)."""
        with self._lock:
            if overload:
                self._rejected_overload += 1
            else:
                self._rejected_deadline += 1

    def record_unavailable(self) -> None:
        """One request shed because the service is shutting down (503)."""
        with self._lock:
            self._rejected_unavailable += 1

    def record_error(self) -> None:
        """One request that failed for a non-admission reason."""
        with self._lock:
            self._errors += 1

    def record_mutation(self, op: str, rejected: bool = False) -> None:
        """One mutation request (insert/delete/compact/rebuild/snapshot).

        ``rejected`` counts mutations refused by role checks (a write
        sent to a standby, HTTP 409) — they never reach the WAL.
        """
        with self._lock:
            if rejected:
                self._mutations_rejected += 1
                return
            self._mutations_total += 1
            self._mutations_by_op[op] = self._mutations_by_op.get(op, 0) + 1

    def record_kernel(self, stats: dict) -> None:
        """Fold one blocked-kernel stats snapshot into the gauges.

        ``stats`` is the dict produced by
        :meth:`repro.vectorized.girkernel.KernelStats.snapshot` — queries
        served, per-stage wall-clock (filter/refine/merge) and the pair
        classification tallies behind the filter-rate gauge.
        """
        with self._lock:
            self._kernel_queries += stats["queries"]
            for stage in self._kernel_stage_s:
                self._kernel_stage_s[stage] += stats["stage_s"][stage]
            for key in self._kernel_pairs:
                self._kernel_pairs[key] += stats["pairs"][key]
            self._kernel_weights_pruned += stats["weights_pruned"]

    def record_batch(self, size: int, counter: Optional[OpCounter] = None) -> None:
        """One dispatched micro-batch of ``size`` coalesced requests."""
        with self._lock:
            self._batches += 1
            self._batched_requests += size
            if size > 1:
                self._coalesced_batches += 1
            if size > self._max_batch_size:
                self._max_batch_size = size
            if counter is not None:
                self._ops.merge(counter)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def uptime_s(self) -> float:
        """Seconds since the metrics object (≈ the service) was created."""
        return time.monotonic() - self._started_mono

    def snapshot(self, cache_stats: Optional[dict] = None,
                 durability: Optional[dict] = None,
                 replication: Optional[dict] = None) -> dict:
        """A JSON-ready dict of everything ``/metrics`` exposes.

        ``durability`` (WAL/snapshot counters from
        :meth:`~repro.durability.engine.DurableDynamicRRQ.
        durability_stats`) and ``replication`` (standby tailer status)
        are attached verbatim when the serving stack provides them.
        """
        with self._lock:
            samples = list(self._latency.samples)
            uptime = time.monotonic() - self._started_mono
            qps = self._requests_total / uptime if uptime > 0 else 0.0
            mean_batch = (
                self._batched_requests / self._batches if self._batches else 0.0
            )
            snap = {
                "started_at": self._started,
                "uptime_s": uptime,
                "requests": {
                    "total": self._requests_total,
                    "by_kind": dict(self._requests_by_kind),
                    "cache_hits": self._cache_hits,
                    "rejected_overload": self._rejected_overload,
                    "rejected_deadline": self._rejected_deadline,
                    "rejected_unavailable": self._rejected_unavailable,
                    "errors": self._errors,
                    "degraded": self._degraded,
                },
                "qps": qps,
                "latency_ms": {
                    "count": len(samples),
                    "mean": (sum(samples) / len(samples) * 1000.0
                             if samples else 0.0),
                    "p50": percentile(samples, 0.50) * 1000.0,
                    "p95": percentile(samples, 0.95) * 1000.0,
                    "p99": percentile(samples, 0.99) * 1000.0,
                },
                "batches": {
                    "total": self._batches,
                    "coalesced": self._coalesced_batches,
                    "batched_requests": self._batched_requests,
                    "mean_size": mean_batch,
                    "max_size": self._max_batch_size,
                },
                "ops": self._ops.snapshot(),
                "kernel": {
                    "queries": self._kernel_queries,
                    "stage_s": dict(self._kernel_stage_s),
                    "pairs": dict(self._kernel_pairs),
                    "weights_pruned": self._kernel_weights_pruned,
                    "filter_rate": (
                        (self._kernel_pairs["case1"]
                         + self._kernel_pairs["case2"])
                        / self._kernel_pairs["total"]
                        if self._kernel_pairs["total"] else 0.0
                    ),
                },
                "mutations": {
                    "total": self._mutations_total,
                    "by_op": dict(self._mutations_by_op),
                    "rejected_not_primary": self._mutations_rejected,
                },
            }
        if cache_stats is not None:
            snap["cache"] = cache_stats
        if durability is not None:
            snap["durability"] = durability
        if replication is not None:
            snap["replication"] = replication
        return snap
