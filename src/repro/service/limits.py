"""Admission control: deadlines, queue bounds, and HTTP rejection mapping.

A long-lived query server has to say *no* sometimes.  This module holds
the three pieces every other service module shares:

* :class:`ServiceLimits` — the tunable bounds (queue depth, default
  per-request deadline, batch ceiling);
* :class:`Deadline` — an absolute monotonic-clock deadline carried by each
  request from admission to dispatch;
* :func:`http_status` / :func:`rejection_body` — the structured mapping
  from the :mod:`repro.errors` hierarchy to JSON/HTTP rejections (429 for
  overload, 503 for unavailability/shutdown, 504 for deadline expiry,
  400 for caller mistakes).

Keeping the mapping here means the scheduler raises plain library errors
and stays transport-agnostic; only the frontend knows about status codes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..errors import (
    DeadlineExceededError,
    InvalidParameterError,
    NotPrimaryError,
    ReproError,
    ServiceOverloadError,
    ServiceUnavailableError,
)

#: Default cap on requests waiting for dispatch before 429s start.
DEFAULT_MAX_QUEUE_DEPTH = 256

#: Default per-request deadline in seconds (None disables deadlines).
DEFAULT_DEADLINE_S = 10.0

#: Default ceiling on how many requests one micro-batch may coalesce.
DEFAULT_MAX_BATCH = 64


@dataclass(frozen=True)
class ServiceLimits:
    """Bounds the scheduler enforces at admission and dispatch time.

    Attributes
    ----------
    max_queue_depth:
        Requests allowed to wait for dispatch; submissions beyond it are
        rejected with :class:`ServiceOverloadError` (HTTP 429).
    default_deadline_s:
        Deadline applied to requests that do not carry their own;
        ``None`` disables deadline enforcement entirely.
    max_batch:
        Upper bound on the size of one coalesced micro-batch.
    """

    max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH
    default_deadline_s: Optional[float] = DEFAULT_DEADLINE_S
    max_batch: int = DEFAULT_MAX_BATCH

    def __post_init__(self) -> None:
        if self.max_queue_depth <= 0:
            raise InvalidParameterError("max_queue_depth must be positive")
        if self.max_batch <= 0:
            raise InvalidParameterError("max_batch must be positive")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise InvalidParameterError(
                "default_deadline_s must be positive or None"
            )

    def deadline(self, deadline_s: Optional[float] = None) -> "Deadline":
        """A fresh :class:`Deadline` for one request.

        ``deadline_s`` overrides :attr:`default_deadline_s`; both ``None``
        yields an unbounded deadline.
        """
        budget = deadline_s if deadline_s is not None else self.default_deadline_s
        return Deadline.after(budget)


@dataclass(frozen=True)
class Deadline:
    """An absolute point on the monotonic clock (or no limit at all)."""

    at: Optional[float]

    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        """Deadline ``seconds`` from now; ``None`` means unbounded."""
        if seconds is None:
            return cls(at=None)
        if seconds < 0:
            raise InvalidParameterError("deadline seconds must be >= 0")
        return cls(at=time.monotonic() + seconds)

    @classmethod
    def unbounded(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(at=None)

    def remaining(self) -> Optional[float]:
        """Seconds left (may be negative); ``None`` when unbounded."""
        if self.at is None:
            return None
        return self.at - time.monotonic()

    def expired(self) -> bool:
        """True once the deadline has passed."""
        return self.at is not None and time.monotonic() >= self.at

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` if already expired."""
        if self.expired():
            raise DeadlineExceededError("request deadline exceeded")


def http_status(exc: BaseException) -> int:
    """The HTTP status code a rejection/error maps to.

    429 for overload, 503 for unavailability (shutdown drain, engine down
    with no fallback), 504 for deadline expiry, 409 for a mutation sent
    to a standby, 400 for any other library (caller) error, 500
    otherwise.
    """
    if isinstance(exc, NotPrimaryError):
        return 409
    if isinstance(exc, ServiceOverloadError):
        return 429
    if isinstance(exc, ServiceUnavailableError):
        return 503
    if isinstance(exc, DeadlineExceededError):
        return 504
    # ReproError derives ValueError; plain ValueError also covers malformed
    # JSON bodies (json.JSONDecodeError) and bad numeric fields.
    if isinstance(exc, (ReproError, ValueError, KeyError, TypeError)):
        return 400
    return 500


def rejection_body(exc: BaseException) -> dict:
    """The structured JSON body sent alongside a non-200 status.

    An exception carrying a ``retry_after_s`` attribute (load shedding
    announces when capacity should free up) surfaces it in the body;
    the HTTP frontend additionally sends it as a ``Retry-After`` header.
    """
    body = {
        "error": type(exc).__name__,
        "message": str(exc) or type(exc).__name__,
        "status": http_status(exc),
    }
    retry_after = retry_after_s(exc)
    if retry_after is not None:
        body["retry_after_s"] = retry_after
    return body


def retry_after_s(exc: BaseException) -> Optional[float]:
    """The exception's retry hint in seconds, when it carries one."""
    hint = getattr(exc, "retry_after_s", None)
    if hint is None:
        return None
    try:
        hint = float(hint)
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return None
    return hint if hint >= 0 else None
