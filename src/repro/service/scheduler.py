"""Micro-batching admission scheduler for concurrent reverse-rank queries.

Single-query latency and whole-service throughput want different
execution strategies.  One query is answered fastest by the Grid-index
scan (:class:`~repro.queries.engine.RRQEngine`); a burst of concurrent
queries is answered fastest by one shared BLAS sweep over the score
matrix (:func:`repro.vectorized.batch.all_ranks_multi`), because every
coalesced query rides the same ``P @ W.T`` products.

The scheduler bridges the two: requests are admitted into a bounded
queue, a dispatcher thread collects everything that arrives within a
configurable *batch window*, and

* a batch of one is dispatched straight through the per-query engine
  (low load ⇒ no added latency beyond the window);
* a batch of many is answered from one ``all_ranks_multi`` sweep, with
  per-request RTK/RKR answers derived exactly the way
  :class:`~repro.vectorized.batch.BatchOracle` derives them — so batched
  and unbatched answers are identical (the integration tests enforce
  byte-equality against :class:`~repro.algorithms.naive.NaiveRRQ`).

Admission control (queue bounds, deadlines) lives in
:mod:`repro.service.limits`; this module enforces it at submit and
dispatch time and reports every batch to
:class:`~repro.service.metrics.ServiceMetrics`.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeoutError
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..data.datasets import check_query_point
from ..errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ServiceOverloadError,
    ServiceUnavailableError,
)
from ..obs.trace import current, current_trace_id, span, use_context
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..resilience.faults import fire
from ..stats.counters import OpCounter
from ..vectorized.batch import DEFAULT_CHUNK_BUDGET, all_ranks_multi
from ..vectorized.girkernel import GirKernelRRQ
from .limits import Deadline, ServiceLimits
from .metrics import ServiceMetrics

#: Default coalescing window, in seconds (2 ms).
DEFAULT_BATCH_WINDOW_S = 0.002

#: How often the dispatcher re-checks the shutdown flag while idle.
_IDLE_POLL_S = 0.05

_KINDS = ("rtk", "rkr")


@dataclass
class _Pending:
    """One admitted request waiting for dispatch.

    ``ctx`` is the submitter's span context (or ``None`` when tracing is
    dark), captured at admission so the dispatcher thread can re-enter
    the request's trace — a ContextVar does not cross threads by itself.
    """

    q: np.ndarray
    kind: str
    k: int
    deadline: Deadline
    future: "Future" = field(default_factory=Future)
    ctx: Optional[object] = None


class MicroBatchScheduler:
    """Coalesces concurrent single queries into vectorized micro-batches.

    Parameters
    ----------
    engine:
        Any library engine/algorithm exposing ``reverse_topk``,
        ``reverse_kranks``, ``products`` and ``weights`` (an
        :class:`~repro.queries.engine.RRQEngine` in practice).  Used for
        the single-request fast path.
    batch_window_s:
        How long the dispatcher waits for more requests after the first
        one arrives.  ``0`` disables coalescing entirely (every request
        takes the per-query path).
    limits:
        Admission bounds (queue depth, default deadline, max batch size).
    metrics:
        Destination for batch/rejection tallies; a private instance is
        created when omitted.
    chunk_budget:
        Memory bound forwarded to :func:`all_ranks_multi`.
    use_kernel:
        Answer coalesced batches with the weight-blocked GIR kernel
        (:class:`~repro.vectorized.girkernel.GirKernelRRQ`) instead of
        the dense ``all_ranks_multi`` sweep.  The kernel is built lazily
        on the first coalesced batch — wrapping the engine's own grid
        when it is a :class:`~repro.core.gir.GridIndexRRQ` — and its
        per-stage timings / filter rates flow into ``/metrics``.
        Coalesced batches of more than one request run through the
        *fused* multi-query kernel path (one shared gather/matmul
        pipeline for the whole batch), with the per-query kernel loop
        preserved as the fallback.  Answers are byte-identical either
        way; this only changes how much arithmetic the batch path
        performs.  Ignored for dynamic engines (their arrays mutate
        under the scheduler).
    kernel_cache_dir:
        Directory for mmap kernel warm starts
        (:mod:`repro.vectorized.kernelstore`).  Static engines persist
        their lazily built kernel under ``<dir>/static`` and reload it
        zero-copy on the next process start (validated against the
        engine's arrays); MVCC engines key snapshot kernels by store
        generation under ``<dir>/gen-<N>``.  ``None`` disables caching.
    auto_start:
        Start the dispatcher thread immediately (tests pass ``False`` to
        stage requests deterministically before opening the tap).
    """

    def __init__(self, engine, batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
                 limits: Optional[ServiceLimits] = None,
                 metrics: Optional[ServiceMetrics] = None,
                 chunk_budget: int = DEFAULT_CHUNK_BUDGET,
                 use_kernel: bool = True,
                 kernel_cache_dir: Optional[str] = None,
                 auto_start: bool = True):
        if batch_window_s < 0:
            raise InvalidParameterError("batch_window_s must be >= 0")
        self.engine = engine
        self.batch_window_s = float(batch_window_s)
        self.limits = limits or ServiceLimits()
        self.metrics = metrics or ServiceMetrics()
        self.chunk_budget = chunk_budget
        self._dim = engine.products.dim
        # A dynamic engine's product/weight views expose no ``.values``
        # (the arrays change under mutation); the coalesced BLAS sweep
        # would capture stale state, so such engines always take the
        # per-query path — serialized against mutations by the engine's
        # own lock.
        self._dynamic = not hasattr(engine.products, "values")
        self._engine_lock = getattr(engine, "lock", None)
        if self._dynamic:
            self._P = self._W = None
        else:
            self._P = engine.products.values
            self._W = engine.weights.values
        self.use_kernel = bool(use_kernel) and not self._dynamic
        self.kernel_cache_dir = kernel_cache_dir
        self._kernel: Optional[GirKernelRRQ] = None
        self._kernel_failed = False
        # MVCC engines (the segmented store) pin one immutable snapshot
        # per batch: queries run against it without the engine lock and
        # never observe mutations that land mid-batch.  Coalesced
        # batches may additionally densify the snapshot into a blocked
        # kernel, cached until the store generation moves.
        self._pin_snapshot = getattr(engine, "pin_snapshot", None)
        self._use_snapshot_kernel = bool(use_kernel) and \
            self._pin_snapshot is not None
        self._snap_kernel = None
        self._snap_kernel_failed = False
        #: Tuned snapshot-kernel config (a CandidateConfig), set by the
        #: auto-tuner's hot-swap on MVCC engines; None = default build.
        self._snapshot_tuning = None
        self._queue: "queue.Queue[_Pending]" = queue.Queue(
            maxsize=self.limits.max_queue_depth
        )
        self._stop = threading.Event()
        self._closing = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if auto_start:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._closing.clear()
        self._thread = threading.Thread(
            target=self._run, name="rrq-scheduler", daemon=True
        )
        self._thread.start()

    def close(self, drain: bool = True, drain_timeout_s: float = 5.0) -> None:
        """Graceful shutdown: drain in-flight work, shed the rest with 503s.

        New submissions are refused immediately with
        :class:`ServiceUnavailableError` (HTTP 503).  With ``drain`` the
        dispatcher keeps answering already-admitted requests for up to
        ``drain_timeout_s``; anything still queued after that (or when
        ``drain=False``) fails with a structured
        :class:`ServiceUnavailableError` instead of a dropped connection.
        """
        self._closing.set()
        if drain and self._thread is not None and self._thread.is_alive():
            deadline = time.monotonic() + drain_timeout_s
            while not self._queue.empty() and time.monotonic() < deadline:
                time.sleep(0.005)
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            self.metrics.record_unavailable()
            pending.future.set_exception(
                ServiceUnavailableError(
                    "service shut down before the request was dispatched"
                )
            )

    def __enter__(self) -> "MicroBatchScheduler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def queue_depth(self) -> int:
        """Requests currently waiting for dispatch (approximate)."""
        return self._queue.qsize()

    def submit(self, q, kind: str, k: int,
               deadline_s: Optional[float] = None) -> "Future":
        """Admit one query; returns a Future resolving to its result.

        Raises :class:`ServiceOverloadError` immediately when the queue
        is full.  The Future resolves to an :class:`RTKResult` /
        :class:`RKRResult`, or raises :class:`DeadlineExceededError` if
        the request's deadline passes before dispatch.
        """
        if kind not in _KINDS:
            raise InvalidParameterError("kind must be 'rtk' or 'rkr'")
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        if self._closing.is_set():
            self.metrics.record_unavailable()
            raise ServiceUnavailableError(
                "service is shutting down; request not admitted"
            )
        q_arr = check_query_point(q, self._dim)
        pending = _Pending(
            q=q_arr, kind=kind, k=int(k),
            deadline=self.limits.deadline(deadline_s),
            ctx=current(),
        )
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self.metrics.record_rejection(overload=True)
            raise ServiceOverloadError(
                f"admission queue full ({self.limits.max_queue_depth} "
                "requests waiting)"
            ) from None
        return pending.future

    def answer(self, q, kind: str, k: int,
               deadline_s: Optional[float] = None):
        """Submit and block until the result (or rejection) is available."""
        pending_deadline = self.limits.deadline(deadline_s)
        future = self.submit(q, kind, k, deadline_s)
        try:
            return future.result(timeout=pending_deadline.remaining())
        except (TimeoutError, _FutureTimeoutError):
            self.metrics.record_rejection(overload=False)
            raise DeadlineExceededError(
                "request deadline exceeded while waiting for dispatch"
            ) from None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=_IDLE_POLL_S)
            except queue.Empty:
                continue
            batch = self._collect(first)
            self._dispatch(batch)

    def _collect(self, first: _Pending) -> List[_Pending]:
        """The micro-batch: ``first`` plus arrivals within the window."""
        batch = [first]
        if self.batch_window_s <= 0 or self.limits.max_batch <= 1:
            return batch
        window_closes = time.monotonic() + self.batch_window_s
        while len(batch) < self.limits.max_batch:
            remaining = window_closes - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _dispatch(self, batch: List[_Pending]) -> None:
        live = []
        for pending in batch:
            if pending.deadline.expired():
                self.metrics.record_rejection(overload=False)
                pending.future.set_exception(
                    DeadlineExceededError(
                        "request deadline exceeded before dispatch"
                    )
                )
            else:
                live.append(pending)
        if not live:
            return
        counter = OpCounter()
        try:
            fire("scheduler.dispatch")
            if self._dynamic:
                snap = (self._pin_snapshot()
                        if self._pin_snapshot is not None else None)
                if snap is not None:
                    try:
                        self._answer_snapshot(live, snap, counter)
                    finally:
                        snap.release()
                else:
                    for pending in live:
                        self._answer_single(pending, counter)
            elif len(live) == 1:
                self._answer_single(live[0], counter)
            else:
                self._answer_batched(live, counter)
        except Exception as exc:  # surface backend failures to callers
            for pending in live:
                if not pending.future.done():
                    pending.future.set_exception(exc)
        self.metrics.record_batch(len(live), counter)

    def _answer_single(self, pending: _Pending, counter: OpCounter) -> None:
        """Low-load fast path: straight through the per-query engine.

        The span closes before the future resolves, so the submitting
        thread never reads a trace whose dispatch span is still open.
        """
        with use_context(pending.ctx), span("engine.query") as sp:
            sp.annotate("kind", pending.kind)
            lock = self._engine_lock
            if lock is not None:
                lock.acquire()
            try:
                if pending.kind == "rtk":
                    result = self.engine.reverse_topk(pending.q, pending.k)
                else:
                    result = self.engine.reverse_kranks(pending.q, pending.k)
            finally:
                if lock is not None:
                    lock.release()
        counter.merge(result.counter)
        pending.future.set_result(result)

    def _answer_snapshot(self, live: List[_Pending], snap,
                         counter: OpCounter) -> None:
        """MVCC path: the whole batch reads one pinned snapshot.

        No engine lock is taken — writers proceed concurrently and the
        batch still sees one consistent state.  A coalesced batch may
        run through a densified :class:`~repro.storage.SnapshotKernel`
        (byte-identical answers, BLAS arithmetic); a batch of one uses
        the snapshot's merge path directly.
        """
        kernel = self._get_snapshot_kernel(snap) if len(live) > 1 else None
        if kernel is not None and len(live) > 1 and \
                self._answer_fused(live, kernel, counter):
            return
        for pending in live:
            with use_context(pending.ctx), span("snapshot.query") as sp:
                sp.annotate("kind", pending.kind)
                sp.annotate("batch_size", len(live))
                sp.annotate("generation", snap.generation)
                backend = kernel if kernel is not None else snap
                if pending.kind == "rtk":
                    result = backend.reverse_topk(pending.q, pending.k)
                else:
                    result = backend.reverse_kranks(pending.q, pending.k)
                if kernel is not None and kernel.last_stats is not None:
                    stats = kernel.last_stats.snapshot()
                    sp.annotate("kernel_stats", stats)
                    self.metrics.record_kernel(
                        stats, trace_id=current_trace_id()
                    )
            counter.merge(result.counter)
            pending.future.set_result(result)

    def _answer_fused(self, live: List[_Pending], backend,
                      counter: OpCounter) -> bool:
        """Answer the whole batch through the fused multi-query kernel.

        Requests are grouped by kind and each group runs as *one*
        ``reverse_topk_batch`` / ``reverse_kranks_batch`` call, sharing
        the (P-block × W-block) boundary matmuls across every query of
        the group — byte-identical to the per-query path (the property
        suite enforces it).  Returns False (with no futures touched) on
        any failure, so the caller's per-query loop remains the
        fallback.
        """
        if not hasattr(backend, "reverse_topk_batch"):
            return False
        groups: dict = {}
        for idx, pending in enumerate(live):
            groups.setdefault(pending.kind, []).append(idx)
        try:
            results: List[Optional[object]] = [None] * len(live)
            fused_stats = []
            for kind, idxs in groups.items():
                queries = [live[i].q for i in idxs]
                ks = [live[i].k for i in idxs]
                if kind == "rtk":
                    answers = backend.reverse_topk_batch(queries, ks)
                else:
                    answers = backend.reverse_kranks_batch(queries, ks)
                for i, res in zip(idxs, answers):
                    results[i] = res
                if backend.last_stats is not None:
                    fused_stats.append(backend.last_stats.snapshot())
        except Exception:
            return False
        for stats in fused_stats:
            self.metrics.record_kernel(stats)
        for pending, result in zip(live, results):
            with use_context(pending.ctx), span("kernel.fused") as sp:
                sp.annotate("kind", pending.kind)
                sp.annotate("batch_size", len(live))
                sp.annotate("fused", True)
            counter.merge(result.counter)
            pending.future.set_result(result)
        return True

    def _get_snapshot_kernel(self, snap):
        """Densified kernel for ``snap``, cached across coalesced batches.

        Rebuilt only when the store generation moved; a build failure is
        remembered and the merge path serves from then on.
        """
        if not self._use_snapshot_kernel or self._snap_kernel_failed:
            return None
        cached = self._snap_kernel
        tuning = self._snapshot_tuning
        variant = tuning.short() if tuning is not None else None
        if cached is not None and cached.matches(snap) and \
                getattr(cached, "variant", None) == variant:
            return cached
        try:
            from ..storage import SnapshotKernel

            self._snap_kernel = SnapshotKernel.build(
                snap, cache_dir=self.kernel_cache_dir,
                tuning=self._snapshot_tuning,
            )
        except Exception:
            self._snap_kernel_failed = True
            self._snap_kernel = None
        return self._snap_kernel

    def _get_kernel(self) -> Optional[GirKernelRRQ]:
        """The batch-path kernel, built lazily on first use.

        Wraps the engine's own grid when the engine is (or fronts) a
        :class:`~repro.core.gir.GridIndexRRQ` — no re-quantization —
        otherwise quantizes fresh from the static arrays.  A build
        failure is remembered and the dense sweep is used from then on;
        serving must not die because an optimization could not start.
        """
        if not self.use_kernel or self._kernel_failed:
            return None
        if self._kernel is None:
            try:
                self._kernel = self._load_cached_static_kernel()
                if self._kernel is not None:
                    return self._kernel
                from ..core.gir import GridIndexRRQ

                algorithm = getattr(self.engine, "algorithm", self.engine)
                if isinstance(algorithm, GirKernelRRQ):
                    self._kernel = algorithm
                elif isinstance(algorithm, GridIndexRRQ):
                    self._kernel = GirKernelRRQ.from_gir(algorithm)
                else:
                    self._kernel = GirKernelRRQ(
                        self.engine.products, self.engine.weights
                    )
                self._save_static_kernel(self._kernel)
            except Exception:
                self._kernel_failed = True
                return None
        return self._kernel

    def _expected_static_digest(self) -> Optional[str]:
        """The config digest the static-path kernel build *would* produce.

        Mirrors :meth:`_get_kernel`'s construction recipe without doing
        any of its work: the engine's own grid when it fronts a
        GIR/kernel algorithm, otherwise the default equal-width recipe.
        ``None`` means the recipe cannot be predicted cheaply — callers
        then refuse the cache rather than trust an unverifiable entry.
        """
        try:
            from ..core.gir import GridIndexRRQ
            from ..core.grid import DEFAULT_PARTITIONS
            from ..vectorized.girkernel import (DEFAULT_P_BLOCK,
                                                DEFAULT_W_BLOCK)
            from ..vectorized.kernelstore import (config_digest_of,
                                                  kernel_config_digest)

            algorithm = getattr(self.engine, "algorithm", self.engine)
            if isinstance(algorithm, GirKernelRRQ):
                return config_digest_of(algorithm)
            if isinstance(algorithm, GridIndexRRQ):
                return kernel_config_digest(
                    algorithm.grid.alpha_p, algorithm.grid.alpha_w,
                    DEFAULT_W_BLOCK, DEFAULT_P_BLOCK,
                    algorithm.use_domin, "float32",
                )
            # GirKernelRRQ(products, weights) default construction.
            w_range = float(self._W.max())
            alpha_p = np.linspace(0.0, self.engine.products.value_range,
                                  DEFAULT_PARTITIONS + 1)
            alpha_w = np.linspace(0.0, w_range, DEFAULT_PARTITIONS + 1)
            return kernel_config_digest(alpha_p, alpha_w,
                                        DEFAULT_W_BLOCK, DEFAULT_P_BLOCK,
                                        True, "float32")
        except Exception:
            return None

    def _load_cached_static_kernel(self) -> Optional[GirKernelRRQ]:
        """mmap warm start for the static-engine kernel, if cached.

        A tuned cache (``tuned.json`` pointer) resolves to its
        ``cfg-<digest>`` per-config store, loaded only when the store's
        recorded config digest matches the pointer.  The default
        ``static/`` entry is loaded only when its recorded digest
        matches the config this scheduler would build — ``kernel.meta``
        used to record layout but not boundaries/partitions/f32
        settings, silently reusing a kernel built under an older grid
        after a config change.  Either way the mapped ``P``/``W``
        arrays must still compare equal to the engine's own (a
        memcmp-speed scan); any mismatch refuses the cache and rebuilds.
        """
        if self.kernel_cache_dir is None:
            return None
        try:
            import os

            from ..vectorized.kernelstore import (config_store_dir,
                                                  load_kernel,
                                                  read_tuned_pointer)

            pointer = read_tuned_pointer(self.kernel_cache_dir)
            if pointer is not None:
                kernel = load_kernel(
                    config_store_dir(self.kernel_cache_dir,
                                     pointer["digest"]),
                    expected_digest=pointer["digest"],
                )
            else:
                expected = self._expected_static_digest()
                if expected is None:
                    return None
                kernel = load_kernel(
                    os.path.join(self.kernel_cache_dir, "static"),
                    expected_digest=expected,
                )
            if kernel.P.shape == self._P.shape and \
                    kernel.W.shape == self._W.shape and \
                    np.array_equal(kernel.P, self._P) and \
                    np.array_equal(kernel.W, self._W):
                return kernel
        except Exception:
            pass
        return None

    def _save_static_kernel(self, kernel: Optional[GirKernelRRQ]) -> None:
        if self.kernel_cache_dir is None or kernel is None:
            return
        try:
            import os

            from ..vectorized.kernelstore import save_kernel

            save_kernel(os.path.join(self.kernel_cache_dir, "static"),
                        kernel)
        except Exception:
            # Cache persistence is best-effort; serving never depends on it.
            pass

    def swap_kernel(self, kernel: GirKernelRRQ, config=None) -> None:
        """Hot-swap the static batch-path kernel (auto-tuner flip).

        The dispatcher reads ``self._kernel`` once per batch, so a
        single reference assignment is the whole flip: in-flight
        batches finish on the old kernel, the next batch sees the new
        one.  When a kernel cache is configured the tuned kernel is
        persisted to its own ``cfg-<digest>`` store and ``tuned.json``
        is flipped to it, so restarts come back up already tuned
        (persistence is best-effort, the in-memory swap is not).
        """
        if self.kernel_cache_dir is not None:
            try:
                from ..vectorized.kernelstore import (config_digest_of,
                                                      config_store_dir,
                                                      save_kernel,
                                                      write_tuned_pointer)

                digest = config_digest_of(kernel)
                save_kernel(config_store_dir(self.kernel_cache_dir, digest),
                            kernel)
                write_tuned_pointer(
                    self.kernel_cache_dir, digest,
                    config.as_dict() if config is not None else None,
                )
            except Exception:
                pass
        self._kernel = kernel
        self._kernel_failed = False

    def set_snapshot_tuning(self, config) -> None:
        """Adopt a tuned config for snapshot kernels (MVCC engines).

        The next ``_get_snapshot_kernel`` miss rebuilds under
        ``config`` (a :class:`~repro.tuning.tuner.CandidateConfig`);
        callers pair this with an engine checkpoint so a fresh
        generation exists to densify.  Clearing the failure latch lets
        a previously failed build retry under the new config.
        """
        self._snapshot_tuning = config
        self._snap_kernel = None
        self._snap_kernel_failed = False

    def _answer_batched(self, live: List[_Pending],
                        counter: OpCounter) -> None:
        """Coalesced path: the blocked kernel, or one shared rank sweep.

        Both produce answers byte-identical to the per-query engine
        (derivation from the rank vector mirrors
        :class:`~repro.vectorized.batch.BatchOracle`; the kernel's
        equivalence is enforced by the property tests), so the HTTP
        payloads never depend on which path ran.
        """
        kernel = self._get_kernel()
        if kernel is not None:
            if len(live) > 1 and self._answer_fused(live, kernel, counter):
                return
            for pending in live:
                with use_context(pending.ctx), span("kernel.query") as sp:
                    sp.annotate("kind", pending.kind)
                    sp.annotate("batch_size", len(live))
                    if pending.kind == "rtk":
                        result = kernel.reverse_topk(pending.q, pending.k)
                    else:
                        result = kernel.reverse_kranks(pending.q, pending.k)
                    if kernel.last_stats is not None:
                        stats = kernel.last_stats.snapshot()
                        sp.annotate("kernel_stats", stats)
                        self.metrics.record_kernel(
                            stats, trace_id=current_trace_id()
                        )
                counter.merge(result.counter)
                pending.future.set_result(result)
            return
        Q = np.stack([pending.q for pending in live])
        rank_matrix = all_ranks_multi(self._P, self._W, Q, self.chunk_budget)
        # One shared sweep: |P| * |W| pairwise products total, not per query.
        counter.pairwise += self._P.shape[0] * self._W.shape[0]
        for pending, row in zip(live, rank_matrix):
            with use_context(pending.ctx), span("batch.derive") as sp:
                sp.annotate("kind", pending.kind)
                sp.annotate("batch_size", len(live))
                sp.annotate("shared_sweep", True)
                if pending.kind == "rtk":
                    qualifying = frozenset(
                        int(i) for i in np.nonzero(row < pending.k)[0]
                    )
                    result = RTKResult(weights=qualifying, k=pending.k)
                else:
                    pairs = [(int(r), int(i)) for i, r in enumerate(row)]
                    result = make_rkr_result(pairs, pending.k, OpCounter())
            pending.future.set_result(result)
