"""A minimal stdlib client for the JSON/HTTP query service.

Used by the integration tests, the serving example, and the throughput
benchmark; also handy from a REPL.  HTTP rejections are translated back
into the same :mod:`repro.errors` classes the server raised, so code
written against the in-process :class:`~repro.service.server.QueryService`
behaves identically against a remote one.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional, Sequence

from ..errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
)

#: HTTP status -> exception class raised by the client.
_STATUS_ERRORS = {
    400: InvalidParameterError,
    404: InvalidParameterError,
    429: ServiceOverloadError,
    504: DeadlineExceededError,
}


class ServiceClient:
    """Talks to one :class:`ReverseRankHTTPServer` base URL.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8377"`` (no trailing slash needed).
    timeout_s:
        Socket-level timeout for each request.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
                message = body.get("message", str(exc))
            except (json.JSONDecodeError, ValueError):
                message = str(exc)
            error_class = _STATUS_ERRORS.get(exc.code, ServiceError)
            raise error_class(message) from None

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def query(self, vector: Optional[Sequence[float]] = None, *,
              product: Optional[int] = None, kind: str = "rtk",
              k: int = 10, timeout_ms: Optional[float] = None) -> dict:
        """``POST /query``; returns the decoded answer dict."""
        payload: dict = {"kind": kind, "k": k}
        if vector is not None:
            payload["vector"] = [float(x) for x in vector]
        if product is not None:
            payload["product"] = int(product)
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._request("POST", "/query", payload)

    def reverse_topk(self, vector, k: int = 10) -> frozenset:
        """Sugar: the RTK answer as the library's frozenset of indices."""
        return frozenset(self.query(vector, kind="rtk", k=k)["weights"])

    def reverse_kranks(self, vector, k: int = 10) -> tuple:
        """Sugar: the RKR answer as the library's (rank, index) tuples."""
        answer = self.query(vector, kind="rkr", k=k)
        return tuple((rank, idx) for rank, idx in answer["entries"])

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def info(self) -> dict:
        """``GET /info``."""
        return self._request("GET", "/info")

    def wait_until_healthy(self, attempts: int = 50,
                           delay_s: float = 0.05) -> dict:
        """Poll ``/healthz`` until it answers (for just-started servers)."""
        import time

        last_error: Optional[Exception] = None
        for _ in range(attempts):
            try:
                return self.healthz()
            except (ReproError, OSError) as exc:
                last_error = exc
                time.sleep(delay_s)
        raise ServiceError(f"service never became healthy: {last_error}")
