"""A minimal stdlib client for the JSON/HTTP query service.

Used by the integration tests, the serving example, and the throughput
benchmark; also handy from a REPL.  HTTP rejections are translated back
into the same :mod:`repro.errors` classes the server raised, so code
written against the in-process :class:`~repro.service.server.QueryService`
behaves identically against a remote one.

Resilience semantics (see ``docs/operations.md``):

* **Transport failures** (connection refused/reset, DNS, socket timeout)
  mean the server never answered; they surface as
  :class:`~repro.errors.ServiceUnavailableError` and are retried.
* **Load rejections** (HTTP 429 overload, 503 shutting-down) are retried
  with exponential backoff and *full jitter* — each sleep is uniform in
  ``[0, min(cap, base * 2**attempt))`` so synchronized clients don't
  stampede the server in lockstep.
* **Semantic 4xx errors** (bad parameters, unknown paths) and deadline
  expiry (504) are never retried: the request itself is wrong or out of
  time, and a retry cannot fix it.
* Every request honors a **total deadline** across all attempts and
  backoff sleeps, not just a per-attempt socket timeout.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Optional, Sequence

from ..errors import (
    DeadlineExceededError,
    InvalidParameterError,
    NotPrimaryError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    ServiceUnavailableError,
)
from .limits import Deadline

#: HTTP status -> exception class raised by the client.
_STATUS_ERRORS = {
    400: InvalidParameterError,
    404: InvalidParameterError,
    409: NotPrimaryError,
    429: ServiceOverloadError,
    503: ServiceUnavailableError,
    504: DeadlineExceededError,
}

#: Statuses worth retrying: transient load conditions, not caller mistakes.
_RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceClient:
    """Talks to one or more :class:`ReverseRankHTTPServer` base URLs.

    With several endpoints the client fails over: a transport failure
    rotates to the next endpoint before retrying (reads keep working as
    long as *any* replica answers), and a mutation answered with 409
    (:class:`~repro.errors.NotPrimaryError` — the endpoint is a standby)
    is re-sent to each remaining endpoint in order until the primary is
    found.  Standbys refuse writes until promoted, so after a primary
    failure writes keep failing with 409 until an operator (or
    :meth:`promote`) flips a standby — by design: auto-promotion from
    the client would risk split-brain.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8377"`` (no trailing slash needed), or
        an ordered sequence of such URLs — primary first, by convention.
    timeout_s:
        Socket-level timeout for each individual attempt.
    retries:
        Extra attempts after the first on retryable failures (429/503
        and transport errors).  ``0`` disables retrying entirely.
    backoff_base_s / backoff_cap_s:
        Exponential backoff parameters; the actual sleep before attempt
        ``i`` is uniform in ``[0, min(cap, base * 2**i))`` (full jitter).
    total_deadline_s:
        Default wall-clock budget for one logical request across all
        attempts and sleeps; ``None`` leaves only per-attempt timeouts.
    rng:
        Jitter source; pass ``random.Random(seed)`` for reproducibility.
    annotate_endpoint:
        When True every decoded answer dict gains an ``"_endpoint"`` key
        naming the base URL that actually answered (after any failover
        rotation).  Off by default so answer dicts stay byte-identical
        to the server's canonical JSON; the cluster coordinator turns it
        on to attribute each partial answer to a shard replica.
    """

    def __init__(self, base_url, timeout_s: float = 30.0,
                 retries: int = 2, backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0,
                 total_deadline_s: Optional[float] = None,
                 rng: Optional[random.Random] = None,
                 annotate_endpoint: bool = False):
        urls = [base_url] if isinstance(base_url, str) else list(base_url)
        if not urls:
            raise InvalidParameterError("at least one base URL is required")
        self.endpoints = [url.rstrip("/") for url in urls]
        self._active = 0
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.total_deadline_s = total_deadline_s
        self._rng = rng or random.Random()
        self.annotate_endpoint = bool(annotate_endpoint)

    @property
    def base_url(self) -> str:
        """The endpoint requests currently target (failover moves it)."""
        return self.endpoints[self._active]

    def _rotate(self) -> None:
        self._active = (self._active + 1) % len(self.endpoints)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _backoff(self, attempt: int, deadline: Deadline) -> bool:
        """Sleep before retry ``attempt``; False if the deadline forbids it."""
        window = min(self.backoff_cap_s,
                     self.backoff_base_s * (2.0 ** attempt))
        sleep_s = self._rng.uniform(0.0, window)
        remaining = deadline.remaining()
        if remaining is not None:
            if remaining <= sleep_s:
                return False
        time.sleep(sleep_s)
        return True

    def _attempt(self, request: urllib.request.Request,
                 deadline: Deadline,
                 timeout_s: Optional[float] = None) -> dict:
        """One HTTP round trip, deadline-capped at the socket level.

        ``timeout_s`` overrides the client-wide socket timeout for this
        attempt (the cluster coordinator budgets a per-shard deadline
        out of the request's remaining time).
        """
        timeout = self.timeout_s if timeout_s is None else float(timeout_s)
        remaining = deadline.remaining()
        if remaining is not None:
            if remaining <= 0:
                raise DeadlineExceededError(
                    "client deadline exceeded before the request was sent"
                )
            timeout = min(timeout, remaining)
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read())

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None,
                 total_deadline_s: Optional[float] = None,
                 retries: Optional[int] = None,
                 mutation: bool = False,
                 endpoint: Optional[str] = None,
                 timeout_s: Optional[float] = None,
                 headers: Optional[dict] = None) -> dict:
        """One logical request, with retries and endpoint failover.

        ``mutation=True`` makes a 409 answer (standby) rotate to the
        next endpoint — without consuming a retry attempt — until every
        endpoint has refused.  Transport failures (connection reset /
        refused mid-failover) likewise rotate through each remaining
        endpoint once before a retry attempt is consumed, so a client
        caught in the promote window finds the new primary instead of
        surfacing a hard transport error.  ``endpoint`` pins the request
        to one URL (used by :meth:`promote`, which must target a
        *specific* node).  ``timeout_s`` overrides the per-attempt
        socket timeout for this call only; ``headers`` adds extra
        request headers (e.g. an ``X-Trace-Id`` to propagate a trace
        across processes).
        """
        data = json.dumps(payload).encode() if payload is not None else None
        budget = (total_deadline_s if total_deadline_s is not None
                  else self.total_deadline_s)
        deadline = Deadline.after(None if budget is None else max(0.0, budget))
        attempts = 1 + (self.retries if retries is None else max(0, retries))
        request_headers = {"Content-Type": "application/json"}
        if headers:
            request_headers.update(headers)
        last_error: Optional[Exception] = None
        attempt = 0
        not_primary_rotations = 0
        transport_rotations = 0
        while True:
            url = endpoint if endpoint is not None else self.base_url
            request = urllib.request.Request(
                url + path, data=data, method=method,
                headers=dict(request_headers),
            )
            try:
                body = self._attempt(request, deadline, timeout_s)
                if self.annotate_endpoint and isinstance(body, dict):
                    body["_endpoint"] = url
                return body
            except urllib.error.HTTPError as exc:
                # The server answered: an HTTP-level rejection, with a
                # structured JSON body when it came from our frontend.
                try:
                    body = json.loads(exc.read())
                    message = body.get("message", str(exc))
                except (json.JSONDecodeError, ValueError):
                    body = {}
                    message = str(exc)
                error_class = _STATUS_ERRORS.get(exc.code, ServiceError)
                error = error_class(message)
                if isinstance(body, dict) and "retry_after_s" in body:
                    # Load shedding announces when capacity frees up;
                    # carry the hint through to the caller.
                    error.retry_after_s = body["retry_after_s"]
                if (exc.code == 409 and mutation and endpoint is None
                        and not_primary_rotations < len(self.endpoints) - 1):
                    # A standby refused the write — ask the next replica.
                    not_primary_rotations += 1
                    self._rotate()
                    last_error = error
                    continue
                if exc.code not in _RETRYABLE_STATUSES:
                    raise error from None
                last_error = error
            except ServiceError:
                raise  # our own deadline guard — not retryable
            except (urllib.error.URLError, ConnectionError, TimeoutError,
                    OSError) as exc:
                # The server never answered: transport-level failure,
                # distinct from an HTTP error.
                reason = getattr(exc, "reason", exc)
                last_error = ServiceUnavailableError(
                    f"cannot reach {url}: {reason}"
                )
                if endpoint is None and len(self.endpoints) > 1:
                    self._rotate()  # fail over before the next attempt
                    if transport_rotations < len(self.endpoints) - 1:
                        # Mid-failover RSTs are expected: each remaining
                        # replica gets one immediate try before the
                        # retry budget (and its backoff) is touched.
                        transport_rotations += 1
                        if not deadline.expired():
                            continue
            attempt += 1
            if attempt >= attempts or not self._backoff(attempt - 1,
                                                        deadline):
                break
        assert last_error is not None
        raise last_error from None

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def query(self, vector: Optional[Sequence[float]] = None, *,
              product: Optional[int] = None, kind: str = "rtk",
              k: int = 10, timeout_ms: Optional[float] = None,
              timeout_s: Optional[float] = None,
              headers: Optional[dict] = None,
              endpoint: Optional[str] = None) -> dict:
        """``POST /query``; returns the decoded answer dict.

        ``timeout_ms`` is the *server-side* deadline (rides in the JSON
        body); ``timeout_s`` overrides this client's socket timeout for
        this call only; ``headers`` adds request headers (e.g.
        ``X-Trace-Id``); ``endpoint`` pins the request to one replica
        URL with no failover rotation (the coordinator's hedged backup
        probe targets a *specific* standby).
        """
        payload: dict = {"kind": kind, "k": k}
        if vector is not None:
            payload["vector"] = [float(x) for x in vector]
        if product is not None:
            payload["product"] = int(product)
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._request("POST", "/query", payload,
                             timeout_s=timeout_s, headers=headers,
                             endpoint=(endpoint.rstrip("/")
                                       if endpoint is not None else None))

    def reverse_topk(self, vector, k: int = 10) -> frozenset:
        """Sugar: the RTK answer as the library's frozenset of indices."""
        return frozenset(self.query(vector, kind="rtk", k=k)["weights"])

    def reverse_kranks(self, vector, k: int = 10) -> tuple:
        """Sugar: the RKR answer as the library's (rank, index) tuples."""
        answer = self.query(vector, kind="rkr", k=k)
        return tuple((rank, idx) for rank, idx in answer["entries"])

    def healthz(self, timeout_s: Optional[float] = None,
                retries: Optional[int] = None) -> dict:
        """``GET /healthz`` (``timeout_s``/``retries`` per-call overrides)."""
        return self._request("GET", "/healthz", timeout_s=timeout_s,
                             retries=retries)

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def info(self) -> dict:
        """``GET /info``."""
        return self._request("GET", "/info")

    # ------------------------------------------------------------------
    # durable-service endpoints (mutations, replication, promotion)
    # ------------------------------------------------------------------

    def insert_product(self, vector: Sequence[float]) -> dict:
        """``POST /insert``; returns ``{"index", "lsn", ...}``."""
        return self._request("POST", "/insert", {
            "type": "product", "vector": [float(x) for x in vector],
        }, mutation=True)

    def insert_weight(self, vector: Sequence[float],
                      renormalize: bool = False) -> dict:
        """``POST /insert`` for a weight vector."""
        return self._request("POST", "/insert", {
            "type": "weight", "vector": [float(x) for x in vector],
            "renormalize": bool(renormalize),
        }, mutation=True)

    def delete_product(self, index: int) -> dict:
        """``POST /delete``; returns ``{"index", "lsn", ...}``."""
        return self._request("POST", "/delete", {
            "type": "product", "index": int(index),
        }, mutation=True)

    def delete_weight(self, index: int) -> dict:
        """``POST /delete`` for a weight."""
        return self._request("POST", "/delete", {
            "type": "weight", "index": int(index),
        }, mutation=True)

    def compact(self) -> dict:
        """``POST /compact``; returns the old→new index maps and LSN."""
        return self._request("POST", "/compact", {}, mutation=True)

    def snapshot(self) -> dict:
        """``POST /snapshot``; forces a snapshot + WAL truncation."""
        return self._request("POST", "/snapshot", {}, mutation=True)

    def promote(self, endpoint: Optional[str] = None) -> dict:
        """``POST /promote`` — flip a standby to primary.

        Targets ``endpoint`` explicitly (no failover: promoting
        "whichever node answers" would be a split-brain machine);
        defaults to the currently active endpoint.  Subsequent writes
        from this client go there first.
        """
        target = (endpoint or self.base_url).rstrip("/")
        body = self._request("POST", "/promote", {}, endpoint=target)
        if target in self.endpoints:
            self._active = self.endpoints.index(target)
        return body

    def retarget(self, primary_url: str,
                 endpoint: Optional[str] = None) -> dict:
        """``POST /retarget`` — point a standby's tailer at a new primary.

        After a failover the surviving standbys of a shard would keep
        polling the dead primary forever; the supervisor re-points them
        here.  Like :meth:`promote` this targets one *specific* node
        (``endpoint``, default the active one) — no failover rotation.
        """
        target = (endpoint or self.base_url).rstrip("/")
        return self._request("POST", "/retarget",
                             {"primary_url": str(primary_url)},
                             endpoint=target)

    def tune(self, force: bool = True, endpoint: Optional[str] = None,
             timeout_s: Optional[float] = None) -> dict:
        """``POST /tuner`` — run one auto-tuning pass on the server.

        ``force=False`` respects the server's trigger (the pass is
        skipped unless its live filtering is poor).  Like
        :meth:`promote` this targets one *specific* node (``endpoint``,
        default the active one): each replica owns its own grid, so
        "tune whichever node answers" would tune the wrong one.
        Tuning builds and scores several candidate indexes, so pass a
        generous ``timeout_s``.
        """
        target = (endpoint or self.base_url).rstrip("/")
        return self._request("POST", "/tuner", {"force": bool(force)},
                             endpoint=target, timeout_s=timeout_s)

    def tuner_status(self, endpoint: Optional[str] = None) -> dict:
        """``GET /tuner`` — trigger verdict, run counters, last report."""
        target = (endpoint or self.base_url).rstrip("/")
        return self._request("GET", "/tuner", endpoint=target)

    def replicate(self, since: int = 0, limit: Optional[int] = None) -> dict:
        """``GET /replicate?since=N`` — the primary's WAL feed."""
        path = f"/replicate?since={int(since)}"
        if limit is not None:
            path += f"&limit={int(limit)}"
        return self._request("GET", path)

    def wait_until_healthy(self, timeout_s: float = 5.0,
                           poll_s: float = 0.05) -> dict:
        """Poll ``/healthz`` until it answers (for just-started servers).

        Honors a *total* deadline of ``timeout_s`` across all polls.
        Transport failures (connection refused — the server is not up
        yet) keep polling; an HTTP-level error means something *is*
        listening but it is not our service, so that fails immediately
        with a clear message instead of burning the whole deadline.
        """
        deadline = Deadline.after(timeout_s)
        last_error: Optional[Exception] = None
        while True:
            remaining = deadline.remaining()
            if remaining is not None and remaining <= 0:
                break
            try:
                return self._request("GET", "/healthz", retries=0,
                                     total_deadline_s=remaining)
            except ServiceUnavailableError as exc:
                last_error = exc  # not reachable yet — keep polling
            except DeadlineExceededError as exc:
                last_error = exc
            except ReproError as exc:
                raise ServiceError(
                    f"{self.base_url} answered /healthz with an HTTP error "
                    f"({exc}); is something else listening on that port?"
                ) from None
            remaining = deadline.remaining()
            if remaining is not None and remaining <= 0:
                break
            time.sleep(poll_s if remaining is None
                       else min(poll_s, remaining))
        raise ServiceUnavailableError(
            f"service at {self.base_url} never became healthy within "
            f"{timeout_s}s: {last_error}"
        )
