"""A minimal stdlib client for the JSON/HTTP query service.

Used by the integration tests, the serving example, and the throughput
benchmark; also handy from a REPL.  HTTP rejections are translated back
into the same :mod:`repro.errors` classes the server raised, so code
written against the in-process :class:`~repro.service.server.QueryService`
behaves identically against a remote one.

Resilience semantics (see ``docs/operations.md``):

* **Transport failures** (connection refused/reset, DNS, socket timeout)
  mean the server never answered; they surface as
  :class:`~repro.errors.ServiceUnavailableError` and are retried.
* **Load rejections** (HTTP 429 overload, 503 shutting-down) are retried
  with exponential backoff and *full jitter* — each sleep is uniform in
  ``[0, min(cap, base * 2**attempt))`` so synchronized clients don't
  stampede the server in lockstep.
* **Semantic 4xx errors** (bad parameters, unknown paths) and deadline
  expiry (504) are never retried: the request itself is wrong or out of
  time, and a retry cannot fix it.
* Every request honors a **total deadline** across all attempts and
  backoff sleeps, not just a per-attempt socket timeout.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Optional, Sequence

from ..errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    ServiceUnavailableError,
)
from .limits import Deadline

#: HTTP status -> exception class raised by the client.
_STATUS_ERRORS = {
    400: InvalidParameterError,
    404: InvalidParameterError,
    429: ServiceOverloadError,
    503: ServiceUnavailableError,
    504: DeadlineExceededError,
}

#: Statuses worth retrying: transient load conditions, not caller mistakes.
_RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceClient:
    """Talks to one :class:`ReverseRankHTTPServer` base URL.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8377"`` (no trailing slash needed).
    timeout_s:
        Socket-level timeout for each individual attempt.
    retries:
        Extra attempts after the first on retryable failures (429/503
        and transport errors).  ``0`` disables retrying entirely.
    backoff_base_s / backoff_cap_s:
        Exponential backoff parameters; the actual sleep before attempt
        ``i`` is uniform in ``[0, min(cap, base * 2**i))`` (full jitter).
    total_deadline_s:
        Default wall-clock budget for one logical request across all
        attempts and sleeps; ``None`` leaves only per-attempt timeouts.
    rng:
        Jitter source; pass ``random.Random(seed)`` for reproducibility.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0,
                 retries: int = 2, backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0,
                 total_deadline_s: Optional[float] = None,
                 rng: Optional[random.Random] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.total_deadline_s = total_deadline_s
        self._rng = rng or random.Random()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _backoff(self, attempt: int, deadline: Deadline) -> bool:
        """Sleep before retry ``attempt``; False if the deadline forbids it."""
        window = min(self.backoff_cap_s,
                     self.backoff_base_s * (2.0 ** attempt))
        sleep_s = self._rng.uniform(0.0, window)
        remaining = deadline.remaining()
        if remaining is not None:
            if remaining <= sleep_s:
                return False
        time.sleep(sleep_s)
        return True

    def _attempt(self, request: urllib.request.Request,
                 deadline: Deadline) -> dict:
        """One HTTP round trip, deadline-capped at the socket level."""
        timeout = self.timeout_s
        remaining = deadline.remaining()
        if remaining is not None:
            if remaining <= 0:
                raise DeadlineExceededError(
                    "client deadline exceeded before the request was sent"
                )
            timeout = min(timeout, remaining)
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read())

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None,
                 total_deadline_s: Optional[float] = None,
                 retries: Optional[int] = None) -> dict:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        budget = (total_deadline_s if total_deadline_s is not None
                  else self.total_deadline_s)
        deadline = Deadline.after(None if budget is None else max(0.0, budget))
        attempts = 1 + (self.retries if retries is None else max(0, retries))
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                return self._attempt(request, deadline)
            except urllib.error.HTTPError as exc:
                # The server answered: an HTTP-level rejection, with a
                # structured JSON body when it came from our frontend.
                try:
                    body = json.loads(exc.read())
                    message = body.get("message", str(exc))
                except (json.JSONDecodeError, ValueError):
                    message = str(exc)
                error_class = _STATUS_ERRORS.get(exc.code, ServiceError)
                error = error_class(message)
                if exc.code not in _RETRYABLE_STATUSES:
                    raise error from None
                last_error = error
            except ServiceError:
                raise  # our own deadline guard — not retryable
            except (urllib.error.URLError, ConnectionError, TimeoutError,
                    OSError) as exc:
                # The server never answered: transport-level failure,
                # distinct from an HTTP error.
                reason = getattr(exc, "reason", exc)
                last_error = ServiceUnavailableError(
                    f"cannot reach {self.base_url}: {reason}"
                )
            if attempt + 1 >= attempts or not self._backoff(attempt, deadline):
                break
        assert last_error is not None
        raise last_error from None

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def query(self, vector: Optional[Sequence[float]] = None, *,
              product: Optional[int] = None, kind: str = "rtk",
              k: int = 10, timeout_ms: Optional[float] = None) -> dict:
        """``POST /query``; returns the decoded answer dict."""
        payload: dict = {"kind": kind, "k": k}
        if vector is not None:
            payload["vector"] = [float(x) for x in vector]
        if product is not None:
            payload["product"] = int(product)
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._request("POST", "/query", payload)

    def reverse_topk(self, vector, k: int = 10) -> frozenset:
        """Sugar: the RTK answer as the library's frozenset of indices."""
        return frozenset(self.query(vector, kind="rtk", k=k)["weights"])

    def reverse_kranks(self, vector, k: int = 10) -> tuple:
        """Sugar: the RKR answer as the library's (rank, index) tuples."""
        answer = self.query(vector, kind="rkr", k=k)
        return tuple((rank, idx) for rank, idx in answer["entries"])

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def info(self) -> dict:
        """``GET /info``."""
        return self._request("GET", "/info")

    def wait_until_healthy(self, timeout_s: float = 5.0,
                           poll_s: float = 0.05) -> dict:
        """Poll ``/healthz`` until it answers (for just-started servers).

        Honors a *total* deadline of ``timeout_s`` across all polls.
        Transport failures (connection refused — the server is not up
        yet) keep polling; an HTTP-level error means something *is*
        listening but it is not our service, so that fails immediately
        with a clear message instead of burning the whole deadline.
        """
        deadline = Deadline.after(timeout_s)
        last_error: Optional[Exception] = None
        while True:
            remaining = deadline.remaining()
            if remaining is not None and remaining <= 0:
                break
            try:
                return self._request("GET", "/healthz", retries=0,
                                     total_deadline_s=remaining)
            except ServiceUnavailableError as exc:
                last_error = exc  # not reachable yet — keep polling
            except DeadlineExceededError as exc:
                last_error = exc
            except ReproError as exc:
                raise ServiceError(
                    f"{self.base_url} answered /healthz with an HTTP error "
                    f"({exc}); is something else listening on that port?"
                ) from None
            remaining = deadline.remaining()
            if remaining is not None and remaining <= 0:
                break
            time.sleep(poll_s if remaining is None
                       else min(poll_s, remaining))
        raise ServiceUnavailableError(
            f"service at {self.base_url} never became healthy within "
            f"{timeout_s}s: {last_error}"
        )
