"""Thread-safe LRU cache for served query answers.

Real reverse-rank traffic is heavily skewed — a handful of hot products
(the ones being merchandised right now) receive most of the queries — so
an answer cache in front of the scheduler converts the common case into a
dictionary lookup.  Keys are exact: the query point's canonical float64
bytes plus ``(kind, k, method)``, so two requests share an entry only when
the library would provably return the same answer.

Invalidation is explicit.  A static :class:`~repro.core.gir.GridIndexRRQ`
never changes, so entries live until evicted; when the service fronts a
:class:`~repro.ext.dynamic.DynamicRRQEngine`, :func:`bind_dynamic`
subscribes the cache to the engine's mutation events so every insert,
delete, or compaction flushes stale answers.

Entries are additionally keyed by an **index generation**: every
:meth:`ResultCache.invalidate` bumps a monotone counter, and a
:meth:`ResultCache.put` stamped with an older generation is dropped
instead of stored.  This closes the swap-vs-in-flight race: a query
that started computing against the old index cannot re-poison the
cache *after* a rebuild, promote, or tuner hot-swap cleared it —
without the writer holding any lock across the (slow) answer
computation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple

import numpy as np

from ..errors import InvalidParameterError

#: Default number of answers kept.
DEFAULT_CAPACITY = 1024

#: Cache key: (query-point bytes, kind, k, method).
CacheKey = Tuple[bytes, str, int, str]


def make_key(q: np.ndarray, kind: str, k: int, method: str) -> CacheKey:
    """Canonical cache key for one request.

    ``q`` must already be validated/canonicalized (float64, 1-D) — the
    service layer runs ``check_query_point`` before keying, so byte
    equality is exactly value equality.
    """
    q_arr = np.ascontiguousarray(q, dtype=np.float64)
    return (q_arr.tobytes(), kind, int(k), method)


class ResultCache:
    """A bounded, thread-safe LRU mapping of request keys to answers.

    Hit/miss tallies are kept under the same lock so the ``/metrics``
    snapshot always sees a consistent pair.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 0:
            raise InvalidParameterError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._generation = 0

    def generation(self) -> int:
        """The current index generation (bumped by every invalidate).

        Readers capture this *before* computing an answer and pass it to
        :meth:`put`; a swap landing in between moves the generation and
        the stale put is rejected.
        """
        with self._lock:
            return self._generation

    def get(self, key: CacheKey) -> Optional[Any]:
        """The cached answer, refreshed to most-recently-used, or None."""
        with self._lock:
            try:
                value = self._entries.pop(key)
            except KeyError:
                self._misses += 1
                return None
            self._entries[key] = value
            self._hits += 1
            return value

    def put(self, key: CacheKey, value: Any,
            generation: Optional[int] = None) -> None:
        """Insert (or refresh) an answer, evicting the LRU entry if full.

        ``generation`` (from :meth:`generation`, captured before the
        answer was computed) makes the insert conditional: if an
        :meth:`invalidate` has landed since, the answer was computed
        against a dead index and is silently dropped.
        """
        if self.capacity == 0:
            return
        with self._lock:
            if generation is not None and generation != self._generation:
                return
            self._entries.pop(key, None)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every entry and bump the generation.

        The hook every index-changing path calls: dynamic mutations
        (via :func:`bind_dynamic`), standby promotion, and the tuner's
        hot-swap critical section.
        """
        with self._lock:
            self._entries.clear()
            self._invalidations += 1
            self._generation += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any traffic)."""
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def stats(self) -> dict:
        """Snapshot for the ``/metrics`` endpoint."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / total if total else 0.0,
                "invalidations": self._invalidations,
            }


def bind_dynamic(cache: ResultCache, engine) -> None:
    """Flush ``cache`` whenever ``engine`` (a DynamicRRQEngine) mutates.

    The dynamic engine exposes ``add_change_listener``; every insert,
    remove, or compaction then invalidates the whole cache.  Whole-cache
    invalidation is deliberately coarse: a single product insert can
    change *every* rank, so per-entry invalidation would be wrong.
    """
    engine.add_change_listener(cache.invalidate)
