"""The query server: an embeddable service facade plus a JSON/HTTP frontend.

Two layers, deliberately separable:

* :class:`QueryService` — transport-agnostic orchestration of the
  micro-batch scheduler, the LRU answer cache, admission limits, and
  metrics.  Embed it directly when the caller is Python (the benchmark
  harness does exactly this to measure scheduling without socket noise).
* :class:`ReverseRankHTTPServer` — a stdlib ``ThreadingHTTPServer``
  exposing the service as a JSON API:

  =========  ==========  ===========================================
  method     path        body / answer
  =========  ==========  ===========================================
  POST       /query      ``{"vector": [...], "kind": "rtk"|"rkr",
                         "k": int}`` (or ``"product": idx``,
                         optional ``"timeout_ms"``)
  GET        /healthz    liveness probe
  GET        /metrics    qps, latency percentiles, batch + cache stats
                         (``?format=prometheus`` for text exposition
                         with trace-id exemplars)
  GET        /info       data set sizes, method, tuning parameters
  GET        /traces     recent request traces (``?id=`` one trace,
                         ``?limit=`` cap the listing)
  GET        /slowlog    slow-query log entries (``?limit=``)
  =========  ==========  ===========================================

Every ``/query``/mutation response carries an ``X-Trace-Id`` header —
the id minted at ingress (or accepted from the request's own
``X-Trace-Id``), under which the request's span tree is readable at
``GET /traces?id=...``.

Answers are canonical JSON (sorted keys): a served RTK/RKR answer is
byte-identical to :func:`encode_result` of the corresponding
:class:`~repro.queries.engine.RRQEngine` result, whichever execution path
(per-query or coalesced) produced it — the integration tests enforce this
against :class:`~repro.algorithms.naive.NaiveRRQ`.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter
from typing import Iterator, Optional, Union
from urllib.parse import parse_qs, urlsplit

from ..data.datasets import check_query_point
from ..errors import (
    InvalidParameterError,
    NotPrimaryError,
    ReproError,
    ServiceError,
    ServiceUnavailableError,
)
from ..obs.slowlog import (
    DEFAULT_SLOW_THRESHOLD_S,
    DEFAULT_SLOWLOG_CAPACITY,
    SlowQueryLog,
)
from ..obs.trace import (
    DEFAULT_TRACE_CAPACITY,
    Tracer,
    current,
    current_trace_id,
    span,
)
from ..queries.types import RKRResult, RTKResult
from ..resilience.breaker import (
    DEFAULT_FAILURE_THRESHOLD,
    DEFAULT_RESET_AFTER_S,
    CircuitBreaker,
)
from ..resilience.faults import fire
from .cache import DEFAULT_CAPACITY, ResultCache, bind_dynamic, make_key
from .limits import ServiceLimits, http_status, rejection_body
from .metrics import ServiceMetrics
from .scheduler import DEFAULT_BATCH_WINDOW_S, MicroBatchScheduler

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ServiceConfig:
    """Every serving knob in one place (the CLI maps flags onto this).

    ``fallback`` enables graceful degradation: when the primary engine
    fails (or its circuit breaker is open) requests are answered by the
    exact naive scan instead — slower, still byte-exact — and carry
    ``"degraded": true``.  ``breaker_threshold`` consecutive engine
    failures open the circuit; after ``breaker_reset_s`` one probe
    request tries the primary again (self-healing).

    ``use_kernel`` routes coalesced micro-batches through the
    weight-blocked GIR kernel (answers are byte-identical either way;
    see :class:`~repro.service.scheduler.MicroBatchScheduler`).

    The observability knobs: ``trace_capacity`` bounds the in-memory
    ring behind ``GET /traces`` (``trace_export_path`` additionally
    appends finished traces as JSON lines); requests at or above
    ``slow_query_threshold_s`` land in the slow-query log
    (``None`` disables it), bounded by ``slowlog_capacity`` with an
    optional ``slowlog_path`` JSON-lines sink.
    """

    batch_window_s: float = DEFAULT_BATCH_WINDOW_S
    cache_capacity: int = DEFAULT_CAPACITY
    limits: ServiceLimits = field(default_factory=ServiceLimits)
    fallback: bool = True
    breaker_threshold: int = DEFAULT_FAILURE_THRESHOLD
    breaker_reset_s: float = DEFAULT_RESET_AFTER_S
    use_kernel: bool = True
    kernel_cache_dir: Optional[str] = None
    trace_capacity: int = DEFAULT_TRACE_CAPACITY
    trace_export_path: Optional[str] = None
    slow_query_threshold_s: Optional[float] = DEFAULT_SLOW_THRESHOLD_S
    slowlog_capacity: int = DEFAULT_SLOWLOG_CAPACITY
    slowlog_path: Optional[str] = None
    #: Auto-tuning: ``auto_tune`` starts a background
    #: :class:`~repro.tuning.service.ServiceTuner` (``tune_interval_s``
    #: between passes; 0 keeps it manual via ``POST /tuner``).  A swap
    #: needs the serving undecided+refined fraction above
    #: ``tune_threshold`` (unless forced) and a verified measured win of
    #: at least ``tune_min_improvement``.
    auto_tune: bool = False
    tune_interval_s: float = 0.0
    tune_threshold: float = 0.35
    tune_min_improvement: float = 0.01
    tune_probe_queries: int = 16


def encode_result(result: Union[RTKResult, RKRResult], kind: str) -> dict:
    """The canonical JSON-ready encoding of one query answer.

    Key order is irrelevant (responses are serialized with sorted keys);
    value encoding is exact: RTK answers list their qualifying weight
    indices ascending, RKR answers list ``[rank, index]`` pairs in the
    library's deterministic tie-break order.
    """
    if kind == "rtk":
        return {
            "kind": "rtk",
            "k": int(result.k),
            "size": int(result.size),
            "weights": [int(i) for i in result.sorted_indices()],
        }
    return {
        "kind": "rkr",
        "k": int(result.k),
        "entries": [[int(rank), int(idx)] for rank, idx in result.entries],
    }


def canonical_json(obj) -> bytes:
    """Deterministic JSON bytes (sorted keys, compact separators)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


class QueryService:
    """Orchestrates scheduler + cache + limits + metrics over one engine.

    Parameters
    ----------
    engine:
        Anything exposing ``reverse_topk`` / ``reverse_kranks`` /
        ``products`` / ``weights`` — an
        :class:`~repro.queries.engine.RRQEngine`, a bare
        :class:`~repro.core.gir.GridIndexRRQ`, or any other library
        algorithm.
    config:
        Serving knobs; defaults are sensible for interactive use.
    """

    def __init__(self, engine, config: Optional[ServiceConfig] = None,
                 fallback_engine=None, degraded_reason: Optional[str] = None):
        self.engine = engine
        self.config = config or ServiceConfig()
        self.method = getattr(engine, "method", None) or getattr(
            engine, "name", type(engine).__name__
        ).lower()
        self.metrics = ServiceMetrics()
        self.tracer = Tracer(capacity=self.config.trace_capacity,
                             export_path=self.config.trace_export_path)
        self.slowlog = SlowQueryLog(
            threshold_s=self.config.slow_query_threshold_s,
            capacity=self.config.slowlog_capacity,
            path=self.config.slowlog_path,
        )
        self.cache = ResultCache(self.config.cache_capacity)
        self.scheduler = MicroBatchScheduler(
            engine,
            batch_window_s=self.config.batch_window_s,
            limits=self.config.limits,
            metrics=self.metrics,
            use_kernel=self.config.use_kernel,
            kernel_cache_dir=self.config.kernel_cache_dir,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_after_s=self.config.breaker_reset_s,
        )
        self._fallback_engine = fallback_engine
        self._fallback_lock = threading.Lock()
        #: Permanent degradation cause (e.g. the index failed its
        #: checksums and the service is running on the naive scan).
        self.degraded_reason = degraded_reason
        self._dim = engine.products.dim
        self.tuner = None
        self._tuner_lock = threading.Lock()
        if self.config.auto_tune:
            self.tuner = self._make_tuner(
                interval_s=self.config.tune_interval_s
            ).start()

    def _make_tuner(self, interval_s: float = 0.0):
        from ..tuning.service import ServiceTuner

        return ServiceTuner(
            self,
            threshold=self.config.tune_threshold,
            min_improvement=self.config.tune_min_improvement,
            probe_queries=self.config.tune_probe_queries,
            interval_s=interval_s,
        )

    def tuner_status(self) -> dict:
        """The ``GET /tuner`` body (cheap when tuning is off)."""
        tuner = self.tuner
        if tuner is None:
            return {"enabled": False}
        return tuner.status()

    def handle_tuner_request(self, payload: dict) -> dict:
        """``POST /tuner``: run one tuning pass (forced by default).

        A service without a background tuner gets a one-shot
        :class:`~repro.tuning.service.ServiceTuner` on first use, so
        operators can tune any live service without restarting it.
        """
        with self._tuner_lock:
            if self.tuner is None:
                self.tuner = self._make_tuner()
        return self.tuner.run_once(force=bool(payload.get("force", True)))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_datasets(cls, products, weights, method: str = "gir",
                      config: Optional[ServiceConfig] = None,
                      **engine_kwargs) -> "QueryService":
        """Build the engine in-process and serve it."""
        from ..queries.engine import RRQEngine

        return cls(RRQEngine(products, weights, method=method,
                             **engine_kwargs), config=config)

    @classmethod
    def from_index_dir(cls, directory: PathLike,
                       config: Optional[ServiceConfig] = None,
                       recover: bool = True) -> "QueryService":
        """Serve a Grid-index persisted by :func:`repro.core.storage.save_index`.

        Resilient by default: a checksum failure confined to the derived
        artifacts is healed in place (``recover=True``); if the GIR index
        is unrecoverable but the raw data still verifies, the service
        comes up **degraded** on the exact naive scan instead of refusing
        to start (``healthz`` reports it, answers carry
        ``"degraded": true``).  Only when the raw data itself is damaged
        does construction fail.
        """
        from ..core.storage import load_index
        from ..errors import DataValidationError, IndexCorruptionError

        try:
            return cls(load_index(directory, recover=recover), config=config)
        except (IndexCorruptionError, DataValidationError) as exc:
            from ..algorithms.naive import NaiveRRQ
            from ..data.io import load_products, load_weights

            directory = Path(directory)
            try:
                products = load_products(directory / "products.rrq")
                weights = load_weights(directory / "weights.rrq")
            except (ReproError, OSError):
                raise exc from None  # raw data gone too — nothing to serve
            naive = NaiveRRQ(products, weights)
            return cls(naive, config=config, fallback_engine=naive,
                       degraded_reason=f"index corrupt, serving naive scan: "
                                       f"{exc}")

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def resolve_query_point(self, vector=None, product: Optional[int] = None):
        """Turn a request's ``vector``/``product`` into a canonical point."""
        if (vector is None) == (product is None):
            raise InvalidParameterError(
                "provide exactly one of 'vector' or 'product'"
            )
        if product is not None:
            size = self.engine.products.size
            if not 0 <= int(product) < size:
                raise InvalidParameterError(
                    f"product index must be in [0, {size})"
                )
            vector = self.engine.products[int(product)]
        return check_query_point(vector, self._dim)

    def _fallback(self):
        """The exact naive fallback engine (lazily built), or ``None``."""
        if not self.config.fallback:
            return None
        with self._fallback_lock:
            if self._fallback_engine is None:
                from ..algorithms.naive import NaiveRRQ

                self._fallback_engine = NaiveRRQ(self.engine.products,
                                                 self.engine.weights)
            return self._fallback_engine

    def _finish(self, kind: str, k: int, start: float, *,
                cache_hit: bool = False, degraded: bool = False) -> None:
        """Close out one answered request: metrics, exemplar, slow log.

        The active trace id (if any) becomes the latency-histogram
        exemplar; a request at or above the slow-query threshold is
        recorded with its span tree and any kernel stats the scheduler
        annotated onto its spans.
        """
        latency_s = perf_counter() - start
        self.metrics.record_request(kind, latency_s, cache_hit=cache_hit,
                                    degraded=degraded,
                                    trace_id=current_trace_id())
        if not self.slowlog.should_log(latency_s):
            return
        entry = {
            "kind": kind,
            "k": int(k),
            "latency_s": latency_s,
            "cache_hit": cache_hit,
            "degraded": degraded,
        }
        ctx = current()
        if ctx is not None:
            entry["trace_id"] = ctx.trace.trace_id
            entry["spans"] = ctx.trace.span_tree()
            for recorded in ctx.trace.spans():
                if "kernel_stats" in recorded.annotations:
                    entry["kernel"] = recorded.annotations["kernel_stats"]
                    break
        self.slowlog.record(entry)

    def query(self, vector=None, *, product: Optional[int] = None,
              kind: str = "rtk", k: int = 10,
              deadline_s: Optional[float] = None) -> dict:
        """Answer one request; returns the JSON-ready answer dict.

        Raises :class:`ServiceOverloadError` / :class:`DeadlineExceededError`
        under load and :class:`InvalidParameterError` for caller mistakes.
        Engine failures trip the circuit breaker and are answered by the
        exact naive fallback (``"degraded": true`` in the response) when
        one is configured; with fallback disabled they surface as
        :class:`ServiceUnavailableError` (HTTP 503).
        Treat the returned dict as read-only: cache hits share it.

        When a trace is active (the HTTP frontend opens one per request)
        the whole call is a ``service.query`` span; the trace id rides
        into the scheduler and kernel, the latency histogram's exemplar,
        and the slow-query log.  Embedded callers that never start a
        trace pay only a ContextVar read.
        """
        start = perf_counter()
        fire("service.query")
        if kind not in ("rtk", "rkr"):
            raise InvalidParameterError("kind must be 'rtk' or 'rkr'")
        if int(k) <= 0:
            raise InvalidParameterError("k must be positive")
        # The span closes (joining the trace) before _finish runs, so a
        # slow-query record sees the full service/scheduler span tree.
        with span("service.query") as sp:
            sp.annotate("kind", kind)
            sp.annotate("k", int(k))
            encoded, cache_hit, degraded = self._answer(
                sp, vector, product, kind, int(k), deadline_s
            )
        self._finish(kind, k, start, cache_hit=cache_hit, degraded=degraded)
        return encoded

    def _answer(self, sp, vector, product, kind: str, k: int,
                deadline_s: Optional[float]):
        """The cache/scheduler/fallback pipeline behind :meth:`query`.

        Returns ``(encoded_answer, cache_hit, degraded)``; runs inside
        the ``service.query`` span (``sp``).
        """
        q_arr = self.resolve_query_point(vector, product)
        key = make_key(q_arr, kind, k, self.method)
        # Capture the cache generation *before* computing: a rebuild,
        # promote, or tuner swap that lands while the scheduler works
        # moves the generation and the put below is dropped, so an
        # answer from the old index can never re-poison a fresh cache.
        generation = self.cache.generation()
        cached = self.cache.get(key)
        if cached is not None:
            sp.annotate("cache_hit", True)
            return cached, True, False
        primary_error: Optional[Exception] = None
        if self.breaker.allow():
            try:
                result = self.scheduler.answer(q_arr, kind, k, deadline_s)
            except ServiceError:
                # Load shedding (overload/deadline/shutdown) is not an
                # engine failure; don't trip the breaker or degrade.
                raise
            except Exception as exc:
                self.breaker.record_failure()
                self.metrics.record_error()
                primary_error = exc
            else:
                self.breaker.record_success()
                encoded = encode_result(result, kind)
                if self.degraded_reason is not None:
                    encoded["degraded"] = True
                self.cache.put(key, encoded, generation=generation)
                return encoded, False, self.degraded_reason is not None
        # Degraded path: breaker open (or the primary just failed) —
        # answer exactly via the naive scan rather than failing.
        fallback = self._fallback()
        if fallback is None:
            if primary_error is not None:
                raise primary_error
            raise ServiceUnavailableError(
                "engine unavailable (circuit open) and fallback disabled"
            )
        sp.annotate("fallback", True)
        if kind == "rtk":
            result = fallback.reverse_topk(q_arr, k)
        else:
            result = fallback.reverse_kranks(q_arr, k)
        encoded = encode_result(result, kind)
        encoded["degraded"] = True
        # Not cached: a healthy engine must not serve flagged answers.
        return encoded, False, True

    def info(self) -> dict:
        """Static facts about the served engine (the ``/info`` body)."""
        from .. import __version__

        products, weights = self.engine.products, self.engine.weights
        return {
            "service": "repro-rrq",
            "version": __version__,
            "method": self.method,
            "products": int(products.size),
            "weights": int(weights.size),
            "dim": int(products.dim),
            "value_range": float(products.value_range),
            "batch_window_ms": self.config.batch_window_s * 1000.0,
            "cache_capacity": self.config.cache_capacity,
            "max_queue_depth": self.config.limits.max_queue_depth,
            "max_batch": self.config.limits.max_batch,
            "default_deadline_s": self.config.limits.default_deadline_s,
            "fallback": self.config.fallback,
            "use_kernel": self.config.use_kernel,
            "kernel_cache_dir": self.config.kernel_cache_dir,
            "breaker_threshold": self.config.breaker_threshold,
            "breaker_reset_s": self.config.breaker_reset_s,
            "auto_tune": self.config.auto_tune,
        }

    def metrics_snapshot(self) -> dict:
        """Live counters (the JSON ``/metrics`` body)."""
        snap = self.metrics.snapshot(cache_stats=self.cache.stats())
        snap["slowlog"] = self.slowlog.stats()
        snap["traces"] = self.tracer.stats()
        return snap

    def prometheus_text(self) -> str:
        """The ``GET /metrics?format=prometheus`` body (text exposition)."""
        return self.metrics.prometheus(
            cache_stats=self.cache.stats(),
            slowlog=self.slowlog.stats(),
            traces=self.tracer.stats(),
        )

    def traces_snapshot(self, trace_id: Optional[str] = None,
                        limit: Optional[int] = None) -> dict:
        """The ``GET /traces`` body (``?id=`` selects one trace)."""
        if trace_id is not None:
            trace = self.tracer.get(trace_id)
            return {"trace": trace, "found": trace is not None}
        return self.tracer.snapshot(limit)

    def healthz(self) -> dict:
        """Liveness body: cheap, allocation-light, never blocks on the queue.

        ``status`` is ``"ok"`` on the primary engine path and
        ``"degraded"`` while answers come from the naive fallback (open
        circuit breaker or a permanently corrupt index).  Degraded is
        still *healthy* — answers remain exact — so orchestrators should
        alert on it, not restart on it.
        """
        breaker = self.breaker.snapshot()
        degraded = (self.degraded_reason is not None
                    or breaker["state"] != "closed")
        body = {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "breaker": breaker["state"],
            "uptime_s": self.metrics.uptime_s(),
            "queue_depth": self.scheduler.queue_depth(),
        }
        if self.degraded_reason is not None:
            body["degraded_reason"] = self.degraded_reason
        return body

    def close(self, drain: bool = True) -> None:
        """Stop the dispatcher thread; the service cannot answer afterwards.

        With ``drain`` (default) already-admitted requests are answered
        first and anything shed on the way down gets a structured 503.
        """
        if self.tuner is not None:
            self.tuner.stop()
        self.scheduler.close(drain=drain)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class DurableQueryService(QueryService):
    """Serves a :class:`~repro.durability.engine.DurableDynamicRRQ`.

    Adds three things to :class:`QueryService`:

    * **mutations** — :meth:`mutate` logs each write to the WAL before
      applying it (the engine acknowledges only after the append is
      durable) and invalidates the answer cache through the engine's
      change listener;
    * **roles** — a ``primary`` accepts writes; a ``standby`` refuses
      them with :class:`~repro.errors.NotPrimaryError` (HTTP 409) while
      a background :class:`~repro.durability.replica.ReplicaTailer`
      keeps it in sync with ``primary_url``.  :meth:`promote` flips a
      standby to primary (stops the tailer) — the client's failover
      path;
    * **replication feed** — :meth:`replication_feed` exposes the WAL
      tail for standbys (``GET /replicate``).

    The naive fallback is force-disabled: the dynamic engine's views
    expose no static arrays to build a fallback from, and a degraded
    answer computed from stale state would violate the durability
    invariant anyway.
    """

    #: Mutation operations accepted over HTTP, keyed by (path, type).
    MUTATION_OPS = ("insert_product", "insert_weight", "delete_product",
                    "delete_weight", "modify_product", "modify_weight",
                    "compact", "rebuild", "snapshot")

    def __init__(self, engine, config: Optional[ServiceConfig] = None,
                 role: str = "primary", primary_url=None,
                 poll_interval_s: float = 0.05):
        if role not in ("primary", "standby"):
            raise InvalidParameterError("role must be 'primary' or 'standby'")
        config = replace(config or ServiceConfig(), fallback=False)
        super().__init__(engine, config=config)
        bind_dynamic(self.cache, engine)
        self.role = role
        self._tailer = None
        if role == "standby":
            if primary_url is None:
                raise InvalidParameterError(
                    "a standby needs primary_url (or a fetch callable) "
                    "to tail the primary's WAL feed"
                )
            from ..durability.replica import ReplicaTailer

            self._tailer = ReplicaTailer(
                engine, primary_url, poll_interval_s=poll_interval_s
            ).start()

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def mutate(self, op: str, payload: Optional[dict] = None) -> dict:
        """Apply one durable mutation; returns its JSON-ready receipt.

        The returned ``lsn`` is the acknowledgment: the record is on
        disk (per the fsync policy) before this method returns.  On a
        standby every op raises :class:`NotPrimaryError` so clients
        fail over to the primary.
        """
        payload = payload or {}
        if op not in self.MUTATION_OPS:
            raise InvalidParameterError(
                f"unknown mutation {op!r}; expected one of "
                f"{', '.join(self.MUTATION_OPS)}"
            )
        if self.role != "primary":
            self.metrics.record_mutation(op, rejected=True)
            raise NotPrimaryError(
                "this replica is a standby; send writes to the primary "
                "(or POST /promote first)"
            )
        fire("service.mutate")
        engine = self.engine
        if op == "insert_product":
            index, lsn = engine.insert_product(payload.get("vector"))
            body = {"op": op, "index": index, "lsn": lsn}
        elif op == "insert_weight":
            index, lsn = engine.insert_weight(
                payload.get("vector"),
                renormalize=bool(payload.get("renormalize", False)),
            )
            body = {"op": op, "index": index, "lsn": lsn}
        elif op in ("delete_product", "delete_weight"):
            if "index" not in payload:
                raise InvalidParameterError(f"{op} requires 'index'")
            lsn = getattr(engine, op)(int(payload["index"]))
            body = {"op": op, "index": int(payload["index"]), "lsn": lsn}
        elif op in ("modify_product", "modify_weight"):
            if "index" not in payload:
                raise InvalidParameterError(f"{op} requires 'index'")
            kwargs = {}
            if op == "modify_weight":
                kwargs["renormalize"] = bool(payload.get("renormalize",
                                                         False))
            index, lsn = getattr(engine, op)(
                int(payload["index"]), payload.get("vector"), **kwargs
            )
            # ``index`` is the replacement row's (new) stable id.
            body = {"op": op, "index": index,
                    "old_index": int(payload["index"]), "lsn": lsn}
        elif op == "compact":
            p_map, w_map, lsn = engine.compact()
            # Per old stable index: the new index, or -1 if removed.
            body = {
                "op": op, "lsn": lsn,
                "product_map": [int(v) for v in p_map],
                "weight_map": [int(v) for v in w_map],
            }
        elif op == "rebuild":
            body = {"op": op, "lsn": engine.rebuild()}
        else:  # snapshot
            body = {"op": op, "lsn": engine.snapshot()}
        self.metrics.record_mutation(op)
        return body

    def handle_mutation_request(self, path: str, payload: dict) -> dict:
        """Map one HTTP mutation route onto :meth:`mutate`/:meth:`promote`."""
        if path == "/promote":
            return self.promote()
        if path == "/retarget":
            return self.retarget_primary(payload.get("primary_url"))
        if path in ("/insert", "/delete", "/modify"):
            target = payload.get("type", "product")
            if target not in ("product", "weight"):
                raise InvalidParameterError(
                    "'type' must be 'product' or 'weight'"
                )
            return self.mutate(f"{path[1:]}_{target}", payload)
        if path in ("/compact", "/rebuild", "/snapshot"):
            return self.mutate(path[1:], payload)
        raise InvalidParameterError(f"unknown mutation route {path}")

    # ------------------------------------------------------------------
    # replication / roles
    # ------------------------------------------------------------------

    def replication_feed(self, since: int, limit: Optional[int] = None) -> dict:
        """The WAL tail after ``since`` (the ``GET /replicate`` body)."""
        if limit is None:
            return self.engine.replication_feed(int(since))
        return self.engine.replication_feed(int(since), int(limit))

    def promote(self) -> dict:
        """Make this replica the primary (idempotent).

        Stops the tailer first, so no primary records can arrive after
        local writes are accepted — the standby's WAL stays linear.
        The answer cache is flushed: entries cached while tailing may
        predate the final replicated records, and a fresh primary must
        never serve an answer computed against its standby-era state.
        """
        if self._tailer is not None:
            self._tailer.stop()
            self._tailer = None
        self.role = "primary"
        self.cache.invalidate()
        return {"role": self.role, "last_lsn": self.engine.last_lsn}

    def retarget_primary(self, primary_url) -> dict:
        """Point a standby's tailer at a new primary (``POST /retarget``).

        Used by the cluster supervisor after a failover: surviving
        standbys must follow the *promoted* replica, not the corpse of
        the old primary.  Only meaningful on a standby — a primary has
        no tailer and answers 409 so a misrouted retarget is loud.
        """
        if not primary_url:
            raise InvalidParameterError("/retarget requires 'primary_url'")
        if self.role != "standby" or self._tailer is None:
            raise NotPrimaryError(
                "retarget only applies to a standby with an active tailer"
            )
        self._tailer.retarget(str(primary_url))
        return {"role": self.role, "primary_url": str(primary_url).rstrip("/"),
                "last_lsn": self.engine.last_lsn}

    def replication_status(self) -> Optional[dict]:
        return self._tailer.status() if self._tailer is not None else None

    # ------------------------------------------------------------------
    # observability overrides
    # ------------------------------------------------------------------

    def _storage_stats(self) -> Optional[dict]:
        """The segment store's health dict (``None`` on the flat backend)."""
        getter = getattr(self.engine, "storage_stats", None)
        return getter() if getter is not None else None

    def info(self) -> dict:
        body = super().info()
        stats = self.engine.durability_stats()
        body.update(
            role=self.role,
            durable=True,
            directory=str(self.engine.directory),
            backend=stats.get("backend", "flat"),
            fsync=stats["wal"]["fsync_policy"],
            last_lsn=stats["last_lsn"],
            snapshot_lsn=stats["snapshot_lsn"],
        )
        storage = self._storage_stats()
        if storage is not None:
            body["segments"] = storage["segments"]
            body["delta_rows"] = storage["delta_rows"]
        return body

    def metrics_snapshot(self) -> dict:
        snap = self.metrics.snapshot(
            cache_stats=self.cache.stats(),
            durability=self.engine.durability_stats(),
            replication=self.replication_status(),
            storage=self._storage_stats(),
        )
        snap["slowlog"] = self.slowlog.stats()
        snap["traces"] = self.tracer.stats()
        return snap

    def prometheus_text(self) -> str:
        return self.metrics.prometheus(
            cache_stats=self.cache.stats(),
            durability=self.engine.durability_stats(),
            replication=self.replication_status(),
            slowlog=self.slowlog.stats(),
            traces=self.tracer.stats(),
            storage=self._storage_stats(),
        )

    def healthz(self) -> dict:
        body = super().healthz()
        body["role"] = self.role
        body["last_lsn"] = self.engine.last_lsn
        replication = self.replication_status()
        if replication is not None:
            body["replication_lag"] = replication["lag"]
            if not replication["running"] or replication["lag"] < 0:
                body["status"] = "degraded"
                body["degraded"] = True
        return body

    def close(self, drain: bool = True) -> None:
        if self._tailer is not None:
            self._tailer.stop()
            self._tailer = None
        super().close(drain=drain)
        self.engine.close()


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes the endpoints; bodies are canonical JSON (or Prometheus text).

    Every ``/query`` and mutation request runs under a root trace span:
    the id comes from the caller's ``X-Trace-Id`` header when well-formed
    (else a fresh one is minted) and is echoed back as the response's
    ``X-Trace-Id`` — never inside the JSON body, which stays byte-exact
    across execution paths.
    """

    server_version = "repro-rrq"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    @property
    def service(self) -> QueryService:
        return self.server.service

    def _send_json(self, status: int, obj: dict,
                   trace_id: Optional[str] = None) -> None:
        body = canonical_json(obj)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if trace_id is not None:
            self.send_header("X-Trace-Id", trace_id)
        if status >= 400 and "retry_after_s" in obj:
            # Load shedding tells well-behaved clients when to come back.
            self.send_header("Retry-After",
                             str(max(1, int(round(obj["retry_after_s"])))))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    _MUTATION_PATHS = ("/insert", "/delete", "/modify", "/compact",
                       "/rebuild", "/snapshot", "/promote", "/retarget")

    def _not_found(self, path: str) -> None:
        self._send_json(404, {"error": "NotFound", "message": path,
                              "status": 404})

    @staticmethod
    def _int_param(params, name: str) -> Optional[int]:
        raw = params.get(name, [None])[0]
        return int(raw) if raw is not None else None

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlsplit(self.path)
        if parsed.path == "/healthz":
            self._send_json(200, self.service.healthz())
        elif parsed.path == "/metrics":
            params = parse_qs(parsed.query)
            if params.get("format", [None])[0] == "prometheus":
                self._send_text(200, self.service.prometheus_text())
            else:
                self._send_json(200, self.service.metrics_snapshot())
        elif parsed.path == "/traces":
            try:
                params = parse_qs(parsed.query)
                body = self.service.traces_snapshot(
                    trace_id=params.get("id", [None])[0],
                    limit=self._int_param(params, "limit"),
                )
            except Exception as exc:  # structured, never a traceback
                self._send_json(http_status(exc), rejection_body(exc))
                return
            self._send_json(200, body)
        elif parsed.path == "/slowlog":
            try:
                params = parse_qs(parsed.query)
                body = self.service.slowlog.snapshot(
                    limit=self._int_param(params, "limit")
                )
            except Exception as exc:  # structured, never a traceback
                self._send_json(http_status(exc), rejection_body(exc))
                return
            self._send_json(200, body)
        elif parsed.path == "/info":
            self._send_json(200, self.service.info())
        elif parsed.path == "/tuner":
            self._send_json(200, self.service.tuner_status())
        elif parsed.path == "/replicate" and hasattr(self.service,
                                                     "replication_feed"):
            try:
                params = parse_qs(parsed.query)
                since = int(params.get("since", ["0"])[0])
                raw_limit = params.get("limit", [None])[0]
                limit = int(raw_limit) if raw_limit is not None else None
                feed = self.service.replication_feed(since, limit)
            except Exception as exc:  # structured, never a traceback
                status = http_status(exc)
                if status >= 500:
                    self.service.metrics.record_error()
                self._send_json(status, rejection_body(exc))
                return
            self._send_json(200, feed)
        else:
            self._not_found(parsed.path)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = urlsplit(self.path).path
        is_mutation = (path in self._MUTATION_PATHS
                       and hasattr(self.service, "handle_mutation_request"))
        is_tuner = path == "/tuner"
        if path != "/query" and not is_mutation and not is_tuner:
            self._not_found(path)
            return
        root_name = ("http.mutate" if is_mutation
                     else "http.tune" if is_tuner else "http.query")
        # The response is sent *after* the trace context closes, so the
        # finished trace is already in the ring by the time the caller
        # sees the answer — a client may GET /traces?id=... immediately.
        with self.service.tracer.trace(
            root_name, trace_id=self.headers.get("X-Trace-Id")
        ) as root:
            root.annotate("path", path)
            try:
                length = int(self.headers.get("Content-Length") or 0)
                payload = json.loads(self.rfile.read(length) or b"{}")
                if not isinstance(payload, dict):
                    raise InvalidParameterError(
                        "request body must be an object"
                    )
                if is_mutation:
                    answer = self.service.handle_mutation_request(path,
                                                                  payload)
                elif is_tuner:
                    answer = self.service.handle_tuner_request(payload)
                else:
                    timeout_ms = payload.get("timeout_ms")
                    answer = self.service.query(
                        payload.get("vector"),
                        product=payload.get("product"),
                        kind=payload.get("kind", "rtk"),
                        k=payload.get("k", 10),
                        deadline_s=(float(timeout_ms) / 1000.0
                                    if timeout_ms is not None else None),
                    )
                status, body = 200, answer
            except Exception as exc:  # structured rejection, no traceback
                root.status = "error"
                root.error = f"{type(exc).__name__}: {exc}"
                status = http_status(exc)
                if status >= 500:
                    self.service.metrics.record_error()
                body = rejection_body(exc)
        self._send_json(status, body, trace_id=root.trace_id)


class ReverseRankHTTPServer(ThreadingHTTPServer):
    """One thread per connection over a shared :class:`QueryService`."""

    daemon_threads = True
    allow_reuse_address = True
    #: Listen backlog. The stdlib default (5) resets connections under a
    #: modest concurrent burst — exactly the workload micro-batching wants.
    request_queue_size = 128

    def __init__(self, address, service: QueryService, verbose: bool = False):
        super().__init__(address, _RequestHandler)
        self.service = service
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(service: QueryService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False) -> ReverseRankHTTPServer:
    """Bind (``port=0`` picks an ephemeral port) without starting to serve."""
    return ReverseRankHTTPServer((host, port), service, verbose=verbose)


@contextmanager
def serve_in_background(service: QueryService, host: str = "127.0.0.1",
                        port: int = 0) -> Iterator[ReverseRankHTTPServer]:
    """Serve on a daemon thread for the duration of the ``with`` block.

    Yields the bound server (``server.url`` is the base URL).  Shuts the
    HTTP server *and* the service's scheduler down on exit.
    """
    server = make_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="rrq-http", daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        service.close()
