"""repro.service — the always-on query-serving subsystem.

Turns the offline library into an embeddable server: a micro-batching
scheduler coalesces concurrent requests into shared BLAS sweeps
(:mod:`.scheduler`), an LRU cache short-circuits repeated queries
(:mod:`.cache`), admission limits shed load with structured 429/504
rejections (:mod:`.limits`), and live qps/latency/batch/cache counters
feed ``GET /metrics`` (:mod:`.metrics`) — as JSON or, with
``?format=prometheus``, as Prometheus text exposition with trace-id
exemplars.  :mod:`.server` wires it all behind a stdlib JSON/HTTP
frontend and :mod:`.client` talks to it.

Observability (:mod:`repro.obs`): every HTTP request runs under a trace
(``X-Trace-Id`` in/out) whose span tree — ingress, scheduler dispatch,
kernel execution, WAL append — is readable at ``GET /traces``; requests
over the slow-query threshold land in ``GET /slowlog`` with their spans
and kernel stats attached.  See ``docs/observability.md``.

Quick start::

    from repro.service import QueryService, serve_in_background, ServiceClient

    service = QueryService.from_datasets(P, W, method="gir")
    with serve_in_background(service) as server:
        client = ServiceClient(server.url)
        client.query(P[0], kind="rtk", k=10)

Everything is stdlib + numpy; there is nothing to install.

Resilience: the service degrades instead of dying.  Engine failures trip
a circuit breaker (:mod:`repro.resilience.breaker`) and answers fall back
to the exact naive scan with ``"degraded": true``; shutdown drains the
queue with structured 503s; the client retries 429/503/transport failures
with jittered exponential backoff under a total deadline.  See
``docs/operations.md``.

Durability: :class:`.server.DurableQueryService` serves a write-ahead-
logged dynamic engine (:mod:`repro.durability`), adding mutation
endpoints (``POST /insert``, ``/delete``, ``/compact``, ``/snapshot``),
a WAL feed for hot standbys (``GET /replicate``), standby promotion
(``POST /promote``), and client-side endpoint failover.
"""

from .cache import ResultCache, bind_dynamic, make_key
from .client import ServiceClient
from .limits import Deadline, ServiceLimits, http_status, rejection_body
from .metrics import ServiceMetrics, percentile
from .scheduler import DEFAULT_BATCH_WINDOW_S, MicroBatchScheduler
from .server import (
    DurableQueryService,
    QueryService,
    ReverseRankHTTPServer,
    ServiceConfig,
    canonical_json,
    encode_result,
    make_server,
    serve_in_background,
)

__all__ = [
    "QueryService", "DurableQueryService", "ServiceConfig", "ServiceClient",
    "ReverseRankHTTPServer", "make_server", "serve_in_background",
    "MicroBatchScheduler", "DEFAULT_BATCH_WINDOW_S",
    "ResultCache", "bind_dynamic", "make_key",
    "ServiceLimits", "Deadline", "http_status", "rejection_body",
    "ServiceMetrics", "percentile",
    "encode_result", "canonical_json",
]
