"""A classic three-state circuit breaker for the serving layer.

The :class:`~repro.service.server.QueryService` wraps every trip through
the primary engine in one of these.  Repeated engine failures open the
circuit; while open, requests route straight to the exact naive fallback
(degraded-but-exact — see ``docs/operations.md``) without paying for a
doomed engine call.  After ``reset_after_s`` one probe request is let
through (*half-open*); its outcome closes or re-opens the circuit.

States
------
``closed``
    Normal operation.  Failures are counted; ``failure_threshold``
    consecutive ones open the circuit.
``open``
    Primary bypassed.  After ``reset_after_s`` the next ``allow()``
    claims the single half-open probe slot.
``half-open``
    One probe in flight.  ``record_success`` closes the circuit,
    ``record_failure`` re-opens it (and restarts the cool-down).

The clock is injectable so unit tests can step time deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..errors import InvalidParameterError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Consecutive failures that open the circuit by default.
DEFAULT_FAILURE_THRESHOLD = 5

#: Default cool-down before a half-open probe is allowed, in seconds.
DEFAULT_RESET_AFTER_S = 30.0


class CircuitBreaker:
    """Thread-safe consecutive-failure circuit breaker.

    Usage::

        if breaker.allow():
            try:
                result = primary()
                breaker.record_success()
            except Exception:
                breaker.record_failure()
                result = fallback()
        else:
            result = fallback()
    """

    def __init__(self, failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
                 reset_after_s: float = DEFAULT_RESET_AFTER_S,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold <= 0:
            raise InvalidParameterError("failure_threshold must be positive")
        if reset_after_s < 0:
            raise InvalidParameterError("reset_after_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_at = 0.0
        self._trips = 0

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half-open`` (open flips lazily)."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.reset_after_s:
            return HALF_OPEN  # a probe *would* be admitted
        return self._state

    def allow(self) -> bool:
        """May this request try the primary?  Claims the half-open probe."""
        with self._lock:
            if self._state == CLOSED:
                return True
            now = self._clock()
            if self._state == OPEN and \
                    now - self._opened_at >= self.reset_after_s:
                self._state = HALF_OPEN
                self._probe_at = now
                return True  # this caller is the probe
            if self._state == HALF_OPEN and \
                    now - self._probe_at >= self.reset_after_s:
                # The previous probe never reported back (e.g. it was shed
                # by admission control); grant a fresh one rather than wedge.
                self._probe_at = now
                return True
            return False

    def record_success(self) -> None:
        """The primary answered; close the circuit and reset the count."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """The primary failed; open on threshold (immediately if half-open)."""
        with self._lock:
            self._consecutive_failures += 1
            if (self._state == HALF_OPEN
                    or self._consecutive_failures >= self.failure_threshold):
                if self._state != OPEN:
                    self._trips += 1
                self._state = OPEN
                self._opened_at = self._clock()

    def snapshot(self) -> dict:
        """JSON-ready state for ``/healthz`` and ``/metrics``."""
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
                "failure_threshold": self.failure_threshold,
                "reset_after_s": self.reset_after_s,
            }
