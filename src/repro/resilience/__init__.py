"""repro.resilience — fault injection and failure-handling primitives.

Two halves:

* :mod:`.faults` — a deterministic, seedable fault-injection harness.
  Production code (storage, scheduler, server) consults named injection
  points; chaos tests (``tests/chaos/``) arm :class:`FaultPlan`\\ s
  against them and assert the paper's exactness guarantee survives every
  injected failure.
* :mod:`.breaker` — the :class:`CircuitBreaker` the service layer uses
  to fall back from the Grid-index engine to the exact naive scan
  instead of failing requests (degraded-but-exact).

See ``docs/operations.md`` for the operational story.
"""

from .breaker import (
    CLOSED,
    DEFAULT_FAILURE_THRESHOLD,
    DEFAULT_RESET_AFTER_S,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    active_injector,
    fire,
    inject,
    no_faults,
    set_injector,
)

__all__ = [
    "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN",
    "DEFAULT_FAILURE_THRESHOLD", "DEFAULT_RESET_AFTER_S",
    "FaultPlan", "FaultSpec", "FaultInjector", "InjectedCrashError",
    "active_injector", "set_injector", "fire", "inject", "no_faults",
]
