"""Deterministic fault injection for chaos testing the whole stack.

Production code is sprinkled with *named injection points* — one
:func:`fire` call (and, on write paths, one :meth:`FaultInjector.mutate` /
:meth:`FaultInjector.partial_write` consult) per interesting site.  With
no injector installed every hook is a single global read and a ``None``
check, so the hooks cost nothing in normal operation.

A chaos test arms a :class:`FaultPlan` — a seedable list of
:class:`FaultSpec` entries keyed by site name — and activates it with
:func:`inject`::

    plan = (FaultPlan(seed=1337)
            .add("storage.write.pa.rrqa", "corrupt", times=1)
            .add("scheduler.dispatch", "raise", times=3,
                 exception=RuntimeError("backend down")))
    with inject(plan) as injector:
        ...exercise the stack...
    assert injector.fired("scheduler.dispatch") == 3

Everything is deterministic: probabilistic faults draw from the plan's
seeded :class:`random.Random`, corruption offsets are seeded, and the
injector keeps an ordered log of every firing — so a CI chaos run with a
fixed seed reproduces byte-for-byte.

Fault kinds
-----------
``io_error``
    Raise :class:`OSError` at the site (before any bytes are written).
``latency``
    Sleep ``latency_s`` seconds at the site, then continue normally.
``raise``
    Raise ``exception`` (an exception instance, or a zero-arg callable
    returning one) at the site.
``corrupt``
    Write paths only: flip ``corrupt_bytes`` bytes of the payload at
    seeded offsets.  The write itself succeeds — detection is the
    loader's job (checksums).
``partial_write``
    Write paths only: write a ``keep_fraction`` prefix of the payload
    **directly to the final path** (bypassing the atomic temp-file
    dance) and then raise :class:`InjectedCrashError` — the closest a
    test can get to ``kill -9`` mid-write.

Registered sites (grep for ``fire(`` / ``atomic_write_bytes`` to verify):

========================== ====================================================
site                       where
========================== ====================================================
``storage.load``           entry of :func:`repro.core.storage.load_index`
``storage.write.<file>``   each index artifact write (incl. MANIFEST.json)
``io.write.<file>``        default site of any other atomic write
``scheduler.dispatch``     just before a micro-batch hits the engine
``service.query``          entry of :meth:`QueryService.query`
``service.mutate``         entry of :meth:`DurableQueryService.mutate`
``wal.append``             after framing, before the WAL write+fsync
                           (``partial_write`` leaves a torn tail)
``wal.fsync``              just before ``os.fsync`` of the WAL
``snapshot.write.<file>``  each snapshot artifact write (incl. manifest)
``snapshot.rename``        before the ``.tmp`` -> final dir rename
``snapshot.current``       the ``CURRENT`` pointer flip (commit point)
``replicate.feed``         entry of the primary's replication feed
``replicate.apply``        entry of one standby tailer poll
``supervision.heartbeat``  before each failure-detector probe (a raise
                           counts as a missed heartbeat)
``supervision.promote``    before the supervisor promotes a standby
``supervision.restart``    before the supervisor restarts a dead worker
========================== ====================================================
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import InvalidParameterError

_KINDS = ("io_error", "latency", "raise", "corrupt", "partial_write")

ExceptionLike = Union[BaseException, Callable[[], BaseException]]


class InjectedCrashError(OSError):
    """Raised by a ``partial_write`` fault after torn bytes hit the disk.

    Derives :class:`OSError` so code that survives real I/O failures
    survives injected ones; chaos tests catch this subclass to assert a
    crash was actually simulated.
    """


@dataclass
class FaultSpec:
    """One armed fault at one site.

    Attributes
    ----------
    site:
        Injection-point name the spec is keyed under.
    kind:
        One of :data:`_KINDS` (see module docstring).
    times:
        How many firings before the spec disarms itself; ``None`` keeps
        it armed forever.
    probability:
        Per-hit firing probability, drawn from the plan's seeded RNG
        (``1.0`` fires on every hit — fully deterministic).
    latency_s:
        Sleep duration for ``latency`` faults.
    exception:
        Payload for ``raise`` faults: an instance or zero-arg factory.
    corrupt_bytes:
        How many payload bytes a ``corrupt`` fault flips.
    corrupt_offset:
        Fixed first flip offset; ``None`` draws seeded random offsets.
    keep_fraction:
        Payload prefix fraction a ``partial_write`` leaves on disk.
    """

    site: str
    kind: str
    times: Optional[int] = 1
    probability: float = 1.0
    latency_s: float = 0.01
    exception: Optional[ExceptionLike] = None
    corrupt_bytes: int = 8
    corrupt_offset: Optional[int] = None
    keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise InvalidParameterError("probability must be in [0, 1]")
        if self.times is not None and self.times <= 0:
            raise InvalidParameterError("times must be positive or None")
        if not 0.0 <= self.keep_fraction < 1.0:
            raise InvalidParameterError("keep_fraction must be in [0, 1)")
        if self.corrupt_bytes <= 0:
            raise InvalidParameterError("corrupt_bytes must be positive")


class FaultPlan:
    """A seedable, ordered collection of :class:`FaultSpec` by site.

    The plan is data, the :class:`FaultInjector` is runtime state — one
    plan can drive many injector activations, each starting from the
    same seed (the injector copies the arm counts).
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.specs: List[FaultSpec] = []

    def add(self, site: str, kind: str, **kwargs) -> "FaultPlan":
        """Arm one fault; chainable."""
        self.specs.append(FaultSpec(site=site, kind=kind, **kwargs))
        return self

    def sites(self) -> Tuple[str, ...]:
        """Every site the plan touches (diagnostics)."""
        return tuple(dict.fromkeys(spec.site for spec in self.specs))


class FaultInjector:
    """Runtime state of one activated :class:`FaultPlan`.

    Thread-safe: the service stack fires hooks from HTTP handler threads
    and the scheduler's dispatcher concurrently.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._remaining: Dict[int, Optional[int]] = {
            id(spec): spec.times for spec in plan.specs
        }
        #: Ordered ``(site, kind)`` log of every fault that actually fired.
        self.log: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _take(self, site: str, kinds: Tuple[str, ...]) -> Optional[FaultSpec]:
        """Atomically claim the next armed spec for ``site`` among ``kinds``."""
        with self._lock:
            for spec in self.plan.specs:
                if spec.site != site or spec.kind not in kinds:
                    continue
                remaining = self._remaining[id(spec)]
                if remaining is not None and remaining <= 0:
                    continue
                if spec.probability < 1.0 and \
                        self._rng.random() >= spec.probability:
                    continue
                if remaining is not None:
                    self._remaining[id(spec)] = remaining - 1
                self.log.append((site, spec.kind))
                return spec
        return None

    def fired(self, site: Optional[str] = None) -> int:
        """How many faults fired (at ``site``, or anywhere)."""
        with self._lock:
            if site is None:
                return len(self.log)
            return sum(1 for logged_site, _ in self.log if logged_site == site)

    # ------------------------------------------------------------------
    # hooks consulted by production code
    # ------------------------------------------------------------------

    def fire(self, site: str) -> None:
        """Control-flow faults: sleep (``latency``) or raise at ``site``."""
        spec = self._take(site, ("io_error", "latency", "raise"))
        if spec is None:
            return
        if spec.kind == "latency":
            time.sleep(spec.latency_s)
            return
        if spec.kind == "io_error":
            raise OSError(f"injected I/O error at {site}")
        exc = spec.exception
        if callable(exc) and not isinstance(exc, BaseException):
            exc = exc()
        raise (exc if exc is not None
               else RuntimeError(f"injected failure at {site}"))

    def mutate(self, site: str, data: bytes) -> bytes:
        """Byte-corruption faults: return ``data`` with flipped bytes."""
        spec = self._take(site, ("corrupt",))
        if spec is None or not data:
            return data
        corrupted = bytearray(data)
        with self._lock:
            for i in range(min(spec.corrupt_bytes, len(corrupted))):
                if spec.corrupt_offset is not None:
                    offset = (spec.corrupt_offset + i) % len(corrupted)
                else:
                    offset = self._rng.randrange(len(corrupted))
                corrupted[offset] ^= 0xFF
        return bytes(corrupted)

    def partial_write(self, site: str) -> Optional[float]:
        """``keep_fraction`` if a torn write is armed at ``site``, else None."""
        spec = self._take(site, ("partial_write",))
        return None if spec is None else spec.keep_fraction


# ----------------------------------------------------------------------
# the (process-global) active injector
# ----------------------------------------------------------------------

_active_lock = threading.Lock()
_active: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    """The currently installed injector, or ``None`` (the common case)."""
    return _active


def set_injector(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install ``injector`` globally; returns the previous one."""
    global _active
    with _active_lock:
        previous, _active = _active, injector
    return previous


def fire(site: str) -> None:
    """The lightweight hook production code calls at an injection point."""
    injector = _active
    if injector is not None:
        injector.fire(site)


class inject:
    """Context manager activating ``plan`` for the enclosed block.

    Yields the :class:`FaultInjector` so tests can assert on its log;
    restores whatever injector (usually none) was active before.
    """

    def __init__(self, plan: FaultPlan):
        self.injector = FaultInjector(plan)
        self._previous: Optional[FaultInjector] = None

    def __enter__(self) -> FaultInjector:
        self._previous = set_injector(self.injector)
        return self.injector

    def __exit__(self, *exc_info) -> None:
        set_injector(self._previous)


def no_faults() -> Iterator[None]:
    """Context manager suppressing any active injector (scoped escape hatch)."""
    from contextlib import contextmanager

    @contextmanager
    def _scope():
        previous = set_injector(None)
        try:
            yield
        finally:
            set_injector(previous)

    return _scope()
