"""Plain-text table rendering for benchmark output.

Every benchmark prints the rows/series of the paper table or figure it
reproduces.  This module renders those as aligned monospace tables so the
output is directly comparable to the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_value(value: Cell, precision: int = 4) -> str:
    """Render one table cell: floats get fixed precision, None becomes '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 10 ** -precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 4,
) -> None:
    """Print :func:`render_table` output followed by a blank line."""
    print(render_table(headers, rows, title=title, precision=precision))
    print()


def speedup(baseline: float, candidate: float) -> Optional[float]:
    """``baseline / candidate`` guarded against division by zero."""
    if candidate <= 0:
        return None
    return baseline / candidate
