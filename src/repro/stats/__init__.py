"""Instrumentation: operation counters, timers, report tables."""

from .counters import NULL_COUNTER, OpCounter
from .report import print_table, render_table, speedup
from .timing import LapClock, Timer, best_of, percentile, time_once

__all__ = [
    "OpCounter", "NULL_COUNTER", "Timer", "LapClock", "time_once", "best_of",
    "percentile", "render_table", "print_table", "speedup",
]
