"""Operation counters shared by every algorithm implementation.

The paper's headline metric besides wall-clock time is the number of
*pairwise computations* — full ``d``-multiplication inner products — plus
the fraction of data points an algorithm has to visit (Figures 11b/11d and
15a).  Each algorithm takes an :class:`OpCounter` and increments the fields
it exercises; the benchmark harness reads them back.

The counter deliberately has no behaviour besides accumulation so that the
instrumentation overhead inside the hot loops stays tiny and identical
across algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class OpCounter:
    """Mutable accumulator of algorithm work.

    Attributes
    ----------
    pairwise:
        Full inner products evaluated (``d`` multiplications each).  This is
        the paper's "pairwise computations" metric; MBR-corner products in
        the tree methods count too, since they cost the same multiplications.
    additions:
        Scalar additions performed outside full inner products — chiefly the
        Grid-index bound assemblies, which replace multiplications with
        additions (Section 4.1 cost discussion).
    grid_lookups:
        Grid-index cell reads.
    points_accessed:
        Data points touched (original vectors, not approximate ones).
    approx_accessed:
        Approximate vectors touched.
    nodes_accessed:
        Tree nodes (or histogram buckets) visited.
    filtered_case1:
        Pairs resolved by the upper bound (``p`` definitely precedes ``q``).
    filtered_case2:
        Pairs resolved by the lower bound (``q`` definitely precedes ``p``).
    refined:
        Case-3 pairs that required an exact score.
    dominated_skips:
        Points skipped because they were already in the Domin buffer.
    early_terminations:
        Scans aborted early because the rank bound was exceeded.
    """

    pairwise: int = 0
    additions: int = 0
    grid_lookups: int = 0
    points_accessed: int = 0
    approx_accessed: int = 0
    nodes_accessed: int = 0
    filtered_case1: int = 0
    filtered_case2: int = 0
    refined: int = 0
    dominated_skips: int = 0
    early_terminations: int = 0

    def reset(self) -> None:
        """Zero every field in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def merge(self, other: "OpCounter") -> "OpCounter":
        """Add ``other``'s tallies into this counter and return ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def snapshot(self) -> dict:
        """Return the current tallies as a plain dict (for reports)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def filtered_total(self) -> int:
        """Pairs decided by bounds alone (Case 1 + Case 2)."""
        return self.filtered_case1 + self.filtered_case2

    def filtering_ratio(self) -> float:
        """Fraction of bound-checked pairs that never needed an exact score."""
        checked = self.filtered_total + self.refined
        if checked == 0:
            return 0.0
        return self.filtered_total / checked

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{name}={value}" for name, value in self.snapshot().items() if value
        )
        return f"OpCounter({parts})"


#: A shared throwaway counter for callers that do not care about stats.
NULL_COUNTER = OpCounter()
