"""Small timing utilities for the experiment harness.

The paper reports mean CPU time over many repeated queries.  These helpers
wrap :func:`time.perf_counter` with the accumulate/repeat patterns the
benchmarks need, without pulling in a benchmarking framework dependency at
library level (pytest-benchmark is used only inside ``benchmarks/``).
"""

from __future__ import annotations

import math
import statistics
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (``0.0 <= q <= 1.0``) of ``samples`` by
    nearest-rank.

    Nearest-rank is the conventional choice for operational latency
    reporting: the result is always an observed sample.  This is the one
    shared implementation — :mod:`repro.service.metrics` and
    :class:`repro.vectorized.parallel.BatchStats` both use it.

    Edge cases are pinned by tests: an empty sample list returns 0.0,
    a single sample is every quantile of itself, ``q=0.0`` is the
    minimum and ``q=1.0`` the maximum, non-finite samples (NaN/inf
    leaking in from faulted requests) are dropped before ranking, and an
    out-of-range ``q`` raises ``ValueError`` rather than silently
    clamping.
    """
    if math.isnan(q) or not 0.0 <= q <= 1.0:
        from ..errors import InvalidParameterError

        raise InvalidParameterError(
            f"quantile q must be in [0.0, 1.0], got {q}"
        )
    finite = [s for s in samples if math.isfinite(s)]
    if not finite:
        return 0.0
    ordered = sorted(finite)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass
class Timer:
    """Accumulating stopwatch.

    Use either as a context manager::

        timer = Timer()
        with timer.measure():
            run_query()

    or through :meth:`time_callable` for repeated measurement.
    """

    samples: List[float] = field(default_factory=list)

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Record one sample covering the ``with`` block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.samples.append(time.perf_counter() - start)

    def time_callable(self, fn: Callable[[], object], repeat: int = 1) -> None:
        """Run ``fn`` ``repeat`` times, recording one sample per run."""
        for _ in range(repeat):
            with self.measure():
                fn()

    @property
    def total(self) -> float:
        """Sum of all samples, in seconds."""
        return sum(self.samples)

    @property
    def mean(self) -> float:
        """Mean sample, in seconds (0.0 when empty)."""
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        """Median sample, in seconds (0.0 when empty)."""
        return statistics.median(self.samples) if self.samples else 0.0

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    def reset(self) -> None:
        """Discard all samples."""
        self.samples.clear()


def time_once(fn: Callable[[], object]) -> float:
    """Return the wall-clock seconds a single call to ``fn`` takes."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def best_of(fn: Callable[[], object], repeat: int = 3) -> float:
    """Return the fastest of ``repeat`` timed runs of ``fn``."""
    if repeat <= 0:
        raise ValueError("repeat must be positive")
    return min(time_once(fn) for _ in range(repeat))


@dataclass
class LapClock:
    """Named-section profiler used by the Table 2 I/O-versus-CPU experiment."""

    laps: dict = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str) -> Iterator[None]:
        """Accumulate the ``with`` block's duration under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.laps[name] = self.laps.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def get(self, name: str, default: Optional[float] = 0.0) -> float:
        """Accumulated seconds for section ``name``."""
        return self.laps.get(name, default)
