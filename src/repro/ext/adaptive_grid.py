"""Non-equal-width Grid-index (paper Section 7, first future-work item).

The equal-width grid wastes resolution where the data is sparse: with a
clustered or exponential distribution most values share a handful of
partitions, so most pairs land in the same cells and Case 3 balloons.  The
fix the paper sketches — "merging and splitting some grids ... based on the
distributions of the given P and W" — is realized here with *quantile
boundaries*: each partition holds an (approximately) equal share of the
observed component values, for products and weights independently.

Because :class:`repro.core.grid.GridIndex` and
:class:`repro.core.approx.Quantizer` both accept arbitrary strictly
increasing boundary vectors, the entire GIR machinery (GInTop-k, Domin
buffer, early termination) is reused unchanged; only the boundaries differ.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.approx import Quantizer
from ..core.gir import GridIndexRRQ
from ..core.grid import DEFAULT_PARTITIONS, GridIndex
from ..data.datasets import ProductSet, WeightSet
from ..errors import InvalidParameterError


def quantile_boundaries(values: np.ndarray, partitions: int,
                        low: float, high: float) -> np.ndarray:
    """Strictly increasing quantile boundaries covering ``[low, high]``.

    Interior boundaries are the empirical quantiles of the flattened
    ``values``; duplicates (heavy ties in the data) are resolved by nudging
    toward an equal-width fallback so the result stays strictly monotone
    with exactly ``partitions + 1`` entries.
    """
    if partitions < 1:
        raise InvalidParameterError("partitions must be positive")
    if high <= low:
        raise InvalidParameterError("high must exceed low")
    flat = np.asarray(values, dtype=np.float64).ravel()
    qs = np.linspace(0.0, 1.0, partitions + 1)
    bounds = np.quantile(flat, qs)
    bounds[0] = low
    bounds[-1] = high
    # Repair ties monotonically: carry a strictly increasing floor
    # forward so one flat quantile run never poisons the rest of the
    # vector.  (The old per-entry blend with the equal-width fallback
    # could land *below* the running floor, which then tripped the final
    # guard and discarded every quantile for mildly tied data.)
    fallback = np.linspace(low, high, partitions + 1)
    step = max((high - low) * 1e-9, np.spacing(max(abs(low), abs(high))))
    for i in range(1, partitions):
        floor = bounds[i - 1] + step
        if bounds[i] < floor:
            # Stay as close to the true quantile as the floor allows,
            # leaning toward equal width only to escape the flat run.
            bounds[i] = min(high, max(floor,
                                      0.5 * (fallback[i] + bounds[i - 1])))
        bounds[i] = min(bounds[i], high)
    # Backward pass: entries clamped against ``high`` need headroom so
    # the vector stays strictly increasing up to the fixed endpoint.
    for i in range(partitions - 1, 0, -1):
        ceiling = bounds[i + 1] - step
        if bounds[i] > ceiling:
            bounds[i] = ceiling
    if np.any(np.diff(bounds) <= 0):  # truly forced: span too small
        bounds = fallback
    return bounds


def build_adaptive_grid(products: ProductSet, weights: WeightSet,
                        partitions: int = DEFAULT_PARTITIONS
                        ) -> Tuple[GridIndex, Quantizer, Quantizer]:
    """Quantile-boundary grid plus matching quantizers for ``(P, W)``."""
    alpha_p = quantile_boundaries(
        products.values, partitions, 0.0, products.value_range
    )
    alpha_w = quantile_boundaries(weights.values, partitions, 0.0, 1.0)
    grid = GridIndex(alpha_p, alpha_w)
    return grid, Quantizer(alpha_p), Quantizer(alpha_w)


class AdaptiveGridIndexRRQ(GridIndexRRQ):
    """GIR with distribution-adapted (quantile) grid boundaries."""

    name = "GIR-ADAPT"

    def __init__(self, products: ProductSet, weights: WeightSet,
                 partitions: int = DEFAULT_PARTITIONS, chunk: int = 256):
        grid, p_quant, w_quant = build_adaptive_grid(
            products, weights, partitions
        )
        super().__init__(
            products,
            weights,
            partitions=partitions,
            grid=grid,
            p_quantizer=p_quant,
            w_quantizer=w_quant,
            chunk=chunk,
        )
