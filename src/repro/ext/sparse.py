"""Sparse-preference optimization (paper Section 7, second future-work item).

"In practice, a user is normally interested in a few attributes of the
products" — so ``W`` is often sparse.  Under the library's conventions a
zero weight component contributes exactly zero to every score *and* to
every grid bound (``Grid[i][0] == 0`` for all ``i``, since ``alpha_w[0] ==
0``), so both scoring and bound assembly can skip zero components.

This module provides:

* :func:`sparsify_weights` — a workload helper that zeroes all but the
  ``nnz`` largest components of each weight vector and renormalizes,
  mimicking users who care about a few attributes;
* :class:`SparseWeightSet` — CSR-style storage of a sparse ``W``;
* :class:`SparseGridIndexRRQ` — GIR whose bound assembly and refinement
  iterate only over each weight's non-zero support.  Results are identical
  to dense GIR; only the work per pair shrinks from ``d`` to ``nnz``.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.base import RRQAlgorithm, duplicate_mask
from ..core.approx import Quantizer, quantize_dataset
from ..core.grid import DEFAULT_PARTITIONS, GridIndex
from ..core.ties import count_strictly_better, tie_tolerance
from ..data.datasets import ProductSet, WeightSet
from ..errors import InvalidParameterError
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..stats.counters import OpCounter

#: Sentinel matching :data:`repro.core.gin.ABORTED`.
ABORTED = -1


def sparsify_weights(weights: WeightSet, nnz: int,
                     seed: Optional[int] = None) -> WeightSet:
    """Keep each vector's ``nnz`` largest components, renormalized.

    Deterministic given the input; ``seed`` randomizes tie-breaking among
    equal components (rare with continuous data).
    """
    if nnz < 1:
        raise InvalidParameterError("nnz must be at least 1")
    W = weights.values
    d = W.shape[1]
    nnz = min(nnz, d)
    rng = np.random.default_rng(seed)
    jitter = rng.random(W.shape) * 1e-12
    keep = np.argsort(W + jitter, axis=1)[:, d - nnz:]
    mask = np.zeros_like(W, dtype=bool)
    np.put_along_axis(mask, keep, True, axis=1)
    out = np.where(mask, W, 0.0)
    return WeightSet(out, renormalize=True)


class SparseWeightSet:
    """CSR-style view of a :class:`WeightSet`: per-row support and values."""

    def __init__(self, weights: WeightSet, tol: float = 0.0):
        self.dense = weights
        W = weights.values
        self.supports: List[np.ndarray] = []
        self.values: List[np.ndarray] = []
        for row in W:
            nz = np.flatnonzero(row > tol)
            self.supports.append(nz)
            self.values.append(row[nz])

    @property
    def size(self) -> int:
        """Number of weight vectors."""
        return len(self.supports)

    def nnz(self, j: int) -> int:
        """Support size of vector ``j``."""
        return int(self.supports[j].shape[0])

    def average_nnz(self) -> float:
        """Mean support size across ``W``."""
        if not self.supports:
            return 0.0
        return float(np.mean([s.shape[0] for s in self.supports]))


class SparseGridIndexRRQ(RRQAlgorithm):
    """GIR restricted to each weight's non-zero support.

    The per-weight scan gathers only the supported columns of ``P^(A)``,
    so bound assembly costs ``nnz`` additions instead of ``d`` and the
    refinement inner products likewise skip zero components.
    """

    name = "GIR-SPARSE"

    def __init__(self, products: ProductSet, weights: WeightSet,
                 partitions: int = DEFAULT_PARTITIONS, chunk: int = 256):
        super().__init__(products, weights)
        # Same observed-weight-range boundaries as the dense GIR (the
        # weight axis would otherwise have no resolution at high d).
        w_range = float(self.W.max())
        self.grid = GridIndex(
            np.linspace(0.0, products.value_range, partitions + 1),
            np.linspace(0.0, w_range, partitions + 1),
        )
        self.p_quantizer = Quantizer(self.grid.alpha_p)
        self.w_quantizer = Quantizer(self.grid.alpha_w)
        self.PA = quantize_dataset(self.P, self.p_quantizer).astype(np.intp)
        self.WA = quantize_dataset(self.W, self.w_quantizer).astype(np.intp)
        # Pre-gathered cell boundaries: bound sums become inner products
        # (see repro.core.gin module docstring).
        self.pa_low = self.grid.alpha_p[self.PA]
        self.pa_high = self.grid.alpha_p[self.PA + 1]
        self.sparse = SparseWeightSet(weights)
        self.chunk = chunk

    # ------------------------------------------------------------------

    def _rank(self, j: int, q: np.ndarray, limit: float,
              domin: np.ndarray, counter: OpCounter,
              skip: np.ndarray = None) -> int:
        if skip is None:
            skip = duplicate_mask(self.P, q)
        support = self.sparse.supports[j]
        w_vals = self.sparse.values[j]
        nnz = support.shape[0]
        fq = float(np.dot(w_vals, q[support]))
        tol = tie_tolerance(fq)
        counter.pairwise += 1
        rnk = int(domin.sum())
        counter.dominated_skips += rnk
        if rnk >= limit:
            counter.early_terminations += 1
            return ABORTED

        w_lo = self.WA[j][support]
        w_bound_lo = self.grid.alpha_w[w_lo]
        w_bound_hi = self.grid.alpha_w[w_lo + 1]
        P = self.P
        m = P.shape[0]
        cand_blocks: List[np.ndarray] = []
        for start in range(0, m, self.chunk):
            stop = min(start + self.chunk, m)
            live = np.flatnonzero(~(domin[start:stop] | skip[start:stop])) + start
            if live.size == 0:
                continue
            counter.approx_accessed += live.size
            counter.grid_lookups += live.size * nnz
            counter.additions += live.size * nnz
            upper = self.pa_high[live][:, support] @ w_bound_hi
            case1 = upper < fq - tol
            n1 = int(np.count_nonzero(case1))
            if n1:
                rnk += n1
                counter.filtered_case1 += n1
                rows = live[case1]
                dominating = np.all(P[rows] < q, axis=1)
                if dominating.any():
                    domin[rows[dominating]] = True
                if rnk >= limit:
                    counter.early_terminations += 1
                    return ABORTED
            rest = live[~case1]
            if rest.size:
                lower = self.pa_low[rest][:, support] @ w_bound_lo
                counter.grid_lookups += rest.size * nnz
                counter.additions += rest.size * nnz
                case3 = lower <= fq + tol
                counter.filtered_case2 += int(np.count_nonzero(~case3))
                if case3.any():
                    cand_blocks.append(rest[case3])
        for block in cand_blocks:
            counter.pairwise += block.size
            counter.refined += block.size
            scores = P[block][:, support] @ w_vals
            rnk += count_strictly_better(
                scores, P[block], self.W[j], q, fq, tol
            )
            if rnk >= limit:
                counter.early_terminations += 1
                return ABORTED
        return rnk

    # ------------------------------------------------------------------

    def _reverse_topk(self, q: np.ndarray, k: int,
                      counter: OpCounter) -> RTKResult:
        domin = np.zeros(self.P.shape[0], dtype=bool)
        skip = duplicate_mask(self.P, q)
        result: List[int] = []
        for j in range(self.W.shape[0]):
            rnk = self._rank(j, q, k, domin, counter, skip)
            if rnk != ABORTED:
                result.append(j)
            if int(domin.sum()) >= k:
                return RTKResult(weights=frozenset(), k=k, counter=counter)
        return RTKResult(weights=frozenset(result), k=k, counter=counter)

    def _reverse_kranks(self, q: np.ndarray, k: int,
                        counter: OpCounter) -> RKRResult:
        domin = np.zeros(self.P.shape[0], dtype=bool)
        skip = duplicate_mask(self.P, q)
        heap: List[Tuple[int, int]] = []
        for j in range(self.W.shape[0]):
            limit = float("inf") if len(heap) < k else float(-heap[0][0])
            rnk = self._rank(j, q, limit, domin, counter, skip)
            if rnk == ABORTED:
                continue
            if len(heap) < k:
                heapq.heappush(heap, (-rnk, -j))
            elif rnk < -heap[0][0]:
                heapq.heapreplace(heap, (-rnk, -j))
        pairs = [(-r, -i) for r, i in heap]
        return make_rkr_result(pairs, k, counter)
