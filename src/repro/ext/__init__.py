"""Paper Section 7 extensions: adaptive grid and sparse preferences."""

from .adaptive_grid import AdaptiveGridIndexRRQ, build_adaptive_grid, quantile_boundaries
from .dynamic import DynamicRRQEngine, LiveView
from .aggregate import (
    AGGREGATIONS,
    AggregateGridIndexRKR,
    aggregate_reverse_kranks_naive,
)
from .sparse import SparseGridIndexRRQ, SparseWeightSet, sparsify_weights

__all__ = [
    "AdaptiveGridIndexRRQ", "build_adaptive_grid", "quantile_boundaries",
    "SparseGridIndexRRQ", "SparseWeightSet", "sparsify_weights",
    "AggregateGridIndexRKR", "aggregate_reverse_kranks_naive", "AGGREGATIONS",
    "DynamicRRQEngine", "LiveView",
]
