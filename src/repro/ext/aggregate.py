"""Aggregate reverse rank queries (ARRQ) — product bundles.

Dong et al. [7] (the authors' DEXA 2016 paper, cited in Section 2) extend
reverse rank queries from one product to a *bundle*: given a set ``Q`` of
query products, find the ``k`` preferences that rank the bundle best,
where the bundle's rank under ``w`` aggregates the member ranks:

* ``sum`` — ``arank(w, Q) = sum_q rank(w, q)`` (the default in [7]);
* ``max`` — the bundle is only as visible as its worst member.

Both the brute-force oracle and a Grid-index-accelerated solver are
provided.  The GIR solver reuses :func:`repro.core.gin.gin_topk` with one
shared per-member context (Domin buffer and all) and threads the heap's
current k-th best aggregate through as an early-abort budget: while
scanning member ``q_i`` for weight ``w``, the scan may stop as soon as the
partial aggregate proves ``w`` cannot beat the incumbent.

Results follow the library's deterministic semantics: exact strict ranks
(near-ties resolved in rational arithmetic, inherited from ``gin_topk``)
and ties on the aggregate broken toward the smaller weight index.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.base import duplicate_mask
from ..core.gin import ABORTED, GinContext, gin_topk
from ..core.gir import GridIndexRRQ
from ..data.datasets import (
    ProductSet,
    WeightSet,
    check_compatible,
    check_query_point,
)
from ..errors import InvalidParameterError
from ..queries.types import RKRResult, make_rkr_result
from ..stats.counters import OpCounter
from ..vectorized.batch import all_ranks_multi

#: Supported aggregation functions.
AGGREGATIONS = ("sum", "max")


def _check_bundle(queries: Sequence, dim: int) -> np.ndarray:
    if len(queries) == 0:
        raise InvalidParameterError("the query bundle must not be empty")
    return np.array([check_query_point(q, dim) for q in queries])


def aggregate_reverse_kranks_naive(
    products: ProductSet,
    weights: WeightSet,
    bundle: Sequence,
    k: int,
    aggregation: str = "sum",
) -> RKRResult:
    """Brute-force ARRQ oracle: full rank matrix, then aggregate.

    ``O(|P| * |W| * |Q|)`` score evaluations via the vectorized oracle.
    """
    check_compatible(products, weights)
    if k <= 0:
        raise InvalidParameterError("k must be positive")
    if aggregation not in AGGREGATIONS:
        raise InvalidParameterError(
            f"aggregation must be one of {AGGREGATIONS}"
        )
    Q = _check_bundle(bundle, products.dim)
    counter = OpCounter()
    ranks = all_ranks_multi(products.values, weights.values, Q)
    counter.pairwise += products.size * weights.size * Q.shape[0]
    if aggregation == "sum":
        agg = ranks.sum(axis=0)
    else:
        agg = ranks.max(axis=0)
    pairs = [(int(a), int(j)) for j, a in enumerate(agg)]
    return make_rkr_result(pairs, k, counter)


class AggregateGridIndexRKR:
    """Grid-index-accelerated aggregate reverse k-ranks.

    Builds on an existing :class:`GridIndexRRQ` (or constructs one), so
    the quantized vectors and grid are shared with ordinary queries.
    """

    name = "GIR-AGG"

    def __init__(self, products: ProductSet, weights: WeightSet,
                 partitions: int = 32,
                 gir: Optional[GridIndexRRQ] = None):
        check_compatible(products, weights)
        self.gir = gir or GridIndexRRQ(products, weights,
                                       partitions=partitions)
        self.products = products
        self.weights = weights

    def query(self, bundle: Sequence, k: int, aggregation: str = "sum",
              counter: Optional[OpCounter] = None) -> RKRResult:
        """The k preferences with the best aggregate rank for ``bundle``."""
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        if aggregation not in AGGREGATIONS:
            raise InvalidParameterError(
                f"aggregation must be one of {AGGREGATIONS}"
            )
        Q = _check_bundle(bundle, self.products.dim)
        if counter is None:
            counter = OpCounter()
        gir = self.gir
        contexts = [
            GinContext(
                P=gir.P, PA=gir.PA, grid=gir.grid, q=q,
                domin=np.zeros(gir.P.shape[0], dtype=bool),
                skip=duplicate_mask(gir.P, q),
                chunk=gir.chunk,
                track_domin=gir.use_domin,
            )
            for q in Q
        ]

        heap: List[Tuple[int, int]] = []  # (-aggregate, -index)
        for j in range(gir.W.shape[0]):
            w = gir.W[j]
            wa = gir.WA[j]
            threshold = float("inf") if len(heap) < k else float(-heap[0][0])
            aggregate = 0
            failed = False
            for ctx in contexts:
                if aggregation == "sum":
                    # Remaining budget for this member's rank.
                    budget = threshold - aggregate
                else:
                    budget = threshold
                rank = gin_topk(ctx, w, wa, budget, counter)
                if rank == ABORTED:
                    failed = True
                    break
                if aggregation == "sum":
                    aggregate += rank
                else:
                    aggregate = max(aggregate, rank)
            if failed:
                continue
            if len(heap) < k:
                heapq.heappush(heap, (-aggregate, -j))
            elif aggregate < -heap[0][0]:
                heapq.heapreplace(heap, (-aggregate, -j))
        pairs = [(-na, -nj) for na, nj in heap]
        return make_rkr_result(pairs, k, counter)
