"""Dynamic reverse-rank-query engine: incremental inserts and deletes.

The paper treats ``P`` and ``W`` as static (indexes are built once before
the experiment).  A deployed catalogue is not: products launch and
retire, users appear and churn.  This module keeps the Grid-index
machinery incremental:

* **inserts** append to capacity-doubling arrays and quantize just the new
  row (``O(d)``);
* **deletes** are tombstones — a boolean mask the scan already knows how
  to skip (it reuses the same mechanism as the Domin/duplicate masks);
* the product-axis boundaries are fixed by ``value_range`` (inserts
  outside it are rejected, as in the static containers); the weight-axis
  boundaries start at the observed range and are **rebuilt automatically**
  (with re-quantization of ``W^(A)``, ``O(|W| d)``) when an insert exceeds
  them — rare in practice, amortized away;
* ``compact()`` physically drops tombstoned rows when fragmentation gets
  high.

Queries return exactly what a fresh :class:`GridIndexRRQ` over the live
rows would return — with the original, stable indices — which the tests
enforce after every mutation pattern.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.base import duplicate_mask
from ..core.approx import Quantizer
from ..core.gin import ABORTED, GinContext, gin_topk
from ..core.grid import GridIndex
from ..data.datasets import check_query_point
from ..errors import DataValidationError, InvalidParameterError
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..stats.counters import OpCounter

#: Initial capacity when starting from empty.
MIN_CAPACITY = 16


class _GrowableMatrix:
    """A float64 matrix with amortized O(1) row appends and tombstones.

    Concurrency contract (the ``LiveView`` read-during-append fix): the
    buffers and the row count are published together as one ``_state``
    tuple, replaced in a single reference assignment only after the new
    row is fully written.  Growth is copy-on-grow — a fresh buffer is
    allocated and the old one is never resized or written again — so any
    view handed out earlier stays byte-stable no matter how many appends
    follow.  A reader that grabs ``_state`` once therefore always sees a
    coherent ``(rows, alive, count)`` triple; it can never pair a new
    liveness mask with an old data buffer (the historical crash:
    ``view[alive]`` with mismatched lengths).  Tombstones mutate the
    alive mask in place (no length change); readers needing isolation
    from them copy the mask, which :meth:`snapshot_state` does.
    """

    def __init__(self, dim: int):
        self.dim = dim
        #: (data buffer, alive buffer, used count) — one atomic publish.
        self._state = (
            np.empty((MIN_CAPACITY, dim)),
            np.zeros(MIN_CAPACITY, dtype=bool),
            0,
        )
        #: Bumped on every copy-on-grow reallocation; lets callers pin a
        #: buffer generation and detect that older views are frozen.
        self.generation = 0

    def append(self, row: np.ndarray) -> int:
        data, alive, used = self._state
        if used == data.shape[0]:
            new_cap = data.shape[0] * 2
            grown = np.empty((new_cap, self.dim))
            grown[:used] = data[:used]
            grown_alive = np.zeros(new_cap, dtype=bool)
            grown_alive[:used] = alive[:used]
            data, alive = grown, grown_alive
            self.generation += 1
        data[used] = row
        alive[used] = True
        # Publish only after the row is fully written: a concurrent
        # reader sees either the old count or the complete new row.
        self._state = (data, alive, used + 1)
        return used

    def kill(self, idx: int) -> None:
        """Tombstone row ``idx``; structured errors, never a raw IndexError.

        Out-of-range and already-tombstoned indices are distinguished so
        callers (and WAL replay diagnostics) can tell a stale id from a
        double delete.
        """
        idx = int(idx)
        _, alive, used = self._state
        if not 0 <= idx < used:
            raise InvalidParameterError(
                f"index {idx} out of range [0, {used})"
            )
        if not alive[idx]:
            raise InvalidParameterError(
                f"index {idx} is already deleted (tombstoned)"
            )
        alive[idx] = False

    def snapshot_state(self) -> Tuple[np.ndarray, np.ndarray, int]:
        """One coherent ``(rows view, alive copy, count)`` triple.

        The rows view is stable under later appends (copy-on-grow); the
        alive mask is copied because tombstones flip it in place.
        """
        data, alive, used = self._state
        return data[:used], alive[:used].copy(), used

    @property
    def view(self) -> np.ndarray:
        """All appended rows (including tombstones)."""
        data, _, used = self._state
        return data[:used]

    @property
    def alive(self) -> np.ndarray:
        """Liveness mask over :attr:`view`."""
        _, alive, used = self._state
        return alive[:used]

    @property
    def live_count(self) -> int:
        _, alive, used = self._state
        return int(alive[:used].sum())

    @property
    def total_count(self) -> int:
        return self._state[2]


class LiveView:
    """Dataset-like read view over one growable matrix (stable indices).

    The serving stack (``QueryService`` / ``MicroBatchScheduler``) wants
    something shaped like a :class:`~repro.data.datasets.ProductSet` —
    ``dim``, ``size``, ``value_range``, ``obj[i]``.  This view provides
    exactly that over the *live* rows while keeping the engine's stable
    index space: ``size`` spans every slot ever allocated, and indexing
    a tombstoned slot raises a structured error.  It deliberately does
    **not** expose a ``values`` array — that is the scheduler's signal
    that the data can change under it and the coalesced static-matrix
    path must not be used.
    """

    def __init__(self, matrix: _GrowableMatrix, value_range: float):
        self._matrix = matrix
        self.value_range = float(value_range)

    @property
    def dim(self) -> int:
        return self._matrix.dim

    @property
    def size(self) -> int:
        """Stable-index space: every slot ever allocated, dead or alive."""
        return self._matrix.total_count

    @property
    def live_count(self) -> int:
        return self._matrix.live_count

    def live_indices(self) -> np.ndarray:
        """Stable indices of the live rows, ascending."""
        _, alive, _ = self._matrix.snapshot_state()
        return np.flatnonzero(alive)

    def live_values(self) -> np.ndarray:
        """A copy of the live rows, in stable-index order.

        Rows and mask come from one coherent state read — a concurrent
        append (even one that grows the buffer) can never pair a longer
        mask with a shorter row view here.
        """
        rows, alive, _ = self._matrix.snapshot_state()
        return rows[alive].copy()

    def __getitem__(self, idx: int) -> np.ndarray:
        idx = int(idx)
        rows, alive, used = self._matrix.snapshot_state()
        if not 0 <= idx < used:
            raise InvalidParameterError(
                f"index {idx} out of range [0, {used})"
            )
        if not alive[idx]:
            raise InvalidParameterError(f"index {idx} is deleted")
        return rows[idx].copy()

    def __len__(self) -> int:
        return self.size


class DynamicRRQEngine:
    """Updatable Grid-index engine over growing product/preference sets.

    Parameters
    ----------
    dim:
        Data dimensionality.
    value_range:
        Product attribute range ``[0, value_range)``; inserts outside it
        are rejected.
    partitions:
        Grid resolution ``n``.
    """

    def __init__(self, dim: int, value_range: float = 1.0,
                 partitions: int = 32, chunk: int = 256):
        if dim <= 0:
            raise InvalidParameterError("dim must be positive")
        if value_range <= 0:
            raise InvalidParameterError("value_range must be positive")
        self.dim = dim
        self.value_range = float(value_range)
        self.partitions = partitions
        self.chunk = chunk

        self._products = _GrowableMatrix(dim)
        self._weights = _GrowableMatrix(dim)
        self._pa = np.empty((MIN_CAPACITY, dim), dtype=np.int64)
        self._wa = np.empty((MIN_CAPACITY, dim), dtype=np.int64)

        self._p_quantizer = Quantizer.equal_width(partitions, value_range)
        self._w_range = 0.0
        self._rebuild_weight_axis(initial=True)
        self._change_listeners: List = []

    # ------------------------------------------------------------------
    # change notification (the repro.service cache invalidation path)
    # ------------------------------------------------------------------

    def add_change_listener(self, callback) -> None:
        """Register a no-argument callable invoked after every mutation.

        Used by :func:`repro.service.cache.bind_dynamic` to flush served
        answers the moment the data they were computed from changes.
        """
        self._change_listeners.append(callback)

    def _notify_change(self) -> None:
        for callback in self._change_listeners:
            callback()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def _ensure_code_capacity(self) -> None:
        for name, source in (("_pa", self._products), ("_wa", self._weights)):
            codes = getattr(self, name)
            if source.total_count > codes.shape[0]:
                grown = np.empty((codes.shape[0] * 2, self.dim),
                                 dtype=np.int64)
                grown[: codes.shape[0]] = codes
                setattr(self, name, grown)

    def _rebuild_weight_axis(self, initial: bool = False) -> None:
        """Re-span the weight boundaries and re-quantize ``W^(A)``."""
        observed = 0.0
        if self._weights.total_count:
            observed = float(self._weights.view.max())
        self._w_range = max(observed, 1e-9)
        alpha_p = np.linspace(0.0, self.value_range, self.partitions + 1)
        alpha_w = np.linspace(0.0, self._w_range, self.partitions + 1)
        self.grid = GridIndex(alpha_p, alpha_w)
        self._w_quantizer = Quantizer(self.grid.alpha_w)
        if not initial and self._weights.total_count:
            self._wa[: self._weights.total_count] = self._w_quantizer.quantize(
                self._weights.view
            ).astype(np.int64)
        # Pre-gathered product boundaries must track the (fixed) alpha_p;
        # rebuild lazily at query time.
        self._pa_low: Optional[np.ndarray] = None

    def insert_product(self, vector) -> int:
        """Add a product; returns its stable index."""
        row = check_query_point(vector, self.dim)
        if row.max(initial=0.0) >= self.value_range:
            raise DataValidationError(
                "product values must lie in [0, value_range)"
            )
        idx = self._products.append(row)
        self._ensure_code_capacity()
        self._pa[idx] = self._p_quantizer.quantize(row).astype(np.int64)
        self._pa_low = None
        self._notify_change()
        return idx

    def remove_product(self, idx: int) -> None:
        """Tombstone a product."""
        self._products.kill(idx)
        self._notify_change()

    def insert_weight(self, vector, renormalize: bool = False) -> int:
        """Add a preference vector (must sum to 1 unless renormalizing)."""
        row = check_query_point(vector, self.dim)
        total = float(row.sum())
        if renormalize:
            if total <= 0:
                raise DataValidationError("weight vector sums to zero")
            row = row / total
        elif abs(total - 1.0) > 1e-6:
            raise DataValidationError(
                f"weight vector sums to {total:.6f}, expected 1.0"
            )
        idx = self._weights.append(row)
        self._ensure_code_capacity()
        if float(row.max()) > self._w_range:
            self._rebuild_weight_axis()
        self._wa[idx] = self._w_quantizer.quantize(row).astype(np.int64)
        self._notify_change()
        return idx

    def remove_weight(self, idx: int) -> None:
        """Tombstone a preference."""
        self._weights.kill(idx)
        self._notify_change()

    def modify_product(self, idx: int, vector) -> int:
        """Replace product ``idx``: tombstone it, insert the new row.

        Validation runs before anything mutates, so a bad replacement
        leaves the old row live.  Returns the replacement's (new)
        stable index; the old index stays tombstoned, so a reader
        holding it gets a structured error rather than a changed row.
        """
        row = check_query_point(vector, self.dim)
        if row.max(initial=0.0) >= self.value_range:
            raise DataValidationError(
                "product values must lie in [0, value_range)"
            )
        self._products.kill(idx)
        new_idx = self._products.append(row)
        self._ensure_code_capacity()
        self._pa[new_idx] = self._p_quantizer.quantize(row).astype(np.int64)
        self._pa_low = None
        self._notify_change()
        return new_idx

    def modify_weight(self, idx: int, vector,
                      renormalize: bool = False) -> int:
        """Replace preference ``idx`` (same contract as modify_product)."""
        row = check_query_point(vector, self.dim)
        total = float(row.sum())
        if renormalize:
            if total <= 0:
                raise DataValidationError("weight vector sums to zero")
            row = row / total
        elif abs(total - 1.0) > 1e-6:
            raise DataValidationError(
                f"weight vector sums to {total:.6f}, expected 1.0"
            )
        self._weights.kill(idx)
        new_idx = self._weights.append(row)
        self._ensure_code_capacity()
        if float(row.max()) > self._w_range:
            self._rebuild_weight_axis()
        self._wa[new_idx] = self._w_quantizer.quantize(row).astype(np.int64)
        self._notify_change()
        return new_idx

    #: Mutation-op aliases matching the WAL vocabulary
    #: (``insert_product``/``delete_product``/...).
    delete_product = remove_product
    delete_weight = remove_weight

    def rebuild(self) -> None:
        """Force a weight-axis rebuild + re-quantization (``O(|W| d)``).

        Normally triggered implicitly by an out-of-range weight insert;
        exposed so operators (and the WAL ``rebuild`` op) can re-span
        boundaries after heavy churn shrank the observed range.
        """
        self._rebuild_weight_axis()
        self._notify_change()

    def compact(self) -> Tuple[np.ndarray, np.ndarray]:
        """Drop tombstones physically; returns (product map, weight map).

        Each map gives, per old index, the new index or -1 if removed.
        """
        maps = []
        for source, codes_name in ((self._products, "_pa"),
                                   (self._weights, "_wa")):
            alive = source.alive
            mapping = np.full(source.total_count, -1, dtype=np.int64)
            mapping[alive] = np.arange(int(alive.sum()))
            live_rows = source.view[alive]
            codes = getattr(self, codes_name)[: source.total_count][alive]
            fresh = _GrowableMatrix(self.dim)
            for row in live_rows:
                fresh.append(row)
            source_is_products = source is self._products
            if source_is_products:
                self._products = fresh
            else:
                self._weights = fresh
            grown = np.empty((max(MIN_CAPACITY, len(live_rows)), self.dim),
                             dtype=np.int64)
            grown[: len(live_rows)] = codes
            setattr(self, codes_name, grown)
            maps.append(mapping)
        self._pa_low = None
        self._notify_change()
        return maps[0], maps[1]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    #: Engine identifier shown in ``/info`` and used in cache keys.
    method = "dynamic"

    @property
    def products(self) -> LiveView:
        """Dataset-like live view (stable indices) for the serving stack."""
        return LiveView(self._products, self.value_range)

    @property
    def weights(self) -> LiveView:
        """Dataset-like live view over the preferences."""
        return LiveView(self._weights, 1.0)

    def state_arrays(self) -> dict:
        """The full mutable state as plain arrays (snapshot/replication).

        Matrices include tombstoned rows so stable indices survive a
        round trip; everything derived (grid, quantized codes) is
        rebuilt deterministically by :meth:`load_state_arrays`.
        """
        return {
            "products": self._products.view.copy(),
            "p_alive": self._products.alive.copy(),
            "weights": self._weights.view.copy(),
            "w_alive": self._weights.alive.copy(),
        }

    def load_state_arrays(self, products, p_alive, weights, w_alive) -> None:
        """Replace the engine's state wholesale (snapshot restore).

        Rows are re-inserted in their original order — replaying the
        exact append/quantize/rebuild path — then tombstones are
        re-applied, so the restored engine answers queries identically
        to the one that produced the arrays.
        """
        products = np.asarray(products, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        self._products = _GrowableMatrix(self.dim)
        self._weights = _GrowableMatrix(self.dim)
        self._pa = np.empty((MIN_CAPACITY, self.dim), dtype=np.int64)
        self._wa = np.empty((MIN_CAPACITY, self.dim), dtype=np.int64)
        self._rebuild_weight_axis(initial=True)
        for row in products:
            idx = self._products.append(row)
            self._ensure_code_capacity()
            self._pa[idx] = self._p_quantizer.quantize(row).astype(np.int64)
        for row in weights:
            idx = self._weights.append(row)
            self._ensure_code_capacity()
            if float(row.max(initial=0.0)) > self._w_range:
                self._rebuild_weight_axis()
            self._wa[idx] = self._w_quantizer.quantize(row).astype(np.int64)
        for idx in np.flatnonzero(~np.asarray(p_alive, dtype=bool)):
            self._products.kill(int(idx))
        for idx in np.flatnonzero(~np.asarray(w_alive, dtype=bool)):
            self._weights.kill(int(idx))
        self._pa_low = None
        self._notify_change()

    @property
    def num_products(self) -> int:
        """Live products."""
        return self._products.live_count

    @property
    def num_weights(self) -> int:
        """Live preferences."""
        return self._weights.live_count

    def fragmentation(self) -> float:
        """Fraction of stored rows that are tombstones."""
        total = self._products.total_count + self._weights.total_count
        if total == 0:
            return 0.0
        live = self.num_products + self.num_weights
        return 1.0 - live / total

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _context(self, q: np.ndarray) -> GinContext:
        used = self._products.total_count
        P = self._products.view
        PA = self._pa[:used]
        if self._pa_low is None or self._pa_low.shape[0] != used:
            self._pa_low = self.grid.alpha_p[PA]
            self._pa_high = self.grid.alpha_p[PA + 1]
        dead = ~self._products.alive
        return GinContext(
            P=P, PA=PA, grid=self.grid, q=q,
            domin=np.zeros(used, dtype=bool),
            skip=duplicate_mask(P, q) | dead,
            chunk=self.chunk,
            pa_low=self._pa_low,
            pa_high=self._pa_high,
        )

    def _check(self, q, k: int) -> np.ndarray:
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        if self.num_products == 0 or self.num_weights == 0:
            raise InvalidParameterError(
                "both products and weights must be non-empty to query"
            )
        return check_query_point(q, self.dim)

    def reverse_topk(self, q, k: int,
                     counter: Optional[OpCounter] = None) -> RTKResult:
        """Reverse top-k over the live rows (stable indices)."""
        q_arr = self._check(q, k)
        counter = counter or OpCounter()
        ctx = self._context(q_arr)
        W = self._weights.view
        alive_w = self._weights.alive
        result: List[int] = []
        for j in np.flatnonzero(alive_w):
            rnk = gin_topk(ctx, W[j], self._wa[j], k, counter)
            if rnk != ABORTED:
                result.append(int(j))
            if ctx.domin_count >= k:
                return RTKResult(weights=frozenset(), k=k, counter=counter)
        return RTKResult(weights=frozenset(result), k=k, counter=counter)

    def reverse_kranks(self, q, k: int,
                       counter: Optional[OpCounter] = None) -> RKRResult:
        """Reverse k-ranks over the live rows (stable indices)."""
        q_arr = self._check(q, k)
        counter = counter or OpCounter()
        ctx = self._context(q_arr)
        W = self._weights.view
        heap: List[Tuple[int, int]] = []
        for j in np.flatnonzero(self._weights.alive):
            limit = float("inf") if len(heap) < k else float(-heap[0][0])
            rnk = gin_topk(ctx, W[j], self._wa[j], limit, counter)
            if rnk == ABORTED:
                continue
            if len(heap) < k:
                heapq.heappush(heap, (-rnk, -int(j)))
            elif rnk < -heap[0][0]:
                heapq.heapreplace(heap, (-rnk, -int(j)))
        pairs = [(-nr, -nj) for nr, nj in heap]
        return make_rkr_result(pairs, k, counter)

    # ------------------------------------------------------------------

    @classmethod
    def from_datasets(cls, products, weights, partitions: int = 32,
                      chunk: int = 256) -> "DynamicRRQEngine":
        """Bootstrap a dynamic engine from static containers."""
        engine = cls(products.dim, products.value_range,
                     partitions=partitions, chunk=chunk)
        for row in products.values:
            engine.insert_product(row)
        for row in weights.values:
            engine.insert_weight(row)
        return engine
