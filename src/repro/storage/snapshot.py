"""Pinned snapshots — isolated, mergeable read views of the store.

A :class:`StoreSnapshot` is everything one reader (a query, or a whole
micro-batch) needs, captured atomically under the store lock: the
segment list at pin time, a frozen view of the delta, and the union of
the manifest and delta dead sets.  After the pin the reader never takes
a lock again — writers keep appending, the sealer keeps sealing, the
compactor keeps flipping manifests, and none of it is visible here.
Refcounts (:meth:`release`) are what let the store retire superseded
segment files without yanking them from under a long scan.

Query execution is a deterministic merge, proven byte-identical to
``NaiveRRQ`` over the snapshot's live rows by the property suite:

* the rank of ``q`` under one weight is the **sum** of per-segment
  GInTop-k ranks (products are partitioned across segments, so the
  per-segment counts are disjoint) plus an exact scan of the delta,
  with the remaining abort budget threaded through so early
  termination fires exactly when the merged rank hits the limit;
* RTK unions qualifying weight ids; RKR keeps the k lexicographically
  smallest ``(rank, id)`` pairs — same tie-break as the serial engines
  and ``repro.cluster.coordinator`` (smaller id wins on equal rank),
  which iterating weights in ascending global id makes automatic;
* the Domin optimization stays sound because a snapshot's rows never
  change: per-segment Domin buffers accumulate across the weights of
  one query, and the global early-exit fires once the summed Domin
  sizes (segments + delta) reach ``k``.

A weight outside a segment's quantizer span (see
``storage.segment``) degrades that one (segment, weight) pair to an
exact scan — identical answers, no grid speedup.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.base import duplicate_mask
from ..core.gin import ABORTED, gin_topk
from ..core.ties import count_strictly_better, tie_tolerance
from ..data.datasets import check_query_point
from ..errors import InvalidParameterError
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..stats.counters import OpCounter
from .segment import Segment


def _dead_mask(ids: np.ndarray, dead: frozenset) -> np.ndarray:
    if not dead or not ids.size:
        return np.zeros(ids.shape[0], dtype=bool)
    return np.isin(ids, np.fromiter(dead, dtype=np.int64, count=len(dead)))


class StoreSnapshot:
    """One pinned, immutable view of the segment store.

    Built by ``SegmentStore.pin()`` — never directly.  Release with
    :meth:`release` (or use as a context manager) so retired segments
    can drop their files.
    """

    def __init__(self, store, segments: Sequence[Segment], delta_view: dict,
                 dead_products: frozenset, dead_weights: frozenset,
                 next_pid: int, next_wid: int, generation: int, lsn: int,
                 dim: int, value_range: float, chunk: int):
        self._store = store
        self.segments: Tuple[Segment, ...] = tuple(segments)
        self._delta = delta_view
        self.dead_products = dead_products
        self.dead_weights = dead_weights
        self.next_pid = int(next_pid)
        self.next_wid = int(next_wid)
        #: Store mutation generation at pin time (cache keys).
        self.generation = int(generation)
        #: Manifest barrier LSN at pin time.
        self.lsn = int(lsn)
        self.dim = int(dim)
        self.value_range = float(value_range)
        self.chunk = int(chunk)
        self._released = False
        self._p_dead_masks: Dict[int, np.ndarray] = {}
        self._w_dead_masks: Dict[int, np.ndarray] = {}
        self._counts: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def release(self) -> None:
        """Drop the pin (idempotent); lets retired segments retire."""
        if not self._released:
            self._released = True
            self._store._release_pins(self.segments)

    def __enter__(self) -> "StoreSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.release()
        except BaseException:
            pass

    # ------------------------------------------------------------------
    # live-state accessors
    # ------------------------------------------------------------------

    def _segment_dead_p(self, i: int) -> np.ndarray:
        mask = self._p_dead_masks.get(i)
        if mask is None:
            mask = _dead_mask(self.segments[i].p_ids, self.dead_products)
            self._p_dead_masks[i] = mask
        return mask

    def _segment_dead_w(self, i: int) -> np.ndarray:
        mask = self._w_dead_masks.get(i)
        if mask is None:
            mask = _dead_mask(self.segments[i].w_ids, self.dead_weights)
            self._w_dead_masks[i] = mask
        return mask

    def _delta_live(self, kind: str) -> Tuple[np.ndarray, np.ndarray]:
        rows = self._delta[f"{kind[0]}_rows"]
        ids = self._delta[f"{kind[0]}_ids"]
        dead = (self.dead_products if kind == "products"
                else self.dead_weights)
        keep = ~_dead_mask(ids, dead)
        return rows[keep], ids[keep]

    @property
    def num_products(self) -> int:
        if self._counts is None:
            live_p = sum(s.n_products - int(self._segment_dead_p(i).sum())
                         for i, s in enumerate(self.segments))
            live_w = sum(s.n_weights - int(self._segment_dead_w(i).sum())
                         for i, s in enumerate(self.segments))
            dp, _ = self._delta_live("products")
            dw, _ = self._delta_live("weights")
            self._counts = (live_p + dp.shape[0], live_w + dw.shape[0])
        return self._counts[0]

    @property
    def num_weights(self) -> int:
        self.num_products  # populate the cached pair
        return self._counts[1]

    def live_products(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, global ids)`` of every live product, ascending by id."""
        blocks, id_blocks = [], []
        for i, seg in enumerate(self.segments):
            keep = ~self._segment_dead_p(i)
            blocks.append(seg.p_rows[keep])
            id_blocks.append(seg.p_ids[keep])
        rows, ids = self._delta_live("products")
        blocks.append(rows)
        id_blocks.append(ids)
        out_rows = (np.concatenate(blocks) if blocks
                    else np.empty((0, self.dim)))
        out_ids = (np.concatenate(id_blocks) if id_blocks
                   else np.empty(0, dtype=np.int64))
        return out_rows, out_ids

    def live_weights(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, global ids)`` of every live weight, ascending by id."""
        blocks, id_blocks = [], []
        for i, seg in enumerate(self.segments):
            keep = ~self._segment_dead_w(i)
            blocks.append(seg.w_rows[keep])
            id_blocks.append(seg.w_ids[keep])
        rows, ids = self._delta_live("weights")
        blocks.append(rows)
        id_blocks.append(ids)
        out_rows = (np.concatenate(blocks) if blocks
                    else np.empty((0, self.dim)))
        out_ids = (np.concatenate(id_blocks) if id_blocks
                   else np.empty(0, dtype=np.int64))
        return out_rows, out_ids

    # ------------------------------------------------------------------
    # merged query execution
    # ------------------------------------------------------------------

    def _check(self, q, k: int) -> np.ndarray:
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        if self.num_products == 0 or self.num_weights == 0:
            raise InvalidParameterError(
                "both products and weights must be non-empty to query"
            )
        return check_query_point(q, self.dim)

    def _query_state(self, q: np.ndarray) -> dict:
        contexts = [
            (seg, seg.make_context(q, self._segment_dead_p(i)))
            for i, seg in enumerate(self.segments)
        ]
        rows, _ = self._delta_live("products")
        if rows.shape[0]:
            rows = rows[~duplicate_mask(rows, q)]
        delta_domin = (int(np.all(rows < q, axis=1).sum())
                       if rows.shape[0] else 0)
        return {"contexts": contexts, "delta_rows": rows,
                "delta_domin": delta_domin}

    def _total_domin(self, state: dict) -> int:
        return (sum(ctx.domin_count for _, ctx in state["contexts"])
                + state["delta_domin"])

    def _rank_under(self, state: dict, w: np.ndarray, q: np.ndarray,
                    limit: float, counter: OpCounter) -> int:
        """Merged rank of ``q`` under ``w``; ABORTED once it hits ``limit``."""
        acc = 0
        fq = None
        for seg, ctx in state["contexts"]:
            codes = seg.weight_codes(w)
            if codes is not None:
                rnk = gin_topk(ctx, w, codes, limit - acc, counter)
                if rnk == ABORTED:
                    return ABORTED
                acc += rnk
            else:
                # Out-of-span weight: exact scan of this segment's live,
                # non-duplicate rows (identical count, no grid pruning).
                live = ~ctx.skip
                rows = seg.p_rows[live]
                if fq is None:
                    fq = float(np.dot(w, q))
                if rows.shape[0]:
                    counter.pairwise += rows.shape[0]
                    counter.points_accessed += rows.shape[0]
                    counter.refined += rows.shape[0]
                    scores = rows @ w
                    acc += count_strictly_better(scores, rows, w, q, fq,
                                                 tie_tolerance(fq))
                if acc >= limit:
                    counter.early_terminations += 1
                    return ABORTED
        rows = state["delta_rows"]
        if rows.shape[0]:
            if fq is None:
                fq = float(np.dot(w, q))
            counter.pairwise += rows.shape[0]
            counter.points_accessed += rows.shape[0]
            counter.refined += rows.shape[0]
            scores = rows @ w
            acc += count_strictly_better(scores, rows, w, q, fq,
                                         tie_tolerance(fq))
        if acc >= limit:
            counter.early_terminations += 1
            return ABORTED
        return acc

    def _iter_live_weights(self):
        """Yield ``(global id, row)`` for every live weight, ascending.

        Segment id ranges are disjoint and ascending by construction
        (seals assign monotone ids; compaction only merges adjacent
        runs), and the delta's ids exceed every sealed id — so source
        order *is* global-id order.
        """
        for i, seg in enumerate(self.segments):
            keep = ~self._segment_dead_w(i)
            for j in np.flatnonzero(keep):
                yield int(seg.w_ids[j]), seg.w_rows[j]
        rows, ids = self._delta_live("weights")
        for j in range(rows.shape[0]):
            yield int(ids[j]), rows[j]

    def reverse_topk(self, q, k: int,
                     counter: Optional[OpCounter] = None) -> RTKResult:
        """Reverse top-k over the pinned live rows (global ids)."""
        q_arr = self._check(q, k)
        counter = counter or OpCounter()
        state = self._query_state(q_arr)
        result: List[int] = []
        for gid, w in self._iter_live_weights():
            rnk = self._rank_under(state, w, q_arr, k, counter)
            if rnk != ABORTED:
                result.append(gid)
            if self._total_domin(state) >= k:
                return RTKResult(weights=frozenset(), k=k, counter=counter)
        return RTKResult(weights=frozenset(result), k=k, counter=counter)

    def reverse_kranks(self, q, k: int,
                       counter: Optional[OpCounter] = None) -> RKRResult:
        """Reverse k-ranks over the pinned live rows (global ids)."""
        q_arr = self._check(q, k)
        counter = counter or OpCounter()
        state = self._query_state(q_arr)
        heap: List[Tuple[int, int]] = []
        for gid, w in self._iter_live_weights():
            limit = float("inf") if len(heap) < k else float(-heap[0][0])
            rnk = self._rank_under(state, w, q_arr, limit, counter)
            if rnk == ABORTED:
                continue
            if len(heap) < k:
                heapq.heappush(heap, (-rnk, -gid))
            elif rnk < -heap[0][0]:
                heapq.heapreplace(heap, (-rnk, -gid))
        pairs = [(-nr, -nj) for nr, nj in heap]
        return make_rkr_result(pairs, k, counter)

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready pin summary (debug endpoints, tests)."""
        return {
            "segments": len(self.segments),
            "generation": self.generation,
            "lsn": self.lsn,
            "live_products": self.num_products,
            "live_weights": self.num_weights,
            "delta_products": int(self._delta["p_ids"].shape[0]),
            "delta_weights": int(self._delta["w_ids"].shape[0]),
            "dead_products": len(self.dead_products),
            "dead_weights": len(self.dead_weights),
        }
