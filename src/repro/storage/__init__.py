"""repro.storage — segmented MVCC index storage.

Immutable grid-indexed segments + a small mutable delta, sealed and
compacted behind an atomic CRC32 manifest flip, with snapshot-isolated
readers pinned via refcounts.  See :mod:`repro.storage.store` for the
architecture and the crash contract.
"""

from .delta import MutableDelta
from .kernel import SnapshotKernel
from .manifest import (
    CURRENT_NAME,
    MANIFEST_FORMAT,
    manifest_name,
    read_current_manifest,
    sweep_store_orphans,
    write_manifest,
)
from .segment import Segment, load_segment
from .snapshot import StoreSnapshot
from .store import (
    DEFAULT_COMPACT_DEAD_FRACTION,
    DEFAULT_COMPACT_MAX_SEGMENTS,
    DEFAULT_COMPACT_SMALL_ROWS,
    DEFAULT_SEAL_ROWS,
    SegmentStore,
)

__all__ = [
    "MutableDelta", "SnapshotKernel", "Segment", "load_segment",
    "StoreSnapshot", "SegmentStore", "read_current_manifest",
    "write_manifest", "sweep_store_orphans", "manifest_name",
    "CURRENT_NAME", "MANIFEST_FORMAT", "DEFAULT_SEAL_ROWS",
    "DEFAULT_COMPACT_MAX_SEGMENTS", "DEFAULT_COMPACT_DEAD_FRACTION",
    "DEFAULT_COMPACT_SMALL_ROWS",
]
