"""Immutable index segments — the sealed unit of the MVCC store.

A :class:`Segment` is a frozen slice of the catalogue: product and
weight rows together with their **stable global ids**, plus everything
the Grid-index scan needs prebuilt — the per-segment
:class:`~repro.core.grid.GridIndex`, the quantized product codes
``P^(A)``, and the pre-gathered boundary matrices ``alpha_p[PA]`` /
``alpha_p[PA+1]`` that turn the Equation 3/4 bound sums into BLAS inner
products.  Once built, nothing in a segment ever changes; deletes are
recorded *outside* it (in the store's dead sets) and applied at query
time through the ``skip`` mask, so an arbitrary number of readers can
scan one segment concurrently with zero coordination.

On disk a segment is a directory committed through the generic CRC32
manifest machinery (:func:`repro.core.storage.write_manifest_dir`):
every artifact lands via temp-file + fsync + rename and
``MANIFEST.json`` is written last, so a crash at any byte leaves a
directory that either verifies completely or is provably damaged —
:func:`load_segment` refuses the latter with a structured
:class:`~repro.errors.IndexCorruptionError`.  Derived state (grid,
codes, gathered boundaries) is *recomputed* on load rather than stored:
the rebuild is deterministic, and not persisting it keeps the checksum
surface to the raw rows and ids.

Weight-axis note: each segment's ``alpha_w`` spans
``[0, max(1, observed w max)]`` at seal time.  A query-time weight from
*another* segment can exceed that span (renormalization tolerance, a
later re-span); :meth:`Segment.weight_codes` then returns ``None`` and
the caller falls back to an exact scan of the segment — slower, never
wrong.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from ..algorithms.base import duplicate_mask
from ..core.approx import Quantizer
from ..core.gin import DEFAULT_CHUNK, GinContext
from ..core.grid import GridIndex
from ..core.storage import verify_manifest_dir, write_manifest_dir
from ..data.io import load_matrix, matrix_to_bytes
from ..errors import IndexCorruptionError, InvalidParameterError

#: Format tag stored in every segment's metadata.
SEGMENT_FORMAT = "rrq-segment-v1"

#: Artifact names inside a segment directory.
META_NAME = "segment.json"
PRODUCTS_NAME = "products.mat"
PIDS_NAME = "pids.bin"
WEIGHTS_NAME = "weights.mat"
WIDS_NAME = "wids.bin"

_IDS_MAGIC = b"RRQI"


def _ids_to_bytes(ids: np.ndarray) -> bytes:
    arr = np.ascontiguousarray(ids, dtype="<i8")
    return _IDS_MAGIC + struct.pack("<HI", 1, arr.shape[0]) + arr.tobytes()


def _ids_from_bytes(data: bytes, path: Path) -> np.ndarray:
    head = len(_IDS_MAGIC) + struct.calcsize("<HI")
    if len(data) < head or data[: len(_IDS_MAGIC)] != _IDS_MAGIC:
        raise IndexCorruptionError(f"{path}: not an RRQ id file")
    _, count = struct.unpack("<HI", data[len(_IDS_MAGIC):head])
    body = np.frombuffer(data[head:], dtype="<i8")
    if body.shape[0] != count:
        raise IndexCorruptionError(
            f"{path}: id count mismatch (header {count}, payload {body.shape[0]})"
        )
    return body.astype(np.int64)


class Segment:
    """One immutable (products, weights, grid) slice with stable ids.

    Parameters
    ----------
    name:
        Directory-style identifier (``seg-00000007``); unique per store.
    p_rows, p_ids:
        Product rows ``(m, d)`` and their ascending global ids ``(m,)``.
    w_rows, w_ids:
        Weight rows and ids, same shape contract.
    value_range:
        Product attribute range (fixes ``alpha_p``, shared store-wide).
    partitions, chunk:
        Grid resolution and scan block size.
    w_range:
        Weight-axis span; defaults to ``max(1, observed max)`` so most
        normalized weights from other segments still quantize here.
    """

    def __init__(self, name: str, p_rows: np.ndarray, p_ids: np.ndarray,
                 w_rows: np.ndarray, w_ids: np.ndarray, value_range: float,
                 partitions: int, chunk: int = DEFAULT_CHUNK,
                 w_range: Optional[float] = None,
                 directory: Optional[Path] = None):
        self.name = str(name)
        self.p_rows = np.ascontiguousarray(p_rows, dtype=np.float64)
        self.p_ids = np.ascontiguousarray(p_ids, dtype=np.int64)
        self.w_rows = np.ascontiguousarray(w_rows, dtype=np.float64)
        self.w_ids = np.ascontiguousarray(w_ids, dtype=np.int64)
        for ids, rows, kind in ((self.p_ids, self.p_rows, "product"),
                                (self.w_ids, self.w_rows, "weight")):
            if ids.shape[0] != rows.shape[0]:
                raise InvalidParameterError(
                    f"{kind} ids/rows length mismatch in segment {name}"
                )
            if ids.size > 1 and np.any(np.diff(ids) <= 0):
                raise InvalidParameterError(
                    f"{kind} ids must be strictly ascending in segment {name}"
                )
        self.value_range = float(value_range)
        self.partitions = int(partitions)
        self.chunk = int(chunk)
        if w_range is None:
            observed = float(self.w_rows.max()) if self.w_rows.size else 0.0
            w_range = max(1.0, observed)
        self.w_range = float(w_range)

        alpha_p = np.linspace(0.0, self.value_range, self.partitions + 1)
        alpha_w = np.linspace(0.0, self.w_range, self.partitions + 1)
        self.grid = GridIndex(alpha_p, alpha_w)
        self.w_quantizer = Quantizer(self.grid.alpha_w)
        p_quantizer = Quantizer(self.grid.alpha_p)
        self.pa = p_quantizer.quantize(self.p_rows).astype(np.int64)
        self.pa_low = self.grid.alpha_p[self.pa]
        self.pa_high = self.grid.alpha_p[self.pa + 1]
        for arr in (self.p_rows, self.p_ids, self.w_rows, self.w_ids,
                    self.pa, self.pa_low, self.pa_high):
            arr.setflags(write=False)

        #: Refcount of live snapshots holding this segment; guarded by
        #: the owning store's lock.  A retired segment's directory is
        #: deleted only once the count drains to zero.
        self.pins = 0
        #: Set when a compaction supersedes this segment.
        self.retired = False
        #: On-disk home (None for a memory-only store).
        self.directory = directory

    # ------------------------------------------------------------------

    @property
    def n_products(self) -> int:
        return self.p_rows.shape[0]

    @property
    def n_weights(self) -> int:
        return self.w_rows.shape[0]

    @property
    def dim(self) -> int:
        return self.p_rows.shape[1] if self.p_rows.ndim == 2 else 0

    def nbytes(self) -> int:
        """In-memory footprint of the raw rows (stats only)."""
        return int(self.p_rows.nbytes + self.w_rows.nbytes
                   + self.pa_low.nbytes + self.pa_high.nbytes)

    # ------------------------------------------------------------------
    # query-side helpers
    # ------------------------------------------------------------------

    def make_context(self, q: np.ndarray, dead_mask: np.ndarray) -> GinContext:
        """Fresh per-query GInTop-k context over this segment's products.

        ``dead_mask`` is the snapshot's view of which of this segment's
        rows are deleted; it joins the duplicate mask in ``skip`` so the
        scan never counts (or Domin-collects) a dead row.
        """
        return GinContext(
            P=self.p_rows, PA=self.pa, grid=self.grid, q=q,
            domin=np.zeros(self.n_products, dtype=bool),
            skip=duplicate_mask(self.p_rows, q) | dead_mask,
            chunk=self.chunk,
            pa_low=self.pa_low, pa_high=self.pa_high,
        )

    def weight_codes(self, w: np.ndarray) -> Optional[np.ndarray]:
        """``w``'s approximate vector under this segment's weight axis.

        Returns ``None`` when ``w`` falls outside the axis span — the
        caller must then use the exact-scan fallback for this segment.
        """
        if w.size and float(w.max()) > self.w_range + 1e-12:
            return None
        return self.w_quantizer.quantize(w).astype(np.int64)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, directory) -> None:
        """Commit this segment to ``directory`` (CRC32 manifest protocol)."""
        meta = {
            "format": SEGMENT_FORMAT,
            "name": self.name,
            "dim": self.dim,
            "value_range": self.value_range,
            "partitions": self.partitions,
            "chunk": self.chunk,
            "w_range": self.w_range,
            "n_products": self.n_products,
            "n_weights": self.n_weights,
        }
        payloads = {
            META_NAME: json.dumps(meta, indent=2, sort_keys=True).encode(),
            PRODUCTS_NAME: matrix_to_bytes(self.p_rows),
            PIDS_NAME: _ids_to_bytes(self.p_ids),
            WEIGHTS_NAME: matrix_to_bytes(self.w_rows),
            WIDS_NAME: _ids_to_bytes(self.w_ids),
        }
        write_manifest_dir(directory, payloads, site_prefix="storage.segment")
        self.directory = Path(directory)

    def stats(self, dead_products: int = 0, dead_weights: int = 0) -> dict:
        """JSON-ready summary (``storage-dump``, ``/metrics``)."""
        return {
            "name": self.name,
            "products": self.n_products,
            "weights": self.n_weights,
            "dead_products": int(dead_products),
            "dead_weights": int(dead_weights),
            "w_range": self.w_range,
            "bytes": self.nbytes(),
            "pins": self.pins,
            "retired": self.retired,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Segment({self.name}, p={self.n_products}, "
                f"w={self.n_weights}, pins={self.pins})")


def load_segment(directory, chunk: int = DEFAULT_CHUNK) -> Segment:
    """Load and verify one segment directory; raise on any corruption.

    Every artifact is checksum-verified against the segment's
    ``MANIFEST.json`` before a byte of it is parsed, so a torn write
    (crash mid-seal before the manifest landed) surfaces as a structured
    error naming the damaged files — never a garbage index.
    """
    path = Path(directory)
    report = verify_manifest_dir(path)
    if not report["ok"]:
        raise IndexCorruptionError(
            f"segment {path.name} failed verification: "
            f"damaged={report['damaged']}"
        )
    try:
        meta = json.loads((path / META_NAME).read_text())
    except (ValueError, OSError) as exc:
        raise IndexCorruptionError(
            f"segment {path.name}: unreadable metadata ({exc})"
        ) from exc
    if meta.get("format") != SEGMENT_FORMAT:
        raise IndexCorruptionError(
            f"segment {path.name}: unknown format {meta.get('format')!r}"
        )
    p_rows = load_matrix(path / PRODUCTS_NAME)
    w_rows = load_matrix(path / WEIGHTS_NAME)
    p_ids = _ids_from_bytes((path / PIDS_NAME).read_bytes(), path / PIDS_NAME)
    w_ids = _ids_from_bytes((path / WIDS_NAME).read_bytes(), path / WIDS_NAME)
    if (p_rows.shape[0] != meta["n_products"]
            or w_rows.shape[0] != meta["n_weights"]):
        raise IndexCorruptionError(
            f"segment {path.name}: row counts disagree with metadata"
        )
    return Segment(
        meta["name"], p_rows, p_ids, w_rows, w_ids,
        value_range=meta["value_range"], partitions=meta["partitions"],
        chunk=int(meta.get("chunk", chunk)), w_range=meta["w_range"],
        directory=path,
    )
