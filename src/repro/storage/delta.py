"""The mutable delta — where writes land before they are sealed.

One :class:`MutableDelta` buffers everything that happened since the
last seal: appended product/weight rows (with their pre-assigned global
ids) and the ids deleted since the barrier — whether those ids live in
the delta itself or in an already-sealed segment.  It is deliberately
tiny and dumb: no grid, no codes, no bounds.  Queries handle delta rows
by exact scan (the delta is small by construction — the store seals it
into a segment once it crosses a threshold), which keeps the hot
mutation path to an O(d) append.

Concurrency follows the same copy-on-grow contract as
``ext.dynamic._GrowableMatrix``: buffers are never resized in place and
the ``(rows, ids, count)`` triple is published in one reference
assignment, so :meth:`freeze` hands back arrays that stay byte-stable
under any number of later appends.  Frozen views are cached per
mutation generation — pinning a snapshot between mutations costs no
copies at all.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set, Tuple

import numpy as np

from ..errors import InvalidParameterError

#: Initial row capacity of a delta side.
MIN_CAPACITY = 16


class _DeltaSide:
    """Append-only (rows, global ids) buffer with atomic publication."""

    def __init__(self, dim: int):
        self.dim = dim
        self._state = (
            np.empty((MIN_CAPACITY, dim)),
            np.empty(MIN_CAPACITY, dtype=np.int64),
            0,
        )

    def append(self, row: np.ndarray, gid: int) -> None:
        rows, ids, used = self._state
        if used == rows.shape[0]:
            cap = rows.shape[0] * 2
            grown = np.empty((cap, self.dim))
            grown[:used] = rows[:used]
            grown_ids = np.empty(cap, dtype=np.int64)
            grown_ids[:used] = ids[:used]
            rows, ids = grown, grown_ids
        rows[used] = row
        ids[used] = gid
        # Publish after the row and id are fully written (see module doc).
        self._state = (rows, ids, used + 1)

    def frozen(self) -> Tuple[np.ndarray, np.ndarray]:
        rows, ids, used = self._state
        out_rows, out_ids = rows[:used], ids[:used]
        out_rows.setflags(write=False)
        out_ids.setflags(write=False)
        return out_rows, out_ids

    def find(self, gid: int) -> Optional[int]:
        """Local position of ``gid``, or None (linear; deltas are small)."""
        rows, ids, used = self._state
        hits = np.flatnonzero(ids[:used] == gid)
        return int(hits[0]) if hits.size else None

    @property
    def count(self) -> int:
        return self._state[2]


class MutableDelta:
    """All un-sealed state: appended rows plus post-barrier deletes.

    The dead sets may name ids living in sealed segments — a delete of
    an old row does not touch the (immutable) segment, it just records
    the id here until the next seal folds it into the manifest's dead
    sets.  ``generation`` bumps on every mutation so frozen views and
    derived caches can be invalidated precisely.
    """

    def __init__(self, dim: int):
        self.dim = dim
        self.products = _DeltaSide(dim)
        self.weights = _DeltaSide(dim)
        #: Ids deleted since the last seal (segment- or delta-resident).
        self.dead_products: Set[int] = set()
        self.dead_weights: Set[int] = set()
        #: Monotone mutation counter (snapshot/cache invalidation).
        self.generation = 0
        self._frozen_cache: Optional[Tuple[int, dict]] = None

    # ------------------------------------------------------------------

    def append_product(self, row: np.ndarray, gid: int) -> None:
        self.products.append(row, gid)
        self.generation += 1

    def append_weight(self, row: np.ndarray, gid: int) -> None:
        self.weights.append(row, gid)
        self.generation += 1

    def kill_product(self, gid: int) -> None:
        if gid in self.dead_products:
            raise InvalidParameterError(
                f"index {gid} is already deleted (tombstoned)"
            )
        self.dead_products.add(gid)
        self.generation += 1

    def kill_weight(self, gid: int) -> None:
        if gid in self.dead_weights:
            raise InvalidParameterError(
                f"index {gid} is already deleted (tombstoned)"
            )
        self.dead_weights.add(gid)
        self.generation += 1

    # ------------------------------------------------------------------

    @property
    def mutation_rows(self) -> int:
        """Buffered work since the last seal (the seal trigger)."""
        return (self.products.count + self.weights.count
                + len(self.dead_products) + len(self.dead_weights))

    def freeze(self) -> dict:
        """One coherent, immutable view of the whole delta.

        Returns ``{"p_rows", "p_ids", "w_rows", "w_ids", "dead_products",
        "dead_weights", "generation"}`` with array views that stay stable
        under later appends and frozensets decoupled from later deletes.
        Cached per generation: repeated pins between mutations are free.
        """
        if (self._frozen_cache is not None
                and self._frozen_cache[0] == self.generation):
            return self._frozen_cache[1]
        p_rows, p_ids = self.products.frozen()
        w_rows, w_ids = self.weights.frozen()
        view = {
            "p_rows": p_rows, "p_ids": p_ids,
            "w_rows": w_rows, "w_ids": w_ids,
            "dead_products": frozenset(self.dead_products),
            "dead_weights": frozenset(self.dead_weights),
            "generation": self.generation,
        }
        self._frozen_cache = (self.generation, view)
        return view

    def live_counts(self) -> Tuple[int, int]:
        """(live products, live weights) resident in the delta itself."""
        view = self.freeze()
        live_p = int(np.count_nonzero(
            ~np.isin(view["p_ids"], sorted(view["dead_products"]))
        )) if view["p_ids"].size else 0
        live_w = int(np.count_nonzero(
            ~np.isin(view["w_ids"], sorted(view["dead_weights"]))
        )) if view["w_ids"].size else 0
        return live_p, live_w
