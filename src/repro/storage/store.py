"""The segmented MVCC store: immutable segments + one mutable delta.

Write path: every mutation appends to the :class:`MutableDelta` in
O(d) — no cache invalidation storm, no kernel-array rebuild.  Once the
delta crosses a threshold (or on an explicit checkpoint) it is
**sealed**: its live rows become a new immutable :class:`Segment` with
prebuilt grid/codes/boundary arrays, committed to disk through the
CRC32 manifest protocol and a ``CURRENT`` pointer flip
(:mod:`repro.storage.manifest`).  A background (or on-demand)
**compactor** merges adjacent runs of small segments and physically
drops manifest-dead rows, committing the same way; superseded segments
retire through refcounts so pinned readers keep their files.

Read path: :meth:`SegmentStore.pin` captures ``(segment list, frozen
delta, dead-set union)`` atomically under the store lock and returns a
:class:`~repro.storage.snapshot.StoreSnapshot` — after that the reader
never synchronizes with writers again.  ``reverse_topk`` /
``reverse_kranks`` are pin-query-release wrappers, so even the
single-query path is snapshot-isolated.

Crash contract (the WAL barrier invariant, enforced by the chaos
suite):

* ``manifest.lsn`` advances only at a seal/checkpoint, at which point
  the delta is (logically) empty — so the manifest's dead sets are
  exactly the deletes at or before its LSN whose rows still exist;
* compaction never changes ``lsn``; it drops **manifest-dead rows
  only** and removes exactly those ids from the dead sets, so WAL tail
  replay (records after ``lsn``) reconstructs the delta — inserts with
  their original ids, post-barrier deletes — idempotently on every
  recovery;
* disk commits happen *before* the in-memory flip: an injected crash
  (or SIGKILL) during a seal/compaction leaves the old manifest live
  and at worst an orphaned segment directory, swept on recovery.
"""

from __future__ import annotations

import shutil
import threading
from pathlib import Path
from time import monotonic
from typing import List, Optional, Set, Tuple

import numpy as np

from ..data.datasets import check_query_point
from ..errors import DataValidationError, InvalidParameterError
from ..obs.trace import span
from ..queries.types import RKRResult, RTKResult
from ..stats.counters import OpCounter
from .delta import MutableDelta
from .manifest import (
    manifest_name,
    read_current_manifest,
    sweep_store_orphans,
    write_manifest,
)
from .segment import Segment, load_segment
from .snapshot import StoreSnapshot

#: Delta rows that trigger an automatic seal (the durable engine's knob).
DEFAULT_SEAL_ROWS = 256

#: Background compaction fires when the store holds more segments...
DEFAULT_COMPACT_MAX_SEGMENTS = 8
#: ...or when this fraction of physical rows is dead.
DEFAULT_COMPACT_DEAD_FRACTION = 0.30
#: Segments smaller than this count as "small" for run merging.
DEFAULT_COMPACT_SMALL_ROWS = 2048


class _StoreView:
    """Dataset-like read view (stable global ids) for the serving stack.

    Mirrors ``ext.dynamic.LiveView``: ``size`` spans every id ever
    allocated, dead ids raise structured errors, and there is
    deliberately no ``values`` attribute — the scheduler's signal that
    the static coalesced path must not be used.
    """

    def __init__(self, store: "SegmentStore", kind: str, value_range: float):
        self._store = store
        self._kind = kind
        self.value_range = float(value_range)

    @property
    def dim(self) -> int:
        return self._store.dim

    @property
    def size(self) -> int:
        return (self._store._next_pid if self._kind == "products"
                else self._store._next_wid)

    @property
    def live_count(self) -> int:
        return (self._store.num_products if self._kind == "products"
                else self._store.num_weights)

    def live_indices(self) -> np.ndarray:
        with self._store.pin() as snap:
            getter = (snap.live_products if self._kind == "products"
                      else snap.live_weights)
            return getter()[1].copy()

    def live_values(self) -> np.ndarray:
        with self._store.pin() as snap:
            getter = (snap.live_products if self._kind == "products"
                      else snap.live_weights)
            return getter()[0].copy()

    def __getitem__(self, idx: int) -> np.ndarray:
        return self._store._get_row(self._kind, int(idx))

    def __len__(self) -> int:
        return self.size


class SegmentStore:
    """Segmented MVCC index store (drop-in for ``DynamicRRQEngine``).

    Parameters
    ----------
    dim, value_range, partitions, chunk:
        Same contract as :class:`~repro.ext.dynamic.DynamicRRQEngine`.
    directory:
        Segment/manifest home.  ``None`` keeps the store memory-only
        (unit tests, ephemeral engines); the commit protocol becomes a
        no-op but all MVCC semantics are identical.
    compact_max_segments, compact_dead_fraction, compact_small_rows:
        Compaction triggers (see :meth:`maybe_compact`).
    """

    #: Engine identifier shown in ``/info`` and used in cache keys.
    method = "segmented"

    def __init__(self, dim: int, value_range: float = 1.0,
                 partitions: int = 32, chunk: int = 256,
                 directory=None,
                 compact_max_segments: int = DEFAULT_COMPACT_MAX_SEGMENTS,
                 compact_dead_fraction: float = DEFAULT_COMPACT_DEAD_FRACTION,
                 compact_small_rows: int = DEFAULT_COMPACT_SMALL_ROWS):
        if dim <= 0:
            raise InvalidParameterError("dim must be positive")
        if value_range <= 0:
            raise InvalidParameterError("value_range must be positive")
        self.dim = int(dim)
        self.value_range = float(value_range)
        self.partitions = int(partitions)
        self.chunk = int(chunk)
        self.directory = Path(directory) if directory is not None else None
        self.compact_max_segments = int(compact_max_segments)
        self.compact_dead_fraction = float(compact_dead_fraction)
        self.compact_small_rows = int(compact_small_rows)

        self._segments: Tuple[Segment, ...] = ()
        self._delta = MutableDelta(self.dim)
        self._manifest_dead_p: frozenset = frozenset()
        self._manifest_dead_w: frozenset = frozenset()
        self._next_pid = 0
        self._next_wid = 0
        self._next_segment = 0
        self._manifest_generation = 0
        self._manifest_lsn = 0
        #: Highest LSN applied to the in-memory state (durable engine).
        self.applied_lsn = 0
        #: Monotone mutation/flip counter — snapshot & kernel cache key.
        self._generation = 0

        self._lock = threading.RLock()
        #: Serializes seal vs compaction (never held during queries).
        self._maintenance = threading.Lock()
        self._retired: List[Segment] = []
        self._active_pins = 0
        self._change_listeners: List = []

        self.seals_total = 0
        self.compactions_total = 0
        self.compaction_seconds_total = 0.0
        self.last_compaction_s = 0.0
        self.segments_retired_total = 0
        self.orphans_swept_total = 0

        self._compactor: Optional[threading.Thread] = None
        self._compactor_stop = threading.Event()

        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            if read_current_manifest(self.directory) is None:
                # Commit generation 0 immediately so the directory is
                # recognizably segmented from its very first byte.
                self._write_current_manifest()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    @classmethod
    def from_directory(cls, directory, chunk: Optional[int] = None,
                       **knobs) -> "SegmentStore":
        """Reopen a store: verified manifest, segments, orphan sweep.

        The WAL tail (records after ``manifest.lsn``) is the durable
        engine's to replay; this restores exactly the manifest state.
        Raises :class:`~repro.errors.IndexCorruptionError` on a corrupt
        pointer, manifest, or segment — acknowledged state is never
        silently dropped.
        """
        directory = Path(directory)
        manifest = read_current_manifest(directory)
        if manifest is None:
            raise InvalidParameterError(
                f"{directory} has no store manifest; "
                "construct SegmentStore(...) to create one"
            )
        params = manifest["params"]
        store = cls(
            dim=int(params["dim"]),
            value_range=float(params["value_range"]),
            partitions=int(params["partitions"]),
            chunk=int(chunk if chunk is not None else params["chunk"]),
            **knobs,
        )
        store.directory = directory
        segments = []
        for name in manifest["segments"]:
            seg = load_segment(directory / name, chunk=store.chunk)
            segments.append(seg)
        store._segments = tuple(segments)
        store._manifest_dead_p = frozenset(manifest["dead_products"])
        store._manifest_dead_w = frozenset(manifest["dead_weights"])
        store._next_pid = int(manifest["next_pid"])
        store._next_wid = int(manifest["next_wid"])
        store._next_segment = int(params.get("next_segment", len(segments)))
        store._manifest_generation = int(manifest["generation"])
        store._manifest_lsn = int(manifest["lsn"])
        store.applied_lsn = store._manifest_lsn
        removed = sweep_store_orphans(directory, manifest)
        store.orphans_swept_total += len(removed)
        return store

    # ------------------------------------------------------------------
    # change notification
    # ------------------------------------------------------------------

    def add_change_listener(self, callback) -> None:
        """Register a no-argument callable invoked after every mutation."""
        self._change_listeners.append(callback)

    def _notify_change(self) -> None:
        for callback in self._change_listeners:
            callback()

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def _find(self, kind: str, gid: int):
        """Physical home of ``gid`` → ``(segment | delta, local idx)`` or None."""
        side = (self._delta.products if kind == "products"
                else self._delta.weights)
        local = side.find(gid)
        if local is not None:
            return side, local
        for seg in self._segments:
            ids = seg.p_ids if kind == "products" else seg.w_ids
            pos = int(np.searchsorted(ids, gid))
            if pos < ids.shape[0] and ids[pos] == gid:
                return seg, pos
        return None

    def _dead_union(self, kind: str) -> Set[int]:
        if kind == "products":
            return set(self._manifest_dead_p) | self._delta.dead_products
        return set(self._manifest_dead_w) | self._delta.dead_weights

    def _check_live(self, kind: str, gid: int) -> None:
        """Structured liveness check mirroring ``_GrowableMatrix.kill``."""
        upper = self._next_pid if kind == "products" else self._next_wid
        if not 0 <= gid < upper:
            raise InvalidParameterError(
                f"index {gid} out of range [0, {upper})"
            )
        if gid in self._dead_union(kind) or self._find(kind, gid) is None:
            raise InvalidParameterError(
                f"index {gid} is already deleted (tombstoned)"
            )

    def _get_row(self, kind: str, gid: int) -> np.ndarray:
        with self._lock:
            upper = self._next_pid if kind == "products" else self._next_wid
            if not 0 <= gid < upper:
                raise InvalidParameterError(
                    f"index {gid} out of range [0, {upper})"
                )
            if gid in self._dead_union(kind):
                raise InvalidParameterError(f"index {gid} is deleted")
            home = self._find(kind, gid)
            if home is None:
                raise InvalidParameterError(f"index {gid} is deleted")
            holder, local = home
            if isinstance(holder, Segment):
                rows = (holder.p_rows if kind == "products"
                        else holder.w_rows)
                return rows[local].copy()
            return holder.frozen()[0][local].copy()

    # ------------------------------------------------------------------
    # mutation (O(d) appends into the delta)
    # ------------------------------------------------------------------

    def _validate_product(self, vector) -> np.ndarray:
        row = check_query_point(vector, self.dim)
        if row.max(initial=0.0) >= self.value_range:
            raise DataValidationError(
                "product values must lie in [0, value_range)"
            )
        return row

    def _validate_weight(self, vector, renormalize: bool) -> np.ndarray:
        row = check_query_point(vector, self.dim)
        total = float(row.sum())
        if renormalize:
            if total <= 0:
                raise DataValidationError("weight vector sums to zero")
            row = row / total
        elif abs(total - 1.0) > 1e-6:
            raise DataValidationError(
                f"weight vector sums to {total:.6f}, expected 1.0"
            )
        return row

    def insert_product(self, vector) -> int:
        """Add a product; returns its stable global id."""
        row = self._validate_product(vector)
        with self._lock:
            gid = self._next_pid
            self._next_pid += 1
            self._delta.append_product(row, gid)
            self._generation += 1
        self._notify_change()
        return gid

    def insert_weight(self, vector, renormalize: bool = False) -> int:
        """Add a preference vector; returns its stable global id."""
        row = self._validate_weight(vector, renormalize)
        with self._lock:
            gid = self._next_wid
            self._next_wid += 1
            self._delta.append_weight(row, gid)
            self._generation += 1
        self._notify_change()
        return gid

    def remove_product(self, idx: int) -> None:
        """Tombstone a product (recorded in the delta until sealed)."""
        idx = int(idx)
        with self._lock:
            self._check_live("products", idx)
            self._delta.kill_product(idx)
            self._generation += 1
        self._notify_change()

    def remove_weight(self, idx: int) -> None:
        """Tombstone a preference."""
        idx = int(idx)
        with self._lock:
            self._check_live("weights", idx)
            self._delta.kill_weight(idx)
            self._generation += 1
        self._notify_change()

    def modify_product(self, idx: int, vector) -> int:
        """Replace product ``idx``: validate, tombstone, append anew.

        Atomic under the store lock — no snapshot can observe the
        in-between state where the old row is gone and the new one is
        not yet appended.  Returns the replacement's global id.
        """
        row = self._validate_product(vector)
        idx = int(idx)
        with self._lock:
            self._check_live("products", idx)
            self._delta.kill_product(idx)
            gid = self._next_pid
            self._next_pid += 1
            self._delta.append_product(row, gid)
            self._generation += 1
        self._notify_change()
        return gid

    def modify_weight(self, idx: int, vector,
                      renormalize: bool = False) -> int:
        """Replace preference ``idx`` (same contract as modify_product)."""
        row = self._validate_weight(vector, renormalize)
        idx = int(idx)
        with self._lock:
            self._check_live("weights", idx)
            self._delta.kill_weight(idx)
            gid = self._next_wid
            self._next_wid += 1
            self._delta.append_weight(row, gid)
            self._generation += 1
        self._notify_change()
        return gid

    #: Mutation-op aliases matching the WAL vocabulary.
    delete_product = remove_product
    delete_weight = remove_weight

    def note_lsn(self, lsn: int) -> None:
        """Record the LSN just applied (the durable engine's bookkeeping)."""
        self.applied_lsn = max(self.applied_lsn, int(lsn))

    def rebuild(self) -> None:
        """No-op: per-segment grids are fixed at seal time.

        Kept for WAL-vocabulary parity with the flat engine — replaying
        a ``rebuild`` record against a segmented store changes nothing,
        which is exactly what determinism requires.
        """
        self._notify_change()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def pin(self) -> StoreSnapshot:
        """Capture one isolated read view; caller must release it."""
        with self._lock:
            segments = self._segments
            for seg in segments:
                seg.pins += 1
            self._active_pins += 1
            view = self._delta.freeze()
            dead_p = self._manifest_dead_p | view["dead_products"]
            dead_w = self._manifest_dead_w | view["dead_weights"]
            return StoreSnapshot(
                self, segments, view, frozenset(dead_p), frozenset(dead_w),
                next_pid=self._next_pid, next_wid=self._next_wid,
                generation=self._generation, lsn=self._manifest_lsn,
                dim=self.dim, value_range=self.value_range, chunk=self.chunk,
            )

    def _release_pins(self, segments: Tuple[Segment, ...]) -> None:
        with self._lock:
            self._active_pins -= 1
            doomed = []
            for seg in segments:
                seg.pins -= 1
                if seg.retired and seg.pins == 0:
                    doomed.append(seg)
                    if seg in self._retired:
                        self._retired.remove(seg)
        for seg in doomed:
            if seg.directory is not None:
                shutil.rmtree(seg.directory, ignore_errors=True)

    # ------------------------------------------------------------------
    # queries (pin-query-release)
    # ------------------------------------------------------------------

    def reverse_topk(self, q, k: int,
                     counter: Optional[OpCounter] = None) -> RTKResult:
        """Snapshot-isolated reverse top-k (stable global ids)."""
        snap = self.pin()
        try:
            return snap.reverse_topk(q, k, counter)
        finally:
            snap.release()

    def reverse_kranks(self, q, k: int,
                       counter: Optional[OpCounter] = None) -> RKRResult:
        """Snapshot-isolated reverse k-ranks (stable global ids)."""
        snap = self.pin()
        try:
            return snap.reverse_kranks(q, k, counter)
        finally:
            snap.release()

    # ------------------------------------------------------------------
    # seal / checkpoint
    # ------------------------------------------------------------------

    def _write_current_manifest(self, generation: Optional[int] = None,
                                lsn: Optional[int] = None,
                                segments: Optional[Tuple[Segment, ...]] = None,
                                dead_p: Optional[frozenset] = None,
                                dead_w: Optional[frozenset] = None,
                                next_segment: Optional[int] = None) -> None:
        """Write + flip the manifest for the given (or current) state.

        Pure disk I/O — touches no in-memory fields, so callers commit
        memory only after this returns (crash ⇒ memory unchanged, disk
        shows either the old or the new manifest).
        """
        if self.directory is None:
            return
        segments = self._segments if segments is None else segments
        target = (self._manifest_generation if generation is None
                  else generation)
        write_manifest(
            self.directory,
            generation=target,
            lsn=self._manifest_lsn if lsn is None else lsn,
            segments=[seg.name for seg in segments],
            dead_products=(self._manifest_dead_p if dead_p is None
                           else dead_p),
            dead_weights=(self._manifest_dead_w if dead_w is None
                          else dead_w),
            next_pid=self._next_pid, next_wid=self._next_wid,
            params={
                "dim": self.dim, "value_range": self.value_range,
                "partitions": self.partitions, "chunk": self.chunk,
                "next_segment": (self._next_segment if next_segment is None
                                 else next_segment),
            },
        )
        # Superseded manifests are never pinned; drop them eagerly so a
        # long-running store doesn't shed them only at the next recovery.
        keep = manifest_name(target)
        for entry in self.directory.glob("MANIFEST-*.json"):
            if entry.name != keep:
                entry.unlink(missing_ok=True)

    def seal(self, lsn: Optional[int] = None, force: bool = False,
             blocking: bool = True) -> Optional[str]:
        """Freeze the delta into a new immutable segment and commit.

        Returns the new segment's name, or ``None`` when there was
        nothing to seal (or ``blocking=False`` and the compactor holds
        the maintenance lock).  ``lsn`` becomes the new manifest
        barrier; it defaults to :attr:`applied_lsn`.

        Commit order is disk-then-memory: the segment directory and the
        manifest flip land (or crash) *before* the in-memory state
        changes, so an injected crash leaves the store — memory and
        disk — exactly as it was.
        """
        if not self._maintenance.acquire(blocking=blocking):
            return None
        try:
            with span("storage.seal") as sp:
                return self._seal_locked(lsn, force, sp)
        finally:
            self._maintenance.release()

    def _seal_locked(self, lsn: Optional[int], force: bool, sp) -> Optional[str]:
        with self._lock:
            view = self._delta.freeze()
            if view["generation"] == 0 and not force:
                return None
            barrier = int(lsn if lsn is not None else self.applied_lsn)
            p_rows, p_ids = view["p_rows"], view["p_ids"]
            w_rows, w_ids = view["w_rows"], view["w_ids"]
            dead_p, dead_w = view["dead_products"], view["dead_weights"]
            keep_p = (~np.isin(p_ids, sorted(dead_p)) if p_ids.size
                      else np.zeros(0, dtype=bool))
            keep_w = (~np.isin(w_ids, sorted(dead_w)) if w_ids.size
                      else np.zeros(0, dtype=bool))
            sealed_p, sealed_pids = p_rows[keep_p], p_ids[keep_p]
            sealed_w, sealed_wids = w_rows[keep_w], w_ids[keep_w]
            # Deletes of segment-resident rows fold into the manifest
            # dead sets; deletes of delta rows simply drop the row.
            new_dead_p = self._manifest_dead_p | (
                dead_p - set(int(i) for i in p_ids)
            )
            new_dead_w = self._manifest_dead_w | (
                dead_w - set(int(i) for i in w_ids)
            )
            segment = None
            if sealed_pids.size or sealed_wids.size:
                name = f"seg-{self._next_segment:08d}"
                segment = Segment(
                    name,
                    sealed_p.reshape(-1, self.dim), sealed_pids,
                    sealed_w.reshape(-1, self.dim), sealed_wids,
                    value_range=self.value_range,
                    partitions=self.partitions, chunk=self.chunk,
                )
            new_segments = (self._segments + (segment,) if segment is not None
                            else self._segments)
            next_segment = self._next_segment + (1 if segment else 0)

        # Disk commit — outside the store lock (readers/writers proceed),
        # serialized by the maintenance lock.  Nothing in memory has
        # changed yet: a crash here leaves the old manifest live and at
        # worst an orphaned directory, and the store keeps serving its
        # pre-seal state.
        new_dead_p = frozenset(new_dead_p)
        new_dead_w = frozenset(new_dead_w)
        if segment is not None and self.directory is not None:
            segment.save(self.directory / segment.name)
        self._write_current_manifest(
            generation=self._manifest_generation + 1, lsn=barrier,
            segments=new_segments, dead_p=new_dead_p, dead_w=new_dead_w,
            next_segment=next_segment,
        )

        # Memory commit, one atomic flip: segment list, dead sets, and a
        # delta holding only what arrived after the freeze (nothing, when
        # the caller serializes mutations with seals).
        with self._lock:
            self._manifest_generation += 1
            self._manifest_lsn = barrier
            self._segments = new_segments
            self._next_segment = next_segment
            self._manifest_dead_p = new_dead_p
            self._manifest_dead_w = new_dead_w
            self._delta = self._split_delta_after(view)
            self._generation += 1
            self.seals_total += 1
        sp.annotate("segment", segment.name if segment else None)
        sp.annotate("lsn", barrier)
        return segment.name if segment else None

    def _split_delta_after(self, view: dict) -> MutableDelta:
        """New delta = everything the current delta gained after ``view``."""
        fresh = MutableDelta(self.dim)
        current = self._delta.freeze()
        n_p, n_w = view["p_ids"].shape[0], view["w_ids"].shape[0]
        for row, gid in zip(current["p_rows"][n_p:], current["p_ids"][n_p:]):
            fresh.append_product(row, int(gid))
        for row, gid in zip(current["w_rows"][n_w:], current["w_ids"][n_w:]):
            fresh.append_weight(row, int(gid))
        fresh.dead_products = set(
            current["dead_products"] - view["dead_products"]
        )
        fresh.dead_weights = set(
            current["dead_weights"] - view["dead_weights"]
        )
        return fresh

    def checkpoint(self, lsn: int) -> int:
        """Advance the manifest barrier to ``lsn`` (seal if needed).

        The durable engine calls this from ``snapshot()``: after it
        returns, every record at or before ``lsn`` is fully reflected
        by manifest + segments and the WAL may be truncated through it.
        Returns the committed manifest generation.
        """
        self.seal(lsn=lsn, force=True)
        with self._maintenance:
            with self._lock:
                stale = self._manifest_lsn < int(lsn)
                generation = self._manifest_generation
            if stale:
                # Empty delta, stale barrier: rewrite the manifest only.
                self._write_current_manifest(generation=generation + 1,
                                             lsn=int(lsn))
                with self._lock:
                    self._manifest_generation = generation + 1
                    self._manifest_lsn = int(lsn)
        with self._lock:
            return self._manifest_generation

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def _pick_run(self) -> Optional[Tuple[int, int]]:
        """Choose the segment run ``[lo, hi)`` to merge, or None."""
        segments = self._segments
        if len(segments) < 2:
            return None
        rows = [seg.n_products + seg.n_weights for seg in segments]
        total = sum(rows)
        dead = len(self._manifest_dead_p) + len(self._manifest_dead_w)
        if total and dead / total >= self.compact_dead_fraction:
            return (0, len(segments))
        if len(segments) > self.compact_max_segments:
            return (0, len(segments))
        best = None
        lo = None
        for i, n in enumerate(rows + [self.compact_small_rows]):
            if n < self.compact_small_rows:
                if lo is None:
                    lo = i
            else:
                if lo is not None and i - lo >= 2:
                    if best is None or i - lo > best[1] - best[0]:
                        best = (lo, i)
                lo = None
        return best

    def maybe_compact(self, blocking: bool = False) -> bool:
        """Compact if a trigger fires; returns whether a merge happened."""
        with self._lock:
            run = self._pick_run()
        if run is None:
            return False
        return self.compact_run(run, blocking=blocking) is not None

    def compact(self) -> Tuple[np.ndarray, np.ndarray]:
        """Merge **all** segments, dropping manifest-dead rows.

        Physical only: ids are stable in the segmented store, so the
        returned per-id maps are identity for live ids and ``-1`` for
        deleted ones — the same receipt shape the flat engine's
        ``compact`` produces.  Seals first, so delta tombstones are
        dropped too.
        """
        self.seal(force=True)
        with self._lock:
            n_seg = len(self._segments)
        if n_seg >= 1:
            self.compact_run((0, n_seg), blocking=True)
        with self._lock:
            p_map = np.full(self._next_pid, -1, dtype=np.int64)
            w_map = np.full(self._next_wid, -1, dtype=np.int64)
            dead_p = self._dead_union("products")
            dead_w = self._dead_union("weights")
            for seg in self._segments:
                p_map[seg.p_ids] = seg.p_ids
                w_map[seg.w_ids] = seg.w_ids
            view = self._delta.freeze()
            p_map[view["p_ids"]] = view["p_ids"]
            w_map[view["w_ids"]] = view["w_ids"]
            if dead_p:
                p_map[np.fromiter(dead_p, dtype=np.int64)] = -1
            if dead_w:
                w_map[np.fromiter(dead_w, dtype=np.int64)] = -1
        self._notify_change()
        return p_map, w_map

    def compact_run(self, run: Tuple[int, int],
                    blocking: bool = True) -> Optional[str]:
        """Merge the adjacent segment run ``[lo, hi)`` into one segment.

        Drops rows dead **per the manifest dead sets only** — deletes
        after the barrier stay in the delta so WAL replay keeps working
        (see the module docstring).  ``manifest.lsn`` is unchanged.
        Returns the merged segment's name, or None when skipped.
        """
        if not self._maintenance.acquire(blocking=blocking):
            return None
        t0 = monotonic()
        try:
            with span("storage.compact") as sp:
                name = self._compact_locked(run, sp)
        finally:
            self._maintenance.release()
        if name is not None:
            with self._lock:
                self.compactions_total += 1
                self.last_compaction_s = monotonic() - t0
                self.compaction_seconds_total += self.last_compaction_s
        return name

    def _compact_locked(self, run: Tuple[int, int], sp) -> Optional[str]:
        with self._lock:
            lo, hi = run
            victims = self._segments[lo:hi]
            if len(victims) < 1:
                return None
            dead_p, dead_w = self._manifest_dead_p, self._manifest_dead_w
            prefix, suffix = self._segments[:lo], self._segments[hi:]
            next_segment = self._next_segment

        # Merge outside the store lock: victims are immutable and the
        # maintenance lock keeps the segment list stable.
        p_blocks = [s.p_rows for s in victims]
        pid_blocks = [s.p_ids for s in victims]
        w_blocks = [s.w_rows for s in victims]
        wid_blocks = [s.w_ids for s in victims]
        p_rows = np.concatenate(p_blocks) if p_blocks else np.empty((0, self.dim))
        p_ids = np.concatenate(pid_blocks) if pid_blocks else np.empty(0, np.int64)
        w_rows = np.concatenate(w_blocks) if w_blocks else np.empty((0, self.dim))
        w_ids = np.concatenate(wid_blocks) if wid_blocks else np.empty(0, np.int64)
        keep_p = (~np.isin(p_ids, sorted(dead_p)) if p_ids.size
                  else np.zeros(0, dtype=bool))
        keep_w = (~np.isin(w_ids, sorted(dead_w)) if w_ids.size
                  else np.zeros(0, dtype=bool))
        dropped_p = set(int(i) for i in p_ids[~keep_p])
        dropped_w = set(int(i) for i in w_ids[~keep_w])
        name = f"seg-{next_segment:08d}"
        merged = Segment(
            name, p_rows[keep_p], p_ids[keep_p], w_rows[keep_w], w_ids[keep_w],
            value_range=self.value_range, partitions=self.partitions,
            chunk=self.chunk,
        )
        if merged.n_products == 0 and merged.n_weights == 0:
            merged = None

        new_segments = (prefix + ((merged,) if merged is not None else ())
                        + suffix)
        new_dead_p = dead_p - dropped_p
        new_dead_w = dead_w - dropped_w

        # Disk commit first (old manifest stays live until the CURRENT
        # flip lands), with no in-memory change until it succeeds; then
        # the atomic in-memory flip; then retirement.
        new_dead_p = frozenset(new_dead_p)
        new_dead_w = frozenset(new_dead_w)
        if merged is not None and self.directory is not None:
            merged.save(self.directory / merged.name)
        self._write_current_manifest(
            generation=self._manifest_generation + 1,
            segments=new_segments, dead_p=new_dead_p, dead_w=new_dead_w,
            next_segment=next_segment + (1 if merged else 0),
        )

        doomed = []
        with self._lock:
            self._manifest_generation += 1
            self._segments = new_segments
            self._next_segment = next_segment + (1 if merged else 0)
            self._manifest_dead_p = new_dead_p
            self._manifest_dead_w = new_dead_w
            self._generation += 1
            for seg in victims:
                seg.retired = True
                self.segments_retired_total += 1
                if seg.pins == 0:
                    doomed.append(seg)
                else:
                    self._retired.append(seg)
        for seg in doomed:
            if seg.directory is not None:
                shutil.rmtree(seg.directory, ignore_errors=True)
        sp.annotate("merged", name if merged else None)
        sp.annotate("victims", len(victims))
        sp.annotate("dropped_products", len(dropped_p))
        sp.annotate("dropped_weights", len(dropped_w))
        return name if merged is not None else "(empty)"

    # ------------------------------------------------------------------
    # background compactor
    # ------------------------------------------------------------------

    def start_compactor(self, interval_s: float = 0.25) -> None:
        """Run :meth:`maybe_compact` periodically in a daemon thread."""
        if self._compactor is not None:
            return
        self._compactor_stop.clear()

        def loop():
            while not self._compactor_stop.wait(interval_s):
                try:
                    self.maybe_compact(blocking=False)
                except Exception:  # pragma: no cover - keep the loop alive
                    pass

        self._compactor = threading.Thread(
            target=loop, name="segment-compactor", daemon=True
        )
        self._compactor.start()

    def stop_compactor(self) -> None:
        if self._compactor is None:
            return
        self._compactor_stop.set()
        self._compactor.join(timeout=5.0)
        self._compactor = None

    def close(self) -> None:
        self.stop_compactor()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def products(self) -> _StoreView:
        """Dataset-like live view (stable global ids)."""
        return _StoreView(self, "products", self.value_range)

    @property
    def weights(self) -> _StoreView:
        return _StoreView(self, "weights", 1.0)

    @property
    def num_products(self) -> int:
        with self._lock:
            dead = self._dead_union("products")
            seg = sum(s.n_products for s in self._segments)
            seg_dead = sum(
                int(np.isin(s.p_ids,
                            np.fromiter(dead, np.int64, len(dead))).sum())
                for s in self._segments
            ) if dead else 0
            live_delta, _ = self._delta.live_counts()
            return seg - seg_dead + live_delta

    @property
    def num_weights(self) -> int:
        with self._lock:
            dead = self._dead_union("weights")
            seg = sum(s.n_weights for s in self._segments)
            seg_dead = sum(
                int(np.isin(s.w_ids,
                            np.fromiter(dead, np.int64, len(dead))).sum())
                for s in self._segments
            ) if dead else 0
            _, live_delta = self._delta.live_counts()
            return seg - seg_dead + live_delta

    def fragmentation(self) -> float:
        """Fraction of physically stored rows that are dead."""
        with self._lock:
            total = (sum(s.n_products + s.n_weights for s in self._segments)
                     + self._delta.products.count + self._delta.weights.count)
            if total == 0:
                return 0.0
            live = self.num_products + self.num_weights
            return 1.0 - live / total

    def delta_rows(self) -> int:
        """Buffered mutations since the last seal (the auto-seal trigger)."""
        return self._delta.mutation_rows

    def storage_stats(self) -> dict:
        """JSON-ready storage health (``/metrics`` storage section)."""
        with self._lock:
            seg_p = sum(s.n_products for s in self._segments)
            seg_w = sum(s.n_weights for s in self._segments)
            live_p, live_w = self.num_products, self.num_weights
            total = (seg_p + seg_w + self._delta.products.count
                     + self._delta.weights.count)
            per_segment = []
            for i, seg in enumerate(self._segments):
                dp = self._dead_union("products")
                dw = self._dead_union("weights")
                per_segment.append(seg.stats(
                    dead_products=int(np.isin(
                        seg.p_ids, np.fromiter(dp, np.int64, len(dp))
                    ).sum()) if dp else 0,
                    dead_weights=int(np.isin(
                        seg.w_ids, np.fromiter(dw, np.int64, len(dw))
                    ).sum()) if dw else 0,
                ))
            return {
                "backend": self.method,
                "segments": len(self._segments),
                "segment_products": seg_p,
                "segment_weights": seg_w,
                "delta_products": self._delta.products.count,
                "delta_weights": self._delta.weights.count,
                "delta_rows": self._delta.mutation_rows,
                "live_products": live_p,
                "live_weights": live_w,
                "dead_products": len(self._dead_union("products")),
                "dead_weights": len(self._dead_union("weights")),
                "live_fraction": (live_p + live_w) / total if total else 1.0,
                "dead_fraction": self.fragmentation(),
                "generation": self._generation,
                "manifest_generation": self._manifest_generation,
                "manifest_lsn": self._manifest_lsn,
                "applied_lsn": self.applied_lsn,
                "pinned_snapshots": self._active_pins,
                "retired_pending": len(self._retired),
                "seals_total": self.seals_total,
                "compactions_total": self.compactions_total,
                "compaction_seconds_total": self.compaction_seconds_total,
                "last_compaction_s": self.last_compaction_s,
                "segments_retired_total": self.segments_retired_total,
                "orphans_swept_total": self.orphans_swept_total,
                "per_segment": per_segment,
            }

    # ------------------------------------------------------------------
    # bulk state (replication reset / flat-snapshot interop)
    # ------------------------------------------------------------------

    def state_arrays(self) -> dict:
        """Dense global-id arrays of the full state.

        Rows whose ids were compacted away get placeholder values (zeros
        for products, uniform for weights — both pass validation) with
        ``alive=False``; dead-but-present rows keep their real values.
        """
        with self._lock:
            products = np.zeros((self._next_pid, self.dim))
            p_alive = np.zeros(self._next_pid, dtype=bool)
            weights = np.full((self._next_wid, self.dim),
                              1.0 / self.dim if self.dim else 0.0)
            w_alive = np.zeros(self._next_wid, dtype=bool)
            for seg in self._segments:
                products[seg.p_ids] = seg.p_rows
                p_alive[seg.p_ids] = True
                weights[seg.w_ids] = seg.w_rows
                w_alive[seg.w_ids] = True
            view = self._delta.freeze()
            if view["p_ids"].size:
                products[view["p_ids"]] = view["p_rows"]
                p_alive[view["p_ids"]] = True
            if view["w_ids"].size:
                weights[view["w_ids"]] = view["w_rows"]
                w_alive[view["w_ids"]] = True
            dead_p = self._dead_union("products")
            dead_w = self._dead_union("weights")
            if dead_p:
                p_alive[np.fromiter(dead_p, np.int64, len(dead_p))] = False
            if dead_w:
                w_alive[np.fromiter(dead_w, np.int64, len(dead_w))] = False
            return {
                "products": products, "p_alive": p_alive,
                "weights": weights, "w_alive": w_alive,
            }

    def load_state_arrays(self, products, p_alive, weights, w_alive) -> None:
        """Replace the store's state wholesale (replication reset).

        Everything lands in a fresh delta with densely reassigned ids
        (identical to the source's id space); the caller checkpoints
        afterwards to re-commit the manifest.
        """
        products = np.asarray(products, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        with self._lock:
            for seg in self._segments:
                seg.retired = True
                if seg.pins == 0 and seg.directory is not None:
                    shutil.rmtree(seg.directory, ignore_errors=True)
                elif seg.pins > 0:
                    self._retired.append(seg)
            self._segments = ()
            self._delta = MutableDelta(self.dim)
            self._manifest_dead_p = frozenset()
            self._manifest_dead_w = frozenset()
            self._next_pid = 0
            self._next_wid = 0
            for row in products:
                self._delta.append_product(row, self._next_pid)
                self._next_pid += 1
            for row in weights:
                self._delta.append_weight(row, self._next_wid)
                self._next_wid += 1
            for idx in np.flatnonzero(~np.asarray(p_alive, dtype=bool)):
                self._delta.kill_product(int(idx))
            for idx in np.flatnonzero(~np.asarray(w_alive, dtype=bool)):
                self._delta.kill_weight(int(idx))
            self._generation += 1
        self._notify_change()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SegmentStore(dim={self.dim}, segments={len(self._segments)}, "
                f"delta={self._delta.mutation_rows}, "
                f"gen={self._manifest_generation})")
