"""Blocked-kernel execution over a pinned snapshot.

The merge path in :mod:`repro.storage.snapshot` is exact but scalar —
one GInTop-k call per (weight, segment).  When the scheduler coalesces
a batch of queries against one snapshot, it pays off to densify: gather
the snapshot's live rows once, build a
:class:`~repro.vectorized.girkernel.GirKernelRRQ` over them, and run
every query of the batch through the BLAS kernel.  Answers come back in
*local* (dense) indices; this wrapper maps them to the snapshot's
stable global ids.

The remap preserves byte-identical tie-breaking: live rows are gathered
in ascending global-id order, so local order *is* global order and the
kernel's lexicographic ``(rank, index)`` truncation commutes with the
id map.

Build cost is O((|P| + |W|) d) quantization — amortized two ways:

* :meth:`SnapshotKernel.matches`: the scheduler caches the kernel and
  rebuilds only when the store generation moved;
* ``cache_dir``: each generation's densified kernel (plus its id maps)
  is persisted through :mod:`repro.vectorized.kernelstore`, so a
  *process restart* against an unchanged store re-acquires the kernel
  by memory-mapping ``<cache_dir>/gen-<N>`` instead of rebuilding —
  O(mmap) warm start.  Older generations are pruned after each save.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..data.datasets import ProductSet, WeightSet
from ..errors import DataValidationError, IndexCorruptionError
from ..queries.types import RKRResult, RTKResult
from ..stats.counters import OpCounter
from ..vectorized.girkernel import GirKernelRRQ
from ..vectorized.kernelstore import load_kernel_bundle, save_kernel
from .snapshot import StoreSnapshot

PathLike = Union[str, Path]


class SnapshotKernel:
    """A :class:`GirKernelRRQ` over one snapshot's live rows, id-remapped.

    Construct through :meth:`build` (returns None when the snapshot is
    empty on either side — the merge path handles those).
    """

    def __init__(self, kernel: GirKernelRRQ, p_gids, w_gids,
                 generation: int, mmap_loaded: bool = False,
                 variant: Optional[str] = None):
        self.kernel = kernel
        self.p_gids = p_gids
        self.w_gids = w_gids
        #: Store generation the kernel was built from.
        self.generation = int(generation)
        #: True when this kernel came off the mmap cache, False when it
        #: was densified from the snapshot (observability only).
        self.mmap_loaded = bool(mmap_loaded)
        #: Tuned-config short digest when the auto-tuner chose the grid,
        #: None for the default build.  The scheduler keys its cache on
        #: (generation, variant) so a tuner swap forces a rebuild.
        self.variant = variant

    @classmethod
    def build(cls, snapshot: StoreSnapshot, use_domin: bool = True,
              cache_dir: Optional[PathLike] = None, tuning=None,
              ) -> Optional["SnapshotKernel"]:
        """Densify ``snapshot`` into a kernel, via the mmap cache if warm.

        With ``cache_dir`` set, ``<cache_dir>/gen-<generation>`` is
        tried first: a hit memory-maps the previously densified arrays
        (O(mmap), no gather/quantize/validate work); a miss — or a
        corrupt / parameter-mismatched entry — falls through to a fresh
        build whose result is saved back (and older generations pruned).

        ``tuning`` (a :class:`~repro.tuning.tuner.CandidateConfig`)
        overrides the default grid recipe: the kernel is built by
        :func:`~repro.tuning.tuner.build_tuned_kernel` and cached under
        ``gen-<N>-<variant>`` so tuned and default entries never alias.
        """
        variant = None
        if tuning is not None:
            use_domin = bool(tuning.use_domin)
            variant = tuning.short()
        if cache_dir is not None:
            cached = cls._load_cached(snapshot, use_domin, cache_dir,
                                      variant=variant)
            if cached is not None:
                return cached
        p_rows, p_gids = snapshot.live_products()
        w_rows, w_gids = snapshot.live_weights()
        if p_rows.shape[0] == 0 or w_rows.shape[0] == 0:
            return None
        products = ProductSet(p_rows, value_range=snapshot.value_range)
        weights = WeightSet(w_rows)
        if tuning is not None:
            from ..tuning.tuner import build_tuned_kernel

            kernel = build_tuned_kernel(products, weights, tuning)
        else:
            kernel = GirKernelRRQ(
                products, weights,
                partitions=max(1, snapshot.segments[0].partitions
                               if snapshot.segments else 32),
                use_domin=use_domin,
            )
        built = cls(kernel, p_gids, w_gids, snapshot.generation,
                    variant=variant)
        if cache_dir is not None:
            built.persist(cache_dir)
        return built

    # ------------------------------------------------------------------
    # mmap cache
    # ------------------------------------------------------------------

    @staticmethod
    def _gen_dir(cache_dir: PathLike, generation: int,
                 variant: Optional[str] = None) -> Path:
        name = f"gen-{int(generation)}"
        if variant is not None:
            name = f"{name}-{variant}"
        return Path(cache_dir) / name

    @classmethod
    def _load_cached(cls, snapshot: StoreSnapshot, use_domin: bool,
                     cache_dir: PathLike, variant: Optional[str] = None,
                     ) -> Optional["SnapshotKernel"]:
        gen_dir = cls._gen_dir(cache_dir, snapshot.generation, variant)
        try:
            kernel, extras = load_kernel_bundle(gen_dir)
        except (IndexCorruptionError, DataValidationError, OSError):
            return None
        if kernel.core.use_domin != use_domin or \
                "p_gids" not in extras or "w_gids" not in extras:
            return None
        return cls(kernel, np.asarray(extras["p_gids"]),
                   np.asarray(extras["w_gids"]),
                   snapshot.generation, mmap_loaded=True, variant=variant)

    def persist(self, cache_dir: PathLike) -> Path:
        """Save this kernel to ``<cache_dir>/gen-<generation>`` and prune
        entries for other (stale) generations.  Returns the entry path."""
        gen_dir = self._gen_dir(cache_dir, self.generation, self.variant)
        save_kernel(gen_dir, self.kernel, extras={
            "p_gids": np.asarray(self.p_gids, dtype=np.int64),
            "w_gids": np.asarray(self.w_gids, dtype=np.int64),
        })
        root = Path(cache_dir)
        for entry in root.glob("gen-*"):
            if entry != gen_dir and entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)
        return gen_dir

    def matches(self, snapshot: StoreSnapshot) -> bool:
        """True when ``snapshot`` shows the exact state this was built on."""
        return snapshot.generation == self.generation

    # ------------------------------------------------------------------

    def reverse_topk(self, q, k: int,
                     counter: Optional[OpCounter] = None) -> RTKResult:
        res = self.kernel.reverse_topk(q, k, counter)
        remapped = frozenset(int(self.w_gids[j]) for j in res.weights)
        return RTKResult(weights=remapped, k=res.k, counter=res.counter)

    def reverse_kranks(self, q, k: int,
                       counter: Optional[OpCounter] = None) -> RKRResult:
        res = self.kernel.reverse_kranks(q, k, counter)
        entries = tuple(
            (rank, int(self.w_gids[j])) for rank, j in res.entries
        )
        return RKRResult(entries=entries, k=res.k, counter=res.counter)

    # ------------------------------------------------------------------
    # fused multi-query entry points (id-remapped like the scalar ones)
    # ------------------------------------------------------------------

    def reverse_topk_batch(self, queries, k):
        results = self.kernel.reverse_topk_batch(queries, k)
        return [RTKResult(weights=frozenset(int(self.w_gids[j])
                                            for j in res.weights),
                          k=res.k, counter=res.counter)
                for res in results]

    def reverse_kranks_batch(self, queries, k):
        results = self.kernel.reverse_kranks_batch(queries, k)
        return [RKRResult(entries=tuple((rank, int(self.w_gids[j]))
                                        for rank, j in res.entries),
                          k=res.k, counter=res.counter)
                for res in results]

    @property
    def last_stats(self):
        return self.kernel.last_stats
