"""Blocked-kernel execution over a pinned snapshot.

The merge path in :mod:`repro.storage.snapshot` is exact but scalar —
one GInTop-k call per (weight, segment).  When the scheduler coalesces
a batch of queries against one snapshot, it pays off to densify: gather
the snapshot's live rows once, build a
:class:`~repro.vectorized.girkernel.GirKernelRRQ` over them, and run
every query of the batch through the BLAS kernel.  Answers come back in
*local* (dense) indices; this wrapper maps them to the snapshot's
stable global ids.

The remap preserves byte-identical tie-breaking: live rows are gathered
in ascending global-id order, so local order *is* global order and the
kernel's lexicographic ``(rank, index)`` truncation commutes with the
id map.

Build cost is O((|P| + |W|) d) quantization — amortized via
:meth:`SnapshotKernel.matches`: the scheduler caches the kernel and
rebuilds only when the store generation moved.
"""

from __future__ import annotations

from typing import Optional

from ..data.datasets import ProductSet, WeightSet
from ..queries.types import RKRResult, RTKResult
from ..stats.counters import OpCounter
from ..vectorized.girkernel import GirKernelRRQ
from .snapshot import StoreSnapshot


class SnapshotKernel:
    """A :class:`GirKernelRRQ` over one snapshot's live rows, id-remapped.

    Construct through :meth:`build` (returns None when the snapshot is
    empty on either side — the merge path handles those).
    """

    def __init__(self, kernel: GirKernelRRQ, p_gids, w_gids,
                 generation: int):
        self.kernel = kernel
        self.p_gids = p_gids
        self.w_gids = w_gids
        #: Store generation the kernel was built from.
        self.generation = int(generation)

    @classmethod
    def build(cls, snapshot: StoreSnapshot,
              use_domin: bool = True) -> Optional["SnapshotKernel"]:
        p_rows, p_gids = snapshot.live_products()
        w_rows, w_gids = snapshot.live_weights()
        if p_rows.shape[0] == 0 or w_rows.shape[0] == 0:
            return None
        kernel = GirKernelRRQ(
            ProductSet(p_rows, value_range=snapshot.value_range),
            WeightSet(w_rows),
            partitions=max(1, snapshot.segments[0].partitions
                           if snapshot.segments else 32),
            use_domin=use_domin,
        )
        return cls(kernel, p_gids, w_gids, snapshot.generation)

    def matches(self, snapshot: StoreSnapshot) -> bool:
        """True when ``snapshot`` shows the exact state this was built on."""
        return snapshot.generation == self.generation

    # ------------------------------------------------------------------

    def reverse_topk(self, q, k: int,
                     counter: Optional[OpCounter] = None) -> RTKResult:
        res = self.kernel.reverse_topk(q, k, counter)
        remapped = frozenset(int(self.w_gids[j]) for j in res.weights)
        return RTKResult(weights=remapped, k=res.k, counter=res.counter)

    def reverse_kranks(self, q, k: int,
                       counter: Optional[OpCounter] = None) -> RKRResult:
        res = self.kernel.reverse_kranks(q, k, counter)
        entries = tuple(
            (rank, int(self.w_gids[j])) for rank, j in res.entries
        )
        return RKRResult(entries=entries, k=res.k, counter=res.counter)

    @property
    def last_stats(self):
        return self.kernel.last_stats
