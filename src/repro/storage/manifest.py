"""Store manifests — the atomic commit point of the segment store.

A manifest is one JSON document naming the complete store state as of a
WAL barrier: the ordered segment list, the dead sets (every delete with
``lsn <= manifest.lsn`` whose target row still physically exists), the
next free global ids, and the store parameters.  Commit protocol,
reusing the machinery proven by ``repro.durability.snapshot``:

1. write ``MANIFEST-<generation>.json`` (self-checksummed: a CRC32 over
   its canonical body is embedded in the document) via temp + fsync +
   rename;
2. flip the tiny ``CURRENT`` pointer file onto it — **the** commit
   point (fault site ``storage.manifest.current``).

A SIGKILL anywhere in between leaves either the old manifest (the new
file is an orphan, swept on recovery) or the new one — never a torn
state.  Readers resolve ``CURRENT`` exactly once per recovery; a
corrupt pointer, manifest, or checksum raises a structured
:class:`~repro.errors.IndexCorruptionError` instead of loading garbage.

Invariant worth stating twice (the WAL-replay contract): the dead sets
recorded here only ever reflect deletes **at or before** ``lsn``.
Deletes after the barrier live in the delta and are reconstructed by
WAL tail replay — which is exactly why compaction, which runs between
barriers, must drop manifest-dead rows only and leave ``lsn``
untouched.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import List, Optional

from ..data.io import atomic_write_bytes
from ..errors import IndexCorruptionError

#: Format tag in every manifest.
MANIFEST_FORMAT = "rrq-store-manifest-v1"

#: Pointer file naming the live manifest (the commit point).
CURRENT_NAME = "CURRENT"

#: Fault sites (see repro.resilience.faults).
SITE_MANIFEST_WRITE = "storage.manifest.write"
SITE_MANIFEST_CURRENT = "storage.manifest.current"


def manifest_name(generation: int) -> str:
    return f"MANIFEST-{int(generation):08d}.json"


def _canonical(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def _crc32(data: bytes) -> str:
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"


def write_manifest(directory, generation: int, lsn: int, segments: List[str],
                   dead_products, dead_weights, next_pid: int, next_wid: int,
                   params: dict) -> str:
    """Write manifest ``generation`` and flip ``CURRENT`` onto it.

    Returns the manifest file name.  The two writes are individually
    atomic; only the ``CURRENT`` flip commits.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    body = {
        "format": MANIFEST_FORMAT,
        "generation": int(generation),
        "lsn": int(lsn),
        "segments": list(segments),
        "dead_products": sorted(int(i) for i in dead_products),
        "dead_weights": sorted(int(i) for i in dead_weights),
        "next_pid": int(next_pid),
        "next_wid": int(next_wid),
        "params": params,
    }
    body["crc32"] = _crc32(_canonical(body))
    name = manifest_name(generation)
    atomic_write_bytes(path / name,
                       json.dumps(body, indent=2, sort_keys=True).encode(),
                       site=SITE_MANIFEST_WRITE)
    pointer = {"manifest": name, "generation": int(generation)}
    atomic_write_bytes(path / CURRENT_NAME,
                       json.dumps(pointer, sort_keys=True).encode(),
                       site=SITE_MANIFEST_CURRENT)
    return name


def load_manifest_file(path) -> dict:
    """Parse + checksum-verify one manifest file."""
    path = Path(path)
    try:
        body = json.loads(path.read_text())
    except (ValueError, OSError) as exc:
        raise IndexCorruptionError(
            f"store manifest {path.name} is unreadable: {exc}"
        ) from exc
    if body.get("format") != MANIFEST_FORMAT:
        raise IndexCorruptionError(
            f"store manifest {path.name}: unknown format "
            f"{body.get('format')!r}"
        )
    recorded = body.pop("crc32", None)
    if recorded != _crc32(_canonical(body)):
        raise IndexCorruptionError(
            f"store manifest {path.name}: checksum mismatch "
            f"(recorded {recorded!r})"
        )
    body["crc32"] = recorded
    return body


def read_current_manifest(directory) -> Optional[dict]:
    """Resolve ``CURRENT`` → verified manifest body, or None if absent.

    Any inconsistency past the existence check — unparsable pointer,
    missing or corrupt manifest — raises ``IndexCorruptionError``: a
    store that *has* a commit pointer must resolve it completely.
    """
    path = Path(directory)
    current = path / CURRENT_NAME
    if not current.exists():
        return None
    try:
        pointer = json.loads(current.read_text())
        name = pointer["manifest"]
    except (ValueError, KeyError, OSError) as exc:
        raise IndexCorruptionError(
            f"store CURRENT pointer is unreadable: {exc}"
        ) from exc
    target = path / name
    if not target.exists():
        raise IndexCorruptionError(
            f"store CURRENT points at missing manifest {name}"
        )
    return load_manifest_file(target)


def sweep_store_orphans(directory, manifest: Optional[dict]) -> List[str]:
    """Delete segment dirs and manifest files the live manifest disowns.

    Called on **recovery only** (no snapshot can be pinned yet): anything
    a crash stranded — a half-sealed segment directory, a written-but-
    never-committed manifest — is removed so disk usage cannot creep
    across crash loops.  Live retirement goes through the store's
    refcounts instead, so a pinned reader keeps its files until release.
    Returns the removed names.
    """
    import shutil

    path = Path(directory)
    if not path.exists():
        return []
    keep_segments = set(manifest["segments"]) if manifest else set()
    keep_manifest = manifest_name(manifest["generation"]) if manifest else None
    removed: List[str] = []
    for entry in sorted(path.iterdir()):
        if entry.name == CURRENT_NAME:
            continue
        if entry.is_dir() and entry.name.startswith("seg-"):
            if entry.name not in keep_segments:
                shutil.rmtree(entry, ignore_errors=True)
                removed.append(entry.name)
        elif entry.name.startswith("MANIFEST-"):
            if entry.name != keep_manifest:
                entry.unlink(missing_ok=True)
                removed.append(entry.name)
        elif entry.name.endswith(".tmp"):
            entry.unlink(missing_ok=True)
            removed.append(entry.name)
    return removed
