"""Command-line interface for the reverse-rank-query engine.

Installed as ``repro-rrq``.  Subcommands cover the full life cycle:

* ``generate`` — create a synthetic (or real-stand-in) data set on disk;
* ``build`` — pre-process a data set into a persisted Grid-index;
* ``query`` — answer a reverse top-k / reverse k-ranks query;
* ``compare`` — run all applicable algorithms on one query and report
  agreement and timings;
* ``model`` — Theorem-1 partition recommendations for a dimensionality;
* ``info`` — size report of a persisted index, or the durability report
  (snapshot + WAL integrity) of a ``--durable`` directory;
* ``serve`` — run the JSON/HTTP query service over an index or data set,
  or (``--durable``) a write-ahead-logged dynamic engine with mutation
  endpoints and optional hot-standby replication (``--standby-of``);
* ``cluster`` — launch N local durable workers plus the scatter-gather
  coordinator front door (dev/test form of ``repro.cluster``);
* ``bench`` — run the kernel perf-regression harness and write a
  ``BENCH_*.json`` trajectory file (exit 1 if kernel answers diverge
  from the exact oracle); ``--fused`` runs the fused multi-query batch
  and mmap cold-start harness instead;
* ``profile`` — replay a sampled workload through the blocked kernel
  and print the Table-4-style filter-effectiveness breakdown;
* ``wal-dump`` — print every decoded record of a write-ahead log;
* ``storage-dump`` — decode a ``--durable`` directory's MVCC segment
  store: manifest generation/LSN, per-segment row counts and checksum
  status (exit 1 on corruption).

Examples::

    repro-rrq generate --dist UN --size 5000 --dim 6 --out data/
    repro-rrq build data/ --index idx/ --partitions 32
    repro-rrq query idx/ --product 17 --kind rtk -k 10
    repro-rrq compare data/ --product 17 -k 10
    repro-rrq model --dim 20 --epsilon 0.01
    repro-rrq serve idx/ --port 8377 --batch-window-ms 2
    repro-rrq serve idx/ --kernel-cache cache/   # mmap warm starts
    repro-rrq bench --smoke --out BENCH_smoke.json
    repro-rrq bench --fused --smoke              # fused batch + mmap gate
    repro-rrq profile idx/ --queries 100 --kind both -k 10
    repro-rrq serve wal/ --durable --dim 6 --fsync always
    repro-rrq serve wal2/ --durable --standby-of http://127.0.0.1:8377
    repro-rrq wal-dump wal/
    repro-rrq storage-dump wal/

Invalid paths and malformed inputs exit with code 2 and a one-line
``error:`` message on stderr — never a traceback.
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np


def _cmd_generate(args: argparse.Namespace) -> int:
    from .data import io
    from .data.real import color, dianping, house
    from .data.synthetic import generate_products, generate_weights

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    dist = args.dist.upper()
    if dist == "DIANPING":
        data = dianping(num_restaurants=args.size, num_users=args.size,
                        seed=args.seed)
        products, weights = data.restaurants, data.users
    elif dist in ("HOUSE", "COLOR"):
        products = (house if dist == "HOUSE" else color)(
            size=args.size, seed=args.seed
        )
        weights = generate_weights("UN", args.size, products.dim,
                                   seed=args.seed + 1)
    else:
        products = generate_products(dist, args.size, args.dim, seed=args.seed)
        weights = generate_weights(args.weight_dist, args.size, args.dim,
                                   seed=args.seed + 1)
    io.save_products(out / "products.rrq", products)
    io.save_weights(out / "weights.rrq", weights)
    print(f"wrote {products.size} products (d={products.dim}) and "
          f"{weights.size} weights to {out}/")
    return 0


def _load_data(directory: str):
    """The dataset-loading block shared by ``query``/``compare``/``build``.

    Validates the directory layout up front so every subcommand fails with
    a clean ``error:`` line (exit code 2) instead of a traceback.
    """
    from .data import io
    from .errors import DataValidationError

    path = Path(directory)
    if not path.is_dir():
        raise DataValidationError(f"{directory}: not a directory")
    for name in ("products.rrq", "weights.rrq"):
        if not (path / name).is_file():
            raise DataValidationError(
                f"{directory}: not a data directory (missing {name}; "
                "run 'repro-rrq generate' first)"
            )
    return (io.load_products(path / "products.rrq"),
            io.load_weights(path / "weights.rrq"))


def _load_engine(directory: str, method: str = "gir"):
    """Load a persisted index, or build ``method`` over raw data, and
    return ``(engine, products)`` — shared by ``query`` and ``serve``."""
    target = Path(directory)
    if (target / "grid.meta").exists():
        from .core.storage import load_index

        engine = load_index(target)
        return engine, engine.products
    from .queries.engine import make_algorithm

    products, weights = _load_data(directory)
    return make_algorithm(method, products, weights), products


def _cmd_build(args: argparse.Namespace) -> int:
    from .core.gir import GridIndexRRQ
    from .core.storage import save_index

    products, weights = _load_data(args.data)
    start = time.perf_counter()
    gir = GridIndexRRQ(products, weights, partitions=args.partitions)
    built = time.perf_counter() - start
    manifest = save_index(args.index, gir)
    total = sum(manifest.values())
    print(f"built n={args.partitions} Grid-index over "
          f"{products.size}x{weights.size} in {built*1000:.1f} ms; "
          f"persisted {total:,} bytes to {args.index}/")
    return 0


def _resolve_query(args, products) -> np.ndarray:
    if args.product is not None:
        if not 0 <= args.product < products.size:
            print(f"error: --product must be in [0, {products.size})",
                  file=sys.stderr)
            raise SystemExit(2)
        return products[args.product]
    if args.vector:
        return np.array([float(x) for x in args.vector.split(",")])
    print("error: provide --product INDEX or --vector v1,v2,...",
          file=sys.stderr)
    raise SystemExit(2)


def _cmd_query(args: argparse.Namespace) -> int:
    engine, products = _load_engine(args.index, args.method)
    q = _resolve_query(args, products)
    start = time.perf_counter()
    if args.kind == "rtk":
        result = engine.reverse_topk(q, args.k)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"reverse top-{args.k}: {result.size} matching preferences "
              f"({elapsed:.1f} ms)")
        shown = result.sorted_indices()[:args.limit]
        print(" ".join(map(str, shown)) + (" ..." if result.size > args.limit else ""))
    else:
        result = engine.reverse_kranks(q, args.k)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"reverse {args.k}-ranks ({elapsed:.1f} ms):")
        for rank, idx in result.entries:
            print(f"  preference {idx}: rank {rank}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .queries.engine import available_methods, make_algorithm

    products, weights = _load_data(args.data)
    q = _resolve_query(args, products)
    reference = None
    print(f"{'method':14s} {'time':>10s}   answer")
    for method in available_methods():
        alg = make_algorithm(method, products, weights)
        supported = (alg.supports_rtk if args.kind == "rtk"
                     else alg.supports_rkr)
        if not supported:
            continue
        start = time.perf_counter()
        if args.kind == "rtk":
            answer = alg.reverse_topk(q, args.k).weights
        else:
            answer = alg.reverse_kranks(q, args.k).entries
        elapsed = (time.perf_counter() - start) * 1000
        if reference is None:
            reference = answer
        status = "OK" if answer == reference else "MISMATCH"
        size = len(answer)
        print(f"{method:14s} {elapsed:8.1f}ms   size={size}  {status}")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    from .core import model

    n = model.recommend_partitions(args.dim, args.epsilon)
    bound = model.required_partitions(args.dim, args.epsilon)
    print(f"d={args.dim}, target filtering {1 - args.epsilon:.2%}:")
    print(f"  Theorem 1 bound : n > {bound:.2f}")
    print(f"  recommended n   : {n} (next power of two)")
    print(f"  grid memory     : {model.grid_memory_bytes(n)/1024:.1f} KiB")
    print(f"  model guarantee : F > {model.worst_case_filtering(args.dim, n):.4%}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Offline auto-tuning: enumerate, score, verify, optionally persist.

    Exit 0 on a verified run, 1 when the winner failed the byte-identity
    check against the naive oracle (nothing is persisted in that case).
    """
    import json as _json

    from .core.grid import DEFAULT_PARTITIONS
    from .tuning import AutoTuner, CandidateConfig, format_tune_report

    products, weights = _load_data(args.data)
    current = CandidateConfig(
        partitions=(args.partitions if args.partitions
                    else DEFAULT_PARTITIONS))
    tuner = AutoTuner(products, weights, k=args.k,
                      probe_queries=args.queries, seed=args.seed,
                      current=current)
    report = tuner.tune()
    if args.json:
        print(_json.dumps(report, sort_keys=True, indent=2,
                          default=float))
    else:
        print(format_tune_report(report))
    if not report["verified"]:
        print("error: winner failed byte-identity verification; "
              "refusing to persist", file=sys.stderr)
        return 1
    if args.kernel_cache:
        from .vectorized.kernelstore import (config_digest_of,
                                             config_store_dir,
                                             save_kernel,
                                             write_tuned_pointer)

        winner = CandidateConfig.from_dict(report["winner"]["config"])
        kernel = tuner.build_winner(report)
        digest = config_digest_of(kernel)
        save_kernel(config_store_dir(args.kernel_cache, digest), kernel)
        write_tuned_pointer(args.kernel_cache, digest, winner.as_dict())
        if not args.json:
            print(f"persisted winner to {args.kernel_cache}/"
                  f"cfg-{digest[:12]} (tuned.json flipped; "
                  f"serve --kernel-cache starts tuned)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceConfig, ServiceLimits
    from .service.server import QueryService, make_server

    if getattr(args, "chaos_latency_ms", None):
        # Deterministic straggler mode for hedging benchmarks/tests: every
        # query through this worker pays a fixed extra latency.
        from .resilience.faults import FaultInjector, FaultPlan, set_injector

        plan = FaultPlan().add("service.query", "latency", times=None,
                               latency_s=args.chaos_latency_ms / 1000.0)
        set_injector(FaultInjector(plan))
        print(f"chaos: +{args.chaos_latency_ms:g}ms latency on every query",
              flush=True)
    config = ServiceConfig(
        batch_window_s=args.batch_window_ms / 1000.0,
        cache_capacity=args.cache_size,
        limits=ServiceLimits(
            max_queue_depth=args.max_queue,
            default_deadline_s=(args.deadline_ms / 1000.0
                                if args.deadline_ms > 0 else None),
            max_batch=args.max_batch,
        ),
        fallback=not args.no_fallback,
        use_kernel=not args.no_kernel,
        slow_query_threshold_s=(args.slow_ms / 1000.0
                                if args.slow_ms > 0 else None),
        trace_export_path=args.trace_export,
        kernel_cache_dir=args.kernel_cache,
        auto_tune=args.auto_tune,
        tune_interval_s=(args.tune_interval if args.auto_tune else 0.0),
    )
    if args.durable:
        from .durability import DurableDynamicRRQ
        from .service.server import DurableQueryService

        backend = args.storage
        if backend == "auto" and not (Path(args.index) / "engine.json").exists():
            # Fresh serve directories get the MVCC segment store; existing
            # directories keep whatever backend they were created with
            # (DurableDynamicRRQ resolves the persisted/detected backend).
            backend = "segmented"
        engine = DurableDynamicRRQ(
            args.index, dim=args.dim, value_range=args.value_range,
            fsync=args.fsync, snapshot_every=args.snapshot_every,
            backend=backend,
        )
        role = "standby" if args.standby_of else "primary"
        service = DurableQueryService(engine, config=config, role=role,
                                      primary_url=args.standby_of)
        server = make_server(service, host=args.host, port=args.port,
                             verbose=args.verbose)
        info = service.info()
        print(f"serving durable {info['method']} ({role}, "
              f"storage={engine.backend}, fsync={info['fsync']}, "
              f"lsn={info['last_lsn']}) over "
              f"{info['products']}x{info['weights']} (d={info['dim']}) "
              f"at {server.url}", flush=True)
        print("endpoints: POST /query /insert /delete /modify /compact "
              "/snapshot /promote /tuner, GET /healthz /metrics /info "
              "/replicate /traces /slowlog /tuner", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            server.server_close()
            service.close()
        return 0
    if (Path(args.index) / "grid.meta").exists() or \
            (Path(args.index) / "MANIFEST.json").exists():
        # Index directories go through the resilient path: checksum
        # verification, in-place recovery, degraded naive serving.
        service = QueryService.from_index_dir(
            args.index, config=config, recover=not args.no_recover,
        )
    else:
        engine, _ = _load_engine(args.index, args.method)
        service = QueryService(engine, config=config)
    server = make_server(service, host=args.host, port=args.port,
                         verbose=args.verbose)
    info = service.info()
    print(f"serving {info['method']} over {info['products']}x"
          f"{info['weights']} (d={info['dim']}) at {server.url}")
    if service.degraded_reason:
        print(f"WARNING: degraded mode — {service.degraded_reason}",
              file=sys.stderr)
    print("endpoints: POST /query /tuner, GET /healthz /metrics /info "
          "/traces /slowlog /tuner")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        service.close()
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Launch N local durable workers + the scatter-gather coordinator.

    A dev/test convenience: production deployments start workers
    individually (``serve --durable``) and point a coordinator at their
    URLs via a topology manifest; this subcommand does all of it in one
    process tree over a generated or on-disk data set.
    """
    from .cluster import LocalCluster

    # SIGTERM (``kill``, service managers) must tear down the whole
    # worker process tree exactly like Ctrl-C, not orphan it.
    def _sigterm_as_interrupt(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm_as_interrupt)

    products, weights = _load_data(args.data)
    cluster = LocalCluster(
        products, weights,
        num_workers=args.workers,
        partitioner=args.partitioner,
        base_dir=args.dirs,
        fsync=args.fsync,
        host=args.host,
        coordinator_port=args.port,
        shard_timeout_s=args.shard_timeout_ms / 1000.0,
        fallback=not args.no_fallback,
        replicas=args.replicas,
        supervise=args.supervise,
        hedge=args.hedge,
        tune_every=args.auto_tune_every,
    )
    try:
        print(f"cluster: {args.workers} workers ({args.partitioner} "
              f"partitioner, {args.replicas} standby(s)/shard"
              f"{', supervised' if args.supervise else ''}"
              f"{', hedged reads' if args.hedge else ''}) over "
              f"{products.size}x{weights.size} "
              f"(d={products.dim})", flush=True)
        for shard_id, worker in enumerate(cluster.workers):
            count = cluster.topology.shard(shard_id).weight_count
            print(f"  shard {shard_id}: {worker.url}  "
                  f"({count} weights, pid {worker.proc.pid})", flush=True)
            for standby in cluster.standbys[shard_id]:
                print(f"    standby: {standby.url}  "
                      f"(pid {standby.proc.pid})", flush=True)
        print(f"coordinator at {cluster.url}", flush=True)
        print("endpoints: POST /query /insert /delete /rebuild /snapshot "
              "/promote, GET /healthz /metrics /info /traces /slowlog "
              "/cluster/healthz /cluster/topology", flush=True)
        while True:
            time.sleep(1.0)
            if args.supervise:
                continue  # the supervisor restarts dead workers itself
            dead = [i for i, w in enumerate(cluster.workers) if not w.alive]
            if dead and not getattr(args, "_warned", None):
                args._warned = True
                print(f"WARNING: worker shard(s) {dead} exited; queries "
                      "continue degraded", file=sys.stderr)
    except KeyboardInterrupt:
        print("\nshutting down cluster")
    finally:
        cluster.close()
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .core.storage import index_size_report, verify_index
    from .errors import DataValidationError

    path = Path(args.index)
    if not path.is_dir():
        raise DataValidationError(f"{args.index}: not a directory")
    if any((path / name).exists()
           for name in ("wal.log", "CURRENT", "engine.json")):
        return _durability_info(path)
    report = index_size_report(args.index)
    for name, size in report.items():
        if name == "approx_over_raw":
            print(f"{name:18s} {size:.3%}")
        else:
            print(f"{name:18s} {size:>12,} bytes")
    _kernel_store_info(path)
    integrity = verify_index(args.index)
    if integrity["ok"]:
        print("integrity          ok")
    else:
        damaged = ", ".join(sorted(integrity["damaged"])) or "manifest"
        hint = (" (recoverable: rebuild from raw data)"
                if integrity["recoverable"] else "")
        print(f"integrity          DAMAGED: {damaged}{hint}")
        return 1
    return 0


def _kernel_store_info(path: Path) -> None:
    """Report packed kernel stores (mmap warm start) under ``path``.

    A store lives either directly in the directory or in the cache
    layout ``serve --kernel-cache`` maintains (``static``/``gen-<N>``/
    tuner ``cfg-<digest>`` subdirectories); each one is a single mmap
    away from a warm kernel.  A ``tuned.json`` pointer means the
    auto-tuner pinned a config — the serve path loads that store first.
    """
    from .vectorized.kernelstore import kernel_store_size, read_tuned_pointer

    candidates = [path] + sorted(
        child for child in path.iterdir()
        if child.is_dir() and (child.name == "static"
                               or child.name.startswith("gen-")
                               or child.name.startswith("cfg-")))
    stores = [c for c in candidates
              if (c / "kernel.bin").exists() and (c / "kernel.meta").exists()]
    if not stores:
        return
    total = sum(kernel_store_size(c) for c in stores)
    where = ", ".join("." if c == path else c.name for c in stores)
    print(f"{'kernel store':18s} {total:>12,} bytes "
          f"({len(stores)} store(s): {where})")
    print(f"{'warm start':18s} mmap (zero-copy, O(1) load)")
    pointer = read_tuned_pointer(path)
    if pointer is not None:
        config = pointer.get("config") or {}
        label = (f"n{config.get('partitions')}-{config.get('boundaries')}"
                 if config else pointer["digest"][:12])
        print(f"{'tuned config':18s} {label} "
              f"(cfg-{pointer['digest'][:12]})")


def _durability_info(path: Path) -> int:
    """The ``info`` body for a durability (WAL + snapshot) directory."""
    import json as _json

    from .durability import durability_report

    params_file = path / "engine.json"
    if params_file.exists():
        try:
            params = _json.loads(params_file.read_text())
            print(f"{'engine':18s} durable-dynamic (dim={params.get('dim')}, "
                  f"value_range={params.get('value_range')})")
        except ValueError:
            print(f"{'engine':18s} durable-dynamic (engine.json unreadable)")
    report = durability_report(path)
    snap = report["snapshot"] if "snapshot" in report else None
    if snap is not None:
        print(f"{'snapshot':18s} lsn={snap['lsn']}  {snap['status']}")
    wal = report["wal"]
    print(f"{'wal':18s} {wal['records']} records, "
          f"lsn {wal['first_lsn']}..{wal['last_lsn']}, "
          f"{wal['torn_bytes']} torn bytes  [{wal['status']}]")
    if wal["status"] == "corrupt":
        print(f"{'wal error':18s} {wal['error']} (offset {wal['offset']})")
    storage = report.get("storage")
    if storage is not None:
        if storage["status"] == "ok":
            print(f"{'storage':18s} segmented: {storage['segments']} "
                  f"segment(s), generation={storage['generation']}, "
                  f"lsn={storage['lsn']}, dead={storage['dead_products']}p/"
                  f"{storage['dead_weights']}w  [ok]")
        else:
            print(f"{'storage':18s} segmented: {storage['status']}")
    print(f"{'integrity':18s} {'ok' if report['ok'] else 'DAMAGED'}")
    return 0 if report["ok"] else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the kernel perf harness; write ``BENCH_*.json``.

    Exit 2 on bad paths (missing config file, unwritable output
    directory — the CLI convention), exit 1 when a kernel answer
    diverges from the exact oracle.
    """
    from .bench.harness import (
        DEFAULT_SEED,
        FUSED_SMOKE_CONFIGS,
        SMOKE_CONFIGS,
        load_configs,
        run_harness,
    )

    configs = None
    if args.config is not None:
        configs = load_configs(args.config)
    elif args.smoke:
        configs = list(FUSED_SMOKE_CONFIGS if args.fused
                       else SMOKE_CONFIGS)
    if args.fused:
        return _bench_fused(args, configs)
    out = args.out or ("BENCH_smoke.json" if args.smoke
                       else "BENCH_kernel.json")
    report = run_harness(
        configs=configs,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        shards=args.shards,
        verify=not args.no_verify,
        out=out,
        progress=lambda message: print(message, flush=True),
    )
    for record in report["configs"]:
        batch = record["batch"]
        print(f"{record['name']}: "
              f"rtk x{record['rtk']['kernel_speedup']:.1f} "
              f"rkr x{record['rkr']['kernel_speedup']:.1f} "
              f"filter_rate={record['kernel_stats']['filter_rate']:.3f} "
              f"batch p50={batch['per_query_p50_s']*1000:.1f}ms "
              f"p95={batch['per_query_p95_s']*1000:.1f}ms "
              f"verified={record['verified']}")
    print(f"wrote {out} (ok={report['ok']})")
    if not report["ok"]:
        print("error: kernel answers diverged from the oracle",
              file=sys.stderr)
        return 1
    return 0


def _bench_fused(args: argparse.Namespace, configs) -> int:
    """``bench --fused``: the fused-batch + mmap cold-start harness."""
    from .bench.harness import DEFAULT_SEED, run_fused_harness

    out = args.out or ("BENCH_fused_smoke.json" if args.smoke
                       else "BENCH_fused.json")
    report = run_fused_harness(
        configs=configs,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        verify=not args.no_verify,
        out=out,
        progress=lambda message: print(message, flush=True),
    )
    for record in report["configs"]:
        cold = record["cold_start"]
        print(f"{record['name']}: "
              f"rtk wall x{record['fused_rtk']['wall_speedup']:.2f} "
              f"filter x{record['fused_rtk']['filter_speedup']:.2f}  "
              f"rkr wall x{record['fused_rkr']['wall_speedup']:.2f} "
              f"filter x{record['fused_rkr']['filter_speedup']:.2f}  "
              f"cold-start x{cold['speedup']:.1f} "
              f"(rebuild {cold['rebuild_s']*1000:.1f}ms, "
              f"mmap {cold['mmap_load_s']*1000:.2f}ms, "
              f"store {cold['store_bytes']:,}B) "
              f"verified={record['verified']}")
    print(f"wrote {out} (ok={report['ok']})")
    if not report["ok"]:
        print("error: fused answers diverged from the sequential kernel "
              "or the oracle", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Replay a workload through the kernel; print the Table-4 breakdown.

    Loads a persisted Grid-index (wrapping its grid, no re-quantization)
    or raw data (quantizing fresh), samples query points from the
    product set under a pinned seed, and reports how the grid bounds
    classified every ``(p, w)`` pair — the live analogue of the paper's
    Table 4 filter-effectiveness measurements.
    """
    import json as _json

    from .obs.profile import format_report, profile_workload, sample_queries
    from .vectorized.girkernel import GirKernelRRQ

    target = Path(args.index)
    if (target / "grid.meta").exists():
        from .core.storage import load_index

        gir = load_index(target)
        kernel = GirKernelRRQ.from_gir(gir)
        products = gir.products
    else:
        products, weights = _load_data(args.index)
        kernel = GirKernelRRQ(products, weights,
                              partitions=args.partitions)
    kinds = ("rtk", "rkr") if args.kind == "both" else (args.kind,)
    queries = sample_queries(products, args.queries, seed=args.seed)
    report = profile_workload(kernel, queries, k=args.k, kinds=kinds)
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    return 0


def _cmd_wal_dump(args: argparse.Namespace) -> int:
    """Decode and print a WAL; exit 1 on mid-log corruption."""
    from .durability.wal import read_wal, wal_path
    from .errors import DataValidationError, WalCorruptionError

    path = Path(args.directory)
    wal_file = path if path.is_file() else wal_path(path)
    if not wal_file.exists():
        raise DataValidationError(f"{wal_file}: no write-ahead log found")
    try:
        records, valid_bytes, torn = read_wal(wal_file)
    except WalCorruptionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{'LSN':>10s}  {'OP':<16s}  DIGEST")
    for record in records:
        print(f"{record.lsn:>10d}  {record.op:<16s}  {record.digest()}")
    summary = f"{len(records)} records, {valid_bytes:,} valid bytes"
    if torn:
        summary += f", {torn} torn trailing bytes (dropped)"
    print(summary)
    return 0


def _cmd_storage_dump(args: argparse.Namespace) -> int:
    """Decode a segment store's manifest + per-segment checksum status.

    Exit 1 on any corruption — a damaged segment, an unreadable or
    checksum-failed manifest — so scripts can gate on the result the
    same way they do with ``wal-dump``.
    """
    import json as _json

    from .core.storage import verify_manifest_dir
    from .durability import SEGMENTS_DIRNAME
    from .errors import DataValidationError, IndexCorruptionError
    from .storage.manifest import CURRENT_NAME, read_current_manifest
    from .storage.segment import META_NAME

    path = Path(args.directory)
    if (path / SEGMENTS_DIRNAME / CURRENT_NAME).exists():
        path = path / SEGMENTS_DIRNAME
    try:
        manifest = read_current_manifest(path)
    except IndexCorruptionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if manifest is None:
        raise DataValidationError(f"{path}: no segment store found")
    params = manifest.get("params", {})
    print(f"{'manifest':12s} generation={manifest['generation']}  "
          f"lsn={manifest['lsn']}  crc32={manifest['crc32']}")
    print(f"{'params':12s} dim={params.get('dim')}  "
          f"value_range={params.get('value_range')}  "
          f"partitions={params.get('partitions')}")
    print(f"{'ids':12s} next_pid={manifest['next_pid']}  "
          f"next_wid={manifest['next_wid']}")
    print(f"{'dead':12s} products={len(manifest['dead_products'])}  "
          f"weights={len(manifest['dead_weights'])}")
    corrupt = []
    print(f"{'SEGMENT':<14s}  {'PRODUCTS':>8s}  {'WEIGHTS':>8s}  STATUS")
    for name in manifest["segments"]:
        seg_dir = path / name
        if not seg_dir.is_dir():
            corrupt.append(name)
            print(f"{name:<14s}  {'-':>8s}  {'-':>8s}  MISSING")
            continue
        report = verify_manifest_dir(seg_dir)
        if not report["ok"]:
            corrupt.append(name)
            damaged = ", ".join(sorted(report["damaged"])) or "manifest"
            print(f"{name:<14s}  {'-':>8s}  {'-':>8s}  DAMAGED: {damaged}")
            continue
        meta = _json.loads((seg_dir / META_NAME).read_text())
        print(f"{name:<14s}  {meta['n_products']:>8d}  "
              f"{meta['n_weights']:>8d}  ok")
    status = f"CORRUPT ({', '.join(corrupt)})" if corrupt else "ok"
    print(f"{'integrity':12s} {status}")
    return 1 if corrupt else 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-rrq`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-rrq",
        description="Reverse rank queries with the Grid-index (EDBT 2017 "
                    "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a data set")
    gen.add_argument("--dist", default="UN",
                     help="UN|CL|AC|NORMAL|EXP|HOUSE|COLOR|DIANPING")
    gen.add_argument("--weight-dist", default="UN", help="UN|CL|NORMAL|EXP")
    gen.add_argument("--size", type=int, default=2000)
    gen.add_argument("--dim", type=int, default=6)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_cmd_generate)

    build = sub.add_parser("build", help="build + persist a Grid-index")
    build.add_argument("data", help="directory from 'generate'")
    build.add_argument("--index", required=True)
    build.add_argument("--partitions", type=int, default=32)
    build.set_defaults(func=_cmd_build)

    query = sub.add_parser("query", help="answer one query")
    query.add_argument("index", help="index directory (or raw data directory)")
    query.add_argument("--method", default="gir",
                       help="algorithm when querying raw data")
    query.add_argument("--kind", choices=("rtk", "rkr"), default="rtk")
    query.add_argument("-k", type=int, default=10)
    query.add_argument("--product", type=int)
    query.add_argument("--vector")
    query.add_argument("--limit", type=int, default=20)
    query.set_defaults(func=_cmd_query)

    cmp_ = sub.add_parser("compare", help="run all algorithms on one query")
    cmp_.add_argument("data")
    cmp_.add_argument("--kind", choices=("rtk", "rkr"), default="rtk")
    cmp_.add_argument("-k", type=int, default=10)
    cmp_.add_argument("--product", type=int)
    cmp_.add_argument("--vector")
    cmp_.set_defaults(func=_cmd_compare)

    model_p = sub.add_parser("model", help="Theorem-1 recommendation")
    model_p.add_argument("--dim", type=int, required=True)
    model_p.add_argument("--epsilon", type=float, default=0.01)
    model_p.set_defaults(func=_cmd_model)

    tune = sub.add_parser(
        "tune",
        help="score grid configs on a measured probe; print the winner",
    )
    tune.add_argument("data", help="data directory from 'generate'")
    tune.add_argument("-k", type=int, default=10)
    tune.add_argument("--queries", type=int, default=16,
                      help="probe queries sampled from the product set")
    tune.add_argument("--seed", type=int, default=7,
                      help="probe-sampling seed")
    tune.add_argument("--partitions", type=int, default=None,
                      help="current grid resolution (the baseline; "
                           "default: the library default)")
    tune.add_argument("--json", action="store_true",
                      help="print the full report as JSON")
    tune.add_argument("--kernel-cache", default=None, metavar="DIR",
                      help="persist the verified winner as a per-config "
                           "kernel store and flip the tuned.json pointer "
                           "(serve --kernel-cache DIR starts tuned)")
    tune.set_defaults(func=_cmd_tune)

    info = sub.add_parser("info", help="index size / durability report")
    info.add_argument("index")
    info.set_defaults(func=_cmd_info)

    bench = sub.add_parser(
        "bench", help="kernel perf harness: write a BENCH_*.json trajectory"
    )
    bench.add_argument("--smoke", action="store_true",
                       help="tiny pinned-seed configs (CI smoke)")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default BENCH_kernel.json, "
                            "or BENCH_smoke.json with --smoke)")
    bench.add_argument("--config", default=None, metavar="FILE",
                       help="JSON file with a list of config objects")
    bench.add_argument("--seed", type=int, default=None,
                       help="base RNG seed (default: pinned harness seed)")
    bench.add_argument("--shards", type=int, default=None,
                       help="sharded-engine worker count (0 disables)")
    bench.add_argument("--no-verify", action="store_true",
                       help="skip the exact-oracle verification pass")
    bench.add_argument("--fused", action="store_true",
                       help="run the fused multi-query batch + mmap "
                            "cold-start harness instead (writes "
                            "BENCH_fused*.json)")
    bench.set_defaults(func=_cmd_bench)

    profile = sub.add_parser(
        "profile",
        help="replay a workload; print the Table-4 filter breakdown",
    )
    profile.add_argument("index",
                         help="index directory (or raw data directory)")
    profile.add_argument("--queries", type=int, default=50,
                         help="query points sampled from the product set")
    profile.add_argument("--kind", choices=("rtk", "rkr", "both"),
                         default="rtk")
    profile.add_argument("-k", type=int, default=10)
    profile.add_argument("--seed", type=int, default=7,
                         help="query-sampling seed")
    profile.add_argument("--partitions", type=int, default=32,
                         help="grid resolution when profiling raw data")
    profile.add_argument("--json", action="store_true",
                         help="print the full report as JSON")
    profile.set_defaults(func=_cmd_profile)

    wal_dump = sub.add_parser(
        "wal-dump", help="decode a write-ahead log (exit 1 on corruption)"
    )
    wal_dump.add_argument("directory",
                          help="durability directory (or a wal.log file)")
    wal_dump.set_defaults(func=_cmd_wal_dump)

    storage_dump = sub.add_parser(
        "storage-dump",
        help="decode a segment store manifest (exit 1 on corruption)",
    )
    storage_dump.add_argument(
        "directory",
        help="durability directory (or its segments/ subdirectory)")
    storage_dump.set_defaults(func=_cmd_storage_dump)

    serve = sub.add_parser("serve", help="run the JSON/HTTP query service")
    serve.add_argument("index", help="index directory (or raw data directory)")
    serve.add_argument("--method", default="gir",
                       help="algorithm when serving raw data")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377)
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="micro-batch coalescing window (0 disables)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="largest coalesced batch")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="LRU result-cache capacity (0 disables)")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="admission queue depth before 429s")
    serve.add_argument("--deadline-ms", type=float, default=10_000.0,
                       help="default per-request deadline (0 disables)")
    serve.add_argument("--no-fallback", action="store_true",
                       help="disable degraded-mode fallback to the exact "
                            "naive scan on engine failure")
    serve.add_argument("--no-kernel", action="store_true",
                       help="answer coalesced batches with the dense rank "
                            "sweep instead of the blocked GIR kernel")
    serve.add_argument("--no-recover", action="store_true",
                       help="fail instead of rebuilding damaged derived "
                            "index artifacts at startup")
    serve.add_argument("--slow-ms", type=float, default=250.0,
                       help="slow-query log threshold in ms (0 disables)")
    serve.add_argument("--trace-export", default=None, metavar="FILE",
                       help="append finished traces to this JSON-lines file")
    serve.add_argument("--kernel-cache", default=None, metavar="DIR",
                       help="persist built kernels as packed mmap stores "
                            "under this directory for O(1) warm starts")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request")
    serve.add_argument("--durable", action="store_true",
                       help="treat the directory as a WAL+snapshot "
                            "durability directory and serve the dynamic "
                            "engine with mutation endpoints")
    serve.add_argument("--dim", type=int, default=None,
                       help="dimensionality when creating a fresh "
                            "--durable directory")
    serve.add_argument("--value-range", type=float, default=1.0,
                       help="attribute range of a fresh --durable engine")
    serve.add_argument("--fsync", choices=("always", "interval", "never"),
                       default="always",
                       help="WAL fsync policy (--durable only)")
    serve.add_argument("--snapshot-every", type=int, default=0,
                       help="auto-snapshot after this many mutations "
                            "(0 disables; --durable only)")
    serve.add_argument("--storage", choices=("auto", "flat", "segmented"),
                       default="auto",
                       help="durable index backend: 'segmented' is the "
                            "MVCC segment store, 'flat' the legacy "
                            "single-index snapshot engine; 'auto' keeps "
                            "an existing directory's backend and gives "
                            "fresh directories the segment store "
                            "(--durable only)")
    serve.add_argument("--chaos-latency-ms", type=float, default=0.0,
                       metavar="MS",
                       help="inject a fixed extra latency into every query "
                            "(deterministic straggler for hedging "
                            "benchmarks; 0 disables)")
    serve.add_argument("--standby-of", default=None, metavar="URL",
                       help="run as a hot standby tailing this primary's "
                            "/replicate feed (reads OK, writes 409)")
    serve.add_argument("--auto-tune", action="store_true",
                       help="run the workload-adaptive auto-tuner in the "
                            "background: when live filtering is poor, "
                            "rebuild under a better grid config and "
                            "hot-swap it (POST /tuner forces a pass)")
    serve.add_argument("--tune-interval", type=float, default=60.0,
                       metavar="S",
                       help="seconds between auto-tune passes "
                            "(--auto-tune only)")
    serve.set_defaults(func=_cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="launch N local durable workers + a scatter-gather coordinator",
    )
    cluster.add_argument("data", help="data directory from 'generate'")
    cluster.add_argument("--workers", type=int, default=3,
                         help="worker process count (one shard each)")
    cluster.add_argument("--partitioner", choices=("range", "mod"),
                         default="range",
                         help="weight partition function (see "
                              "docs/operations.md)")
    cluster.add_argument("--dirs", default=None, metavar="DIR",
                         help="parent directory for per-worker durability "
                              "dirs (default: a fresh temp dir)")
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=8378,
                         help="coordinator port (workers use ephemeral "
                              "ports)")
    cluster.add_argument("--fsync", choices=("always", "interval", "never"),
                         default="never",
                         help="worker WAL fsync policy (dev default: never)")
    cluster.add_argument("--shard-timeout-ms", type=float, default=5000.0,
                         help="per-shard sub-request timeout")
    cluster.add_argument("--no-fallback", action="store_true",
                         help="omit a failed shard's slice (flagged) "
                              "instead of answering it from a local "
                              "exact fallback")
    cluster.add_argument("--replicas", type=int, default=0,
                         help="hot standbys per shard, each tailing its "
                              "primary's WAL feed (0 disables)")
    cluster.add_argument("--supervise", action="store_true",
                         help="run the self-healing supervisor: detect "
                              "dead primaries, promote the freshest "
                              "standby, flip routing, restart the corpse "
                              "as a standby (needs --replicas >= 1)")
    cluster.add_argument("--hedge", action="store_true",
                         help="hedged reads: probe a standby when the "
                              "primary is slower than the cluster p95")
    cluster.add_argument("--auto-tune-every", type=int, default=0,
                         metavar="N",
                         help="per-shard auto-tuning sweep every N "
                              "supervisor ticks (0 disables; needs "
                              "--supervise); grids diverge per local "
                              "weight partition")
    cluster.set_defaults(func=_cmd_cluster)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Library errors (bad paths, malformed data, invalid parameters) are
    reported as one ``error:`` line on stderr with exit code 2 — the
    contract the tests pin down — rather than an uncaught traceback.
    """
    from .errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
