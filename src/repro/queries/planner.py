"""Heuristic query planner: pick the algorithm from the workload shape.

EXPERIMENTS.md distills where each method wins in this implementation:

* very low dimensions (d <= 3) — the R-tree methods prune geometrically
  and win outright (paper Figure 10, reproduced);
* everywhere else — the Grid-index scan dominates on work, and SIM's
  single-matvec scan is the wall-clock safe bet for tiny workloads where
  index build time would never amortize;
* sparse preferences — the support-restricted GIR variant.

:func:`plan` encodes those rules and returns a method name accepted by
:class:`repro.queries.engine.RRQEngine`; passing ``method="auto"`` to the
engine applies it.  The planner is intentionally simple and transparent —
the returned :class:`Plan` carries its reasoning, and every rule is
unit-tested so changes to the heuristics are deliberate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..data.datasets import ProductSet, WeightSet, check_compatible

#: Below this dimensionality the tree methods win (paper Figure 10).
TREE_DIMENSION_LIMIT = 3

#: Below this many stored vectors, building any index never amortizes.
TINY_WORKLOAD = 64

#: Average support share below which the sparse engine pays off.
SPARSE_SUPPORT_SHARE = 0.5


@dataclass(frozen=True)
class Plan:
    """A planner decision with its reasoning."""

    rtk_method: str
    rkr_method: str
    reason: str


def _sparsity(weights: WeightSet) -> float:
    """Average share of non-zero components per preference."""
    W = weights.values
    return float((W > 0).sum() / W.size)


def plan(products: ProductSet, weights: WeightSet,
         skew_hint: Optional[str] = None) -> Plan:
    """Choose methods for the workload; see module docstring for rules.

    ``skew_hint`` may be ``"skewed"`` to request the quantile grid
    (recommended when P is clustered/exponential and known to be so).
    """
    check_compatible(products, weights)
    d = products.dim
    size = max(products.size, weights.size)

    if size < TINY_WORKLOAD:
        return Plan("sim", "sim",
                    f"workload of {size} vectors is below the index "
                    f"amortization threshold ({TINY_WORKLOAD}); plain scan")
    if d <= TREE_DIMENSION_LIMIT:
        return Plan("bbr", "mpa",
                    f"d={d} <= {TREE_DIMENSION_LIMIT}: R-tree pruning wins "
                    "in very low dimensions (Figure 10)")
    if _sparsity(weights) < SPARSE_SUPPORT_SHARE:
        return Plan("gir-sparse", "gir-sparse",
                    "preferences are sparse: support-restricted bounds "
                    "cut per-pair work proportionally")
    if skew_hint == "skewed":
        return Plan("gir-adaptive", "gir-adaptive",
                    "caller marked the data skewed: quantile boundaries "
                    "filter better at equal n")
    return Plan("gir", "gir",
                f"d={d}, {size} vectors: the Grid-index scan is the "
                "general-purpose winner")


class AutoEngine:
    """An engine that routes RTK and RKR to the planned methods.

    Constructed by ``RRQEngine(P, W, method="auto")``; exposed directly
    for callers who want the :class:`Plan` too.
    """

    name = "AUTO"
    supports_rtk = True
    supports_rkr = True

    def __init__(self, products: ProductSet, weights: WeightSet,
                 skew_hint: Optional[str] = None, **kwargs):
        from .engine import make_algorithm

        self.plan = plan(products, weights, skew_hint=skew_hint)
        self.products = products
        self.weights = weights
        self._rtk = make_algorithm(self.plan.rtk_method, products, weights,
                                   **kwargs)
        if self.plan.rkr_method == self.plan.rtk_method:
            self._rkr = self._rtk
        else:
            self._rkr = make_algorithm(self.plan.rkr_method, products,
                                       weights, **kwargs)

    def reverse_topk(self, q, k: int, counter=None):
        """RTK via the planned method."""
        return self._rtk.reverse_topk(q, k, counter=counter)

    def reverse_kranks(self, q, k: int, counter=None):
        """RKR via the planned method."""
        return self._rkr.reverse_kranks(q, k, counter=counter)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AutoEngine(rtk={self.plan.rtk_method!r}, "
                f"rkr={self.plan.rkr_method!r})")
