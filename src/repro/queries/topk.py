"""Top-k queries and rank primitives (paper Definition 1).

These are the forward-direction building blocks: given one preference
``w``, find the ``k`` best products, or the rank a query product would
hold.  The reverse queries are defined in terms of these, and the naive
oracle uses them directly.

Scoring convention (library-wide): smaller scores are better, and
``rank(w, q)`` counts products with a *strictly* smaller score than ``q``
(DESIGN.md Section 2), so ``rank == 0`` means "q ties for the best".
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

import numpy as np

from ..errors import InvalidParameterError


def scores(products: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Vector of ``f_w(p)`` for every row of ``products``."""
    return products @ w


def top_k(products: np.ndarray, w: np.ndarray, k: int) -> List[int]:
    """Indices of the ``k`` smallest-scoring products under ``w``.

    Ties are broken by smaller index, matching the deterministic tie-break
    used everywhere in this library.  Uses a bounded heap, so the cost is
    ``O(m log k)``.
    """
    if k <= 0:
        raise InvalidParameterError("k must be positive")
    score_vec = scores(products, w)
    k = min(k, len(score_vec))
    # heapq.nsmallest on (score, index) gives the stable tie-break for free.
    best = heapq.nsmallest(k, zip(score_vec.tolist(), range(len(score_vec))))
    return [idx for _, idx in best]


def rank_of_score(score_vec: Sequence[float], query_score: float) -> int:
    """Number of scores strictly below ``query_score``."""
    arr = np.asarray(score_vec)
    return int(np.count_nonzero(arr < query_score))


def rank_of_point(products: np.ndarray, w: np.ndarray, q: np.ndarray) -> int:
    """``rank(w, q)``: products scoring strictly better than ``q`` under ``w``."""
    return rank_of_score(scores(products, w), float(np.dot(w, q)))


def kth_best_score(products: np.ndarray, w: np.ndarray, k: int) -> float:
    """The ``k``-th smallest score under ``w`` (1-based ``k``)."""
    if k <= 0:
        raise InvalidParameterError("k must be positive")
    score_vec = scores(products, w)
    k = min(k, len(score_vec))
    return float(np.partition(score_vec, k - 1)[k - 1])


def in_top_k(products: np.ndarray, w: np.ndarray, q: np.ndarray, k: int) -> bool:
    """Would ``q`` rank within the top-k of ``w``?  (Definition 2 membership.)

    True exactly when fewer than ``k`` products strictly beat ``q`` — i.e.
    ``f_w(q) <= f_w(p)`` holds for some ``p`` in ``TOP_k(w)``.
    """
    return rank_of_point(products, w, q) < k


def all_ranks(products: np.ndarray, weights: np.ndarray,
              q: np.ndarray, chunk: int = 256) -> np.ndarray:
    """``rank(w, q)`` for every ``w`` (vectorized, chunked over W).

    The work is ``O(|P| * |W|)`` but runs at BLAS speed; this is the
    reference used by the naive oracle and by correctness tests.
    """
    m = weights.shape[0]
    out = np.empty(m, dtype=np.int64)
    fq = weights @ q
    for start in range(0, m, chunk):
        block = weights[start:start + chunk]
        # (|P|, chunk) score matrix; count per column.
        s = products @ block.T
        out[start:start + chunk] = (s < fq[start:start + chunk]).sum(axis=0)
    return out
