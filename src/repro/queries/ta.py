"""Fagin's Threshold Algorithm (TA) for linear top-k queries.

The substrate behind the RTA baseline [13]: instead of scanning all of
``P`` for every weight vector, TA walks the ``d`` per-dimension sorted lists in
round-robin, maintaining a candidate heap and the threshold
``t = f_w(current list frontiers)``.  Because scores are monotone in every
attribute (all values non-negative, minimum preferable), once the k-th
best candidate scores below the threshold no unseen product can enter the
top-k and the scan stops.

The sorted lists are built once per data set (:class:`SortedAccessIndex`)
and shared across queries, mirroring how [13] amortizes them.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from ..errors import InvalidParameterError
from ..stats.counters import NULL_COUNTER, OpCounter


class SortedAccessIndex:
    """Per-dimension ascending orderings of a point matrix.

    ``order[i]`` lists point indices sorted by attribute ``i`` (smallest
    first — the preferable end).  Memory is ``d`` index arrays, built once
    in ``O(d m log m)``.
    """

    def __init__(self, points: np.ndarray):
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise InvalidParameterError(
                "SortedAccessIndex needs a non-empty (m, d) array"
            )
        self.points = pts
        self.order = [
            np.argsort(pts[:, i], kind="stable") for i in range(pts.shape[1])
        ]

    @property
    def size(self) -> int:
        """Number of indexed points."""
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality."""
        return self.points.shape[1]


def ta_top_k(index: SortedAccessIndex, w: np.ndarray, k: int,
             counter: OpCounter = NULL_COUNTER) -> List[Tuple[float, int]]:
    """Top-k ``(score, point index)`` pairs under ``w`` via TA.

    Results are sorted ascending by ``(score, index)`` — the library's
    deterministic tie-break.  ``counter.pairwise`` counts the random-access
    score evaluations; ``counter.points_accessed`` the sorted accesses.
    """
    if k <= 0:
        raise InvalidParameterError("k must be positive")
    P = index.points
    m, d = P.shape
    k = min(k, m)
    w = np.asarray(w, dtype=np.float64)
    if w.shape[0] != d:
        raise InvalidParameterError("weight dimensionality mismatch")

    seen = np.zeros(m, dtype=bool)
    # Max-heap of the best k so far: (-score, -index).
    heap: List[Tuple[float, int]] = []
    depth = 0
    active_dims = [i for i in range(d) if w[i] > 0.0] or list(range(d))
    while depth < m:
        frontier = np.empty(d)
        for i in range(d):
            row = index.order[i][min(depth, m - 1)]
            frontier[i] = P[row, i]
        for i in active_dims:
            row = int(index.order[i][depth])
            counter.points_accessed += 1
            if seen[row]:
                continue
            seen[row] = True
            score = float(np.dot(w, P[row]))
            counter.pairwise += 1
            entry = (-score, -row)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
        depth += 1
        if len(heap) == k:
            threshold = float(np.dot(w, frontier))
            counter.pairwise += 1
            kth_score = -heap[0][0]
            # No unseen point can score below the threshold; stop once the
            # current k-th best is at least as good.
            if kth_score <= threshold:
                counter.early_terminations += 1
                break
    return sorted((-s, -i) for s, i in heap)


def ta_kth_score(index: SortedAccessIndex, w: np.ndarray, k: int,
                 counter: OpCounter = NULL_COUNTER) -> float:
    """The k-th best (smallest) score under ``w``, via :func:`ta_top_k`."""
    top = ta_top_k(index, w, k, counter)
    return top[-1][0]
