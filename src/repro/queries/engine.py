"""The library facade: one entry point over every algorithm.

:class:`RRQEngine` hides the per-algorithm constructors behind a method
registry, which is what the examples and most downstream users want::

    engine = RRQEngine(products, weights, method="gir")
    matches = engine.reverse_topk(q, k=10)
    best = engine.reverse_kranks(q, k=5)

Methods: ``gir`` (the paper's contribution, default), ``sim``, ``bbr``
(RTK only), ``mpa`` (RKR only), ``rta`` (RTK only), ``naive``,
``gir-adaptive`` and ``gir-sparse`` (the Section 7 extensions),
``gir-kernel`` (the weight-blocked vectorized grid filter, see
:mod:`repro.vectorized.girkernel`), and ``auto`` (heuristic planner,
see :mod:`repro.queries.planner`).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..algorithms.base import RRQAlgorithm
from ..algorithms.bbr import BranchBoundRTK
from ..algorithms.mpa import MarkedPruningRKR
from ..algorithms.naive import NaiveRRQ
from ..algorithms.rta import ThresholdRTK
from ..algorithms.sim import SimpleScan
from ..core.gir import GridIndexRRQ
from ..data.datasets import ProductSet, WeightSet
from ..errors import InvalidParameterError
from ..ext.adaptive_grid import AdaptiveGridIndexRRQ
from ..ext.sparse import SparseGridIndexRRQ
from ..queries.types import RKRResult, RTKResult
from ..vectorized.girkernel import GirKernelRRQ
from .planner import AutoEngine

_METHODS: Dict[str, Callable[..., RRQAlgorithm]] = {
    "gir": GridIndexRRQ,
    "gir-kernel": GirKernelRRQ,
    "sim": SimpleScan,
    "bbr": BranchBoundRTK,
    "mpa": MarkedPruningRKR,
    "naive": NaiveRRQ,
    "rta": ThresholdRTK,
    "gir-adaptive": AdaptiveGridIndexRRQ,
    "gir-sparse": SparseGridIndexRRQ,
    "auto": AutoEngine,
}


def available_methods() -> tuple:
    """Names accepted by :class:`RRQEngine`."""
    return tuple(sorted(_METHODS))


def make_algorithm(method: str, products: ProductSet, weights: WeightSet,
                   **kwargs) -> RRQAlgorithm:
    """Construct the named algorithm, passing extra kwargs through."""
    key = method.lower()
    if key not in _METHODS:
        raise InvalidParameterError(
            f"unknown method {method!r}; available: {available_methods()}"
        )
    return _METHODS[key](products, weights, **kwargs)


class RRQEngine:
    """High-level reverse-rank-query engine bound to one ``(P, W)`` pair."""

    def __init__(self, products: ProductSet, weights: WeightSet,
                 method: str = "gir", **kwargs):
        self.algorithm = make_algorithm(method, products, weights, **kwargs)
        self.method = method.lower()

    @property
    def products(self) -> ProductSet:
        """The indexed product set."""
        return self.algorithm.products

    @property
    def weights(self) -> WeightSet:
        """The indexed preference set."""
        return self.algorithm.weights

    def reverse_topk(self, q, k: int) -> RTKResult:
        """Which preferences rank ``q`` in their top-k? (Definition 2)."""
        return self.algorithm.reverse_topk(q, k)

    def reverse_kranks(self, q, k: int) -> RKRResult:
        """The ``k`` preferences ranking ``q`` best (Definition 3)."""
        return self.algorithm.reverse_kranks(q, k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RRQEngine(method={self.method!r}, algorithm={self.algorithm!r})"
