"""Query definitions, result types and the engine facade.

The engine facade imports every algorithm, and the algorithms import the
result types from this package — so :mod:`.engine` is loaded lazily to keep
the import graph acyclic.
"""

from .monochromatic import MonochromaticResult, monochromatic_reverse_topk
from .planner import AutoEngine, Plan, plan
from .ta import SortedAccessIndex, ta_kth_score, ta_top_k
from .topk import all_ranks, in_top_k, kth_best_score, rank_of_point, top_k
from .types import RKRResult, RTKResult

__all__ = [
    "RRQEngine", "available_methods", "make_algorithm",
    "top_k", "rank_of_point", "in_top_k", "kth_best_score", "all_ranks",
    "RTKResult", "RKRResult",
    "monochromatic_reverse_topk", "MonochromaticResult",
    "SortedAccessIndex", "ta_top_k", "ta_kth_score",
    "plan", "Plan", "AutoEngine",
]

_ENGINE_EXPORTS = ("RRQEngine", "available_methods", "make_algorithm")


def __getattr__(name):
    if name in _ENGINE_EXPORTS:
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
