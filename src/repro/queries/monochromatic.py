"""Monochromatic reverse top-k in two dimensions.

The bichromatic query (the paper's focus) takes a concrete preference set
``W``; the *monochromatic* variant [13, 14] asks instead for **every
possible preference** that would rank ``q`` in its top-k.  In two
dimensions a preference is ``w = (lam, 1 - lam)`` with ``lam in [0, 1]``,
so the answer is a set of intervals of ``lam``.

Geometry: the score of a product ``p`` is a linear function of ``lam``::

    f_p(lam) = lam * p[0] + (1 - lam) * p[1]
             = p[1] + lam * (p[0] - p[1])

For each product, ``f_p(lam) < f_q(lam)`` holds on one side of the single
crossing point of the two lines (or everywhere/nowhere when they do not
cross in ``[0, 1]``).  The rank of ``q`` is therefore a piecewise-constant
function of ``lam`` whose breakpoints are those crossings; a single sweep
over the sorted breakpoints yields the exact intervals where
``rank(lam) < k`` in ``O(m log m)``.

This implementation resolves crossings in exact rational arithmetic
(:class:`fractions.Fraction`), so interval endpoints are exact and the
result agrees bit-for-bit with brute-force evaluation at any rational
``lam``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

import numpy as np

from ..errors import DimensionMismatchError, InvalidParameterError

#: An interval of lambda values, inclusive of both endpoints.
Interval = Tuple[Fraction, Fraction]

ZERO = Fraction(0)
ONE = Fraction(1)


@dataclass(frozen=True)
class MonochromaticResult:
    """Answer of a 2-d monochromatic reverse top-k query.

    ``intervals`` are disjoint, sorted, closed intervals of ``lam`` (the
    weight of the first attribute) for which ``q`` ranks in the top-k.
    """

    intervals: Tuple[Interval, ...]
    k: int

    @property
    def is_empty(self) -> bool:
        """True when no preference ranks ``q`` in its top-k."""
        return not self.intervals

    def total_measure(self) -> Fraction:
        """Total length of the qualifying lambda range (in ``[0, 1]``)."""
        return sum((hi - lo for lo, hi in self.intervals), ZERO)

    def contains(self, lam: float) -> bool:
        """Does the preference ``(lam, 1 - lam)`` rank ``q`` in its top-k?"""
        frac = Fraction(lam)
        return any(lo <= frac <= hi for lo, hi in self.intervals)


def _rank_at(P: np.ndarray, q: np.ndarray, lam: Fraction) -> int:
    """Exact strict rank of ``q`` at one rational ``lam`` (oracle helper)."""
    q0, q1 = Fraction(float(q[0])), Fraction(float(q[1]))
    fq = q1 + lam * (q0 - q1)
    rank = 0
    for p in P:
        p0, p1 = Fraction(float(p[0])), Fraction(float(p[1]))
        if p1 + lam * (p0 - p1) < fq:
            rank += 1
    return rank


def monochromatic_reverse_topk(P: np.ndarray, q: np.ndarray,
                               k: int) -> MonochromaticResult:
    """All ``lam in [0, 1]`` whose preference ranks ``q`` in the top-k.

    Parameters
    ----------
    P:
        ``(m, 2)`` product array (exact duplicates of ``q`` are ignored —
        they tie and can never out-rank it).
    q:
        The 2-d query product.
    k:
        Top-k threshold, positive.
    """
    P = np.asarray(P, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64).reshape(-1)
    if P.ndim != 2 or P.shape[1] != 2 or q.shape[0] != 2:
        raise DimensionMismatchError(
            "monochromatic reverse top-k is defined for d = 2"
        )
    if k <= 0:
        raise InvalidParameterError("k must be positive")

    q0, q1 = Fraction(float(q[0])), Fraction(float(q[1]))

    # For each product, f_p(lam) - f_q(lam) = intercept + lam * slope.
    # Classify its "strictly better than q" region within [0, 1]:
    #   rank0        — better exactly at lam = 0,
    #   rank1        — better exactly at lam = 1,
    #   rank_open    — better on the first open segment (0, b1),
    #   events       — interior crossings where better-ness flips.
    rank0 = 0
    rank1 = 0
    rank_open = 0
    events: List[Tuple[Fraction, int]] = []
    for p in P:
        p0, p1 = Fraction(float(p[0])), Fraction(float(p[1]))
        if p0 == q0 and p1 == q1:
            continue  # exact tie at every lam: never strictly better
        intercept = p1 - q1
        slope = (p0 - q0) - (p1 - q1)
        at_zero = intercept < 0
        at_one = intercept + slope < 0
        if at_zero:
            rank0 += 1
        if at_one:
            rank1 += 1
        if slope == 0:
            if at_zero:
                rank_open += 1  # constant sign across all of [0, 1]
            continue
        crossing = -intercept / slope
        # Sign just after 0 (the first open segment): the intercept decides
        # unless it is exactly 0, where the slope takes over.
        just_after_zero = at_zero or (intercept == 0 and slope < 0)
        if just_after_zero:
            rank_open += 1
        if crossing <= ZERO or crossing >= ONE:
            continue  # no flip strictly inside (0, 1)
        events.append((crossing, -1 if just_after_zero else +1))

    events.sort()

    # Sweep.  Rank at a breakpoint never exceeds the rank on either side
    # (products crossing there tie q), so the qualifying set is a union of
    # CLOSED intervals, possibly degenerate points.
    intervals: List[List[Fraction]] = []
    open_start: Optional[Fraction] = None

    def visit_point(lam: Fraction, rank_at: int, rank_after: int) -> None:
        nonlocal open_start
        if rank_at < k and open_start is None:
            open_start = lam
        if rank_after >= k and open_start is not None:
            intervals.append([open_start, lam])
            open_start = None

    visit_point(ZERO, rank0, rank_open)
    rank = rank_open
    i = 0
    while i < len(events):
        lam = events[i][0]
        ending = 0
        starting = 0
        while i < len(events) and events[i][0] == lam:
            if events[i][1] == -1:
                ending += 1
            else:
                starting += 1
            i += 1
        rank_at = rank - ending
        rank_after = rank - ending + starting
        visit_point(lam, rank_at, rank_after)
        rank = rank_after
    # lam = 1: nothing follows, so "after" is the point itself.
    visit_point(ONE, rank1, rank1)
    if open_start is not None:
        intervals.append([open_start, ONE])

    # Merge touching intervals.
    merged: List[List[Fraction]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    return MonochromaticResult(
        intervals=tuple((lo, hi) for lo, hi in merged), k=k
    )
