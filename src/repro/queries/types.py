"""Result types shared by every reverse-rank-query algorithm.

All algorithms return the same structures so the test suite can compare
them for equality and the benchmarks can report uniformly:

* :class:`RTKResult` — the set of qualifying weight indices plus stats.
* :class:`RKRResult` — the ordered top-k ``(rank, weight index)`` pairs.

Tie-breaking for RKR is deterministic across the library: among equal
ranks, the weight with the smaller index wins (see DESIGN.md Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from ..stats.counters import OpCounter


@dataclass(frozen=True)
class RTKResult:
    """Answer of a reverse top-k query.

    Attributes
    ----------
    weights:
        Indices into ``W`` of the qualifying preferences, as a frozenset
        (RTK answers are sets; Definition 2).
    k:
        The query parameter.
    counter:
        Work tallies accumulated while answering.
    """

    weights: FrozenSet[int]
    k: int
    counter: OpCounter = field(compare=False, default_factory=OpCounter)

    @property
    def size(self) -> int:
        """Number of qualifying weight vectors."""
        return len(self.weights)

    def sorted_indices(self) -> List[int]:
        """Qualifying indices in ascending order (handy for printing)."""
        return sorted(self.weights)


@dataclass(frozen=True)
class RKRResult:
    """Answer of a reverse k-ranks query.

    Attributes
    ----------
    entries:
        ``(rank, weight index)`` pairs sorted ascending by ``(rank, index)``;
        exactly ``min(k, |W|)`` of them.
    k:
        The query parameter.
    counter:
        Work tallies accumulated while answering.
    """

    entries: Tuple[Tuple[int, int], ...]
    k: int
    counter: OpCounter = field(compare=False, default_factory=OpCounter)

    @property
    def weights(self) -> FrozenSet[int]:
        """The answer's weight indices as a set."""
        return frozenset(idx for _, idx in self.entries)

    @property
    def ranks(self) -> Tuple[int, ...]:
        """Just the ranks, in answer order."""
        return tuple(rank for rank, _ in self.entries)

    @property
    def best_rank(self) -> int:
        """Smallest rank in the answer (how well q can possibly place)."""
        return self.entries[0][0] if self.entries else -1


def make_rkr_result(pairs: List[Tuple[int, int]], k: int,
                    counter: OpCounter) -> RKRResult:
    """Sort ``(rank, index)`` pairs with the library tie-break and truncate to k."""
    ordered = tuple(sorted(pairs)[:k])
    return RKRResult(entries=ordered, k=k, counter=counter)
