"""GIR — the Grid-index algorithms for RTK and RKR (Algorithms 2 and 3).

:class:`GridIndexRRQ` builds the Grid-index and both approximate-vector
sets once at construction (the paper's pre-processing step), then answers
any number of queries:

* ``reverse_topk`` — Algorithm 2 (GIRTop-k): one GInTop-k call per weight,
  with a global abort once the Domin buffer proves the answer empty.
* ``reverse_kranks`` — Algorithm 3 (GIRk-Rank): a size-k heap whose worst
  rank (``minRank``) feeds back into GInTop-k as the abort threshold.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.base import RRQAlgorithm, duplicate_mask
from ..data.datasets import ProductSet, WeightSet
from ..errors import InvalidParameterError
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..stats.counters import OpCounter
from .approx import Quantizer, quantize_dataset
from .gin import ABORTED, DEFAULT_CHUNK, GinContext, gin_topk
from .grid import DEFAULT_PARTITIONS, GridIndex


class GridIndexRRQ(RRQAlgorithm):
    """The paper's contribution: Grid-index filtered scan for RTK and RKR.

    Parameters
    ----------
    products, weights:
        The data sets.
    partitions:
        Number of value-range partitions ``n`` (paper default 32;
        :func:`repro.core.model.recommend_partitions` picks one from a
        target filtering performance).
    grid:
        Optionally, a pre-built (possibly non-equal-width) grid; overrides
        ``partitions``.  The adaptive extension passes one in.
    p_quantizer, w_quantizer:
        Override quantizers; must match ``grid``'s boundaries.
    chunk:
        Scan block size for the chunk-vectorized inner loop.
    use_domin:
        Ablation switch: when False the Domin buffer is never populated
        (Algorithm 1 lines 7-8 disabled).  Results are unchanged; only the
        work differs.  Used by ``bench_ablation_domin``.
    """

    name = "GIR"

    def __init__(self, products: ProductSet, weights: WeightSet,
                 partitions: int = DEFAULT_PARTITIONS,
                 grid: Optional[GridIndex] = None,
                 p_quantizer: Optional[Quantizer] = None,
                 w_quantizer: Optional[Quantizer] = None,
                 chunk: int = DEFAULT_CHUNK,
                 use_domin: bool = True):
        super().__init__(products, weights)
        if grid is None:
            # Section 3.1 quantizes by "the range of the attribute value".
            # For weights on the simplex the observed component range is
            # far below 1.0 once d grows (w_i ~ 1/d), so spanning [0, 1]
            # would waste nearly all of the grid's weight-axis resolution.
            w_range = float(self.W.max())
            alpha_p = np.linspace(0.0, products.value_range, partitions + 1)
            alpha_w = np.linspace(0.0, w_range, partitions + 1)
            grid = GridIndex(alpha_p, alpha_w)
        self.grid = grid
        self.p_quantizer = p_quantizer or Quantizer(grid.alpha_p)
        self.w_quantizer = w_quantizer or Quantizer(grid.alpha_w)
        #: Pre-computed approximate vectors (the paper's P^(A) and W^(A)).
        self.PA = quantize_dataset(self.P, self.p_quantizer)
        self.WA = quantize_dataset(self.W, self.w_quantizer)
        if chunk < 1:
            raise InvalidParameterError(
                f"chunk must be positive, got {chunk}"
            )
        self.chunk = chunk
        self.use_domin = use_domin
        #: Classification profile of the most recent query: how many
        #: (p, w) checks the grid bounds decided (Case 1 / Case 2), how
        #: many fell through to refinement, and the resulting filter
        #: rate — the live per-query view of the paper's Table 4.
        self.last_filter_profile: Optional[dict] = None

    # ------------------------------------------------------------------

    @property
    def partitions(self) -> int:
        """Grid resolution ``n``."""
        return self.grid.partitions

    def _context(self, q: np.ndarray) -> GinContext:
        return GinContext(
            P=self.P,
            PA=self.PA,
            grid=self.grid,
            q=q,
            domin=np.zeros(self.P.shape[0], dtype=bool),
            skip=duplicate_mask(self.P, q),
            chunk=self.chunk,
            track_domin=self.use_domin,
        )

    # ------------------------------------------------------------------

    def _mark_profile(self, counter: OpCounter) -> tuple:
        """Counter state before a query, for :meth:`_set_filter_profile`."""
        return (counter.filtered_case1, counter.filtered_case2,
                counter.refined, counter.dominated_skips)

    def _set_filter_profile(self, counter: OpCounter, before: tuple) -> None:
        """Freeze this query's classification deltas into the profile."""
        case1 = counter.filtered_case1 - before[0]
        case2 = counter.filtered_case2 - before[1]
        refined = counter.refined - before[2]
        checked = case1 + case2 + refined
        self.last_filter_profile = {
            "case1": case1,
            "case2": case2,
            "refined": refined,
            "dominated_skips": counter.dominated_skips - before[3],
            "checked": checked,
            "filter_rate": (case1 + case2) / checked if checked else 0.0,
        }

    def _reverse_topk(self, q: np.ndarray, k: int,
                      counter: OpCounter) -> RTKResult:
        """Algorithm 2 (GIRTop-k)."""
        before = self._mark_profile(counter)
        try:
            ctx = self._context(q)
            result: List[int] = []
            for j in range(self.W.shape[0]):
                rnk = gin_topk(ctx, self.W[j], self.WA[j], k, counter)
                if rnk != ABORTED:
                    result.append(j)
                if ctx.domin_count >= k:
                    # k dominating products out-rank q under *every* weight
                    # vector, so the true answer is empty (lines 7-8).
                    return RTKResult(weights=frozenset(), k=k,
                                     counter=counter)
            return RTKResult(weights=frozenset(result), k=k, counter=counter)
        finally:
            self._set_filter_profile(counter, before)

    def _reverse_kranks(self, q: np.ndarray, k: int,
                        counter: OpCounter) -> RKRResult:
        """Algorithm 3 (GIRk-Rank)."""
        before = self._mark_profile(counter)
        try:
            ctx = self._context(q)
            # Max-heap of the current k best: entries (-rank, -index).
            # Weights are scanned in index order, so on rank ties the
            # incumbent always has the smaller index and correctly
            # survives.
            heap: List[Tuple[int, int]] = []
            for j in range(self.W.shape[0]):
                min_rank = (float("inf") if len(heap) < k
                            else float(-heap[0][0]))
                rnk = gin_topk(ctx, self.W[j], self.WA[j], min_rank, counter)
                if rnk == ABORTED:
                    continue
                if len(heap) < k:
                    heapq.heappush(heap, (-rnk, -j))
                elif rnk < -heap[0][0]:
                    heapq.heapreplace(heap, (-rnk, -j))
            pairs = [(-neg_rank, -neg_idx) for neg_rank, neg_idx in heap]
            return make_rkr_result(pairs, k, counter)
        finally:
            self._set_filter_profile(counter, before)

    # ------------------------------------------------------------------

    def exact_rank(self, q_like, j: int,
                   counter: Optional[OpCounter] = None) -> int:
        """Exact ``rank(w_j, q)`` through the Grid-index machinery.

        Exposed for tests and examples; runs GInTop-k with no abort limit.
        """
        q = self._check_query(q_like, 1)
        if counter is None:
            counter = OpCounter()
        ctx = self._context(q)
        return gin_topk(ctx, self.W[j], self.WA[j], float("inf"), counter)

    def memory_report(self) -> dict:
        """Bytes used by the grid and the approximate vectors (Section 5.3)."""
        return {
            "grid_bytes": self.grid.memory_bytes,
            "pa_bytes": self.PA.nbytes,
            "wa_bytes": self.WA.nbytes,
            "original_bytes": self.P.nbytes + self.W.nbytes,
        }
