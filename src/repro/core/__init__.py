"""The paper's contribution: Grid-index, GInTop-k, GIR, performance model."""

from .approx import Quantizer, bits_needed, code_dtype, quantize_dataset
from .approximate import (
    ApproxRKRResult,
    ApproxRTKResult,
    reverse_kranks_bounds,
    reverse_topk_bounds,
)
from .bounds import Case, classify, classify_batch, sandwich_holds
from .gin import ABORTED, GinContext, gin_topk
from .gir import GridIndexRRQ
from .grid import DEFAULT_PARTITIONS, GridIndex
from . import bitstring, model

__all__ = [
    "GridIndex", "DEFAULT_PARTITIONS", "Quantizer", "quantize_dataset",
    "bits_needed", "code_dtype", "Case", "classify", "classify_batch",
    "sandwich_holds", "GinContext", "gin_topk", "ABORTED", "GridIndexRRQ",
    "bitstring", "model",
    "reverse_topk_bounds", "reverse_kranks_bounds",
    "ApproxRTKResult", "ApproxRKRResult",
]
