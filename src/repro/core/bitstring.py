"""Bit-string compression of approximate vectors (paper Section 3.2).

With ``n = 2^b`` partitions, an approximate vector needs only ``b`` bits
per component — ``b * d`` bits per vector, under a tenth of the raw 64-bit
floats for the paper's ``b = 6``.  This module packs integer code matrices
into that dense representation and back, bit-exactly.

Packing walks each value's bits most-significant-first (matching Figure 6's
``100010`` example for ``p_a = (2, 0, 2)``) and concatenates them row-major
before byte-aligning the whole payload, so the size in bytes is
``ceil(m * d * b / 8)``.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataValidationError, InvalidParameterError


def pack_matrix(codes: np.ndarray, bits: int) -> bytes:
    """Pack an integer matrix into ``bits`` bits per value.

    Parameters
    ----------
    codes:
        Integer array of shape ``(m, d)`` with values in ``[0, 2**bits)``.
    bits:
        Bits per value, ``1..32``.
    """
    if not 1 <= bits <= 32:
        raise InvalidParameterError("bits must be in 1..32")
    arr = np.asarray(codes)
    if arr.ndim != 2:
        raise InvalidParameterError("pack_matrix expects a (m, d) matrix")
    if not np.issubdtype(arr.dtype, np.integer):
        raise DataValidationError("codes must be integers")
    flat = arr.astype(np.int64, copy=False).ravel()
    if flat.size and (flat.min() < 0 or flat.max() >= (1 << bits)):
        raise DataValidationError(
            f"codes out of range for {bits}-bit packing"
        )
    # (N, bits) matrix of single bits, most significant first.
    shifts = np.arange(bits - 1, -1, -1, dtype=np.int64)
    bit_matrix = ((flat[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bit_matrix.ravel()).tobytes()


def unpack_matrix(payload: bytes, rows: int, cols: int, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_matrix`; returns an ``int64`` ``(rows, cols)`` array."""
    if not 1 <= bits <= 32:
        raise InvalidParameterError("bits must be in 1..32")
    if rows < 0 or cols < 0:
        raise InvalidParameterError("rows/cols must be non-negative")
    total_bits = rows * cols * bits
    raw = np.frombuffer(payload, dtype=np.uint8)
    if raw.size * 8 < total_bits:
        raise DataValidationError("payload too short for requested shape")
    bit_stream = np.unpackbits(raw, count=total_bits)
    bit_matrix = bit_stream.reshape(-1, bits).astype(np.int64)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.int64)
    values = (bit_matrix << shifts).sum(axis=1)
    return values.reshape(rows, cols)


def packed_size_bytes(rows: int, cols: int, bits: int) -> int:
    """Bytes :func:`pack_matrix` produces for a ``(rows, cols)`` matrix."""
    if not 1 <= bits <= 32:
        raise InvalidParameterError("bits must be in 1..32")
    return (rows * cols * bits + 7) // 8


def compression_ratio(rows: int, cols: int, bits: int,
                      raw_bytes_per_value: int = 8) -> float:
    """Compressed size over raw size — Section 3.2's 'less than 1/10' claim."""
    raw = rows * cols * raw_bytes_per_value
    if raw == 0:
        return 0.0
    return packed_size_bytes(rows, cols, bits) / raw
