"""Score-bound classification — the three cases of Section 3.1.

Given the Grid-index bounds ``L[f_w(p)]`` and ``U[f_w(p)]`` and the real
query score ``f_w(q)``, every product falls into one of three cases:

* Case 1 (``p`` precedes ``q``): ``U < f_w(q)`` — ``p`` definitely ranks
  better; count it, never score it.
* Case 2 (``q`` precedes ``p``): ``L > f_w(q)`` — ``p`` definitely ranks
  worse; drop it, never score it.
* Case 3 (incomparable): otherwise — refine with a real inner product.

The paper's Case 1 text uses a strict inequality while Algorithm 1 line 5
uses ``<=``; this implementation keeps the *strict* form for both cases so
the classification stays conservative under the library's strict-rank
semantics (a pair with ``U == f_w(q)`` could be a tie, which must not be
counted as strictly better).  Exactness against the naive oracle is
enforced by the integration tests.
"""

from __future__ import annotations

import enum
from typing import Tuple

import numpy as np


class Case(enum.IntEnum):
    """Classification outcome for one ``(p, w)`` pair against ``q``."""

    PRECEDES = 1       # Case 1: p ranks strictly better than q
    PRECEDED = 2       # Case 2: q ranks strictly better (or ties) — drop
    INCOMPARABLE = 3   # Case 3: bounds straddle f_w(q); needs refinement


def classify(lower: float, upper: float, query_score: float) -> Case:
    """Classify one pair from its score bounds (scalar form)."""
    if upper < query_score:
        return Case.PRECEDES
    if lower > query_score:
        return Case.PRECEDED
    return Case.INCOMPARABLE


def classify_batch(lower: np.ndarray, upper: np.ndarray,
                   query_score: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Boolean masks ``(case1, case2, case3)`` for bound arrays.

    The masks partition the input: every element is True in exactly one.
    """
    case1 = upper < query_score
    case2 = lower > query_score
    case3 = ~(case1 | case2)
    return case1, case2, case3


def sandwich_holds(lower: np.ndarray, scores: np.ndarray,
                   upper: np.ndarray, atol: float = 1e-9) -> bool:
    """Check the bound invariant ``L <= f_w(p) <= U`` (Equation 2).

    Used by property tests; ``atol`` absorbs float round-off in the sums.
    """
    lo_ok = np.all(lower <= scores + atol)
    hi_ok = np.all(scores <= upper + atol)
    return bool(lo_ok and hi_ok)
