"""Exact resolution of score ties.

The library's rank semantics are *strict*: ``rank(w, q)`` counts products
with ``f_w(p) < f_w(q)``.  Two distinct vectors can tie exactly — with
low-entropy data (prices ending in .99, survey scores, test fixtures) the
inner products are equal as rationals — and IEEE-754 evaluation of the two
sides through different kernels (dgemm vs dgemv vs ``np.dot``) rounds such
ties unpredictably, making results depend on chunk sizes and BLAS builds.

Every algorithm therefore funnels *near-tie* comparisons through this
module: a pair whose computed score lands within :func:`tie_tolerance` of
``f_w(q)`` is re-decided in exact rational arithmetic
(:class:`fractions.Fraction` is exact for binary floats).  Pairs outside
the band keep the fast float comparison — the band is a few orders of
magnitude wider than the worst accumulated rounding error of a float64
inner product, and a few orders narrower than any genuine score gap, so
the exact path triggers only for true (or near-true) ties.

Bound-based pruning (Grid-index cases, MBR score intervals) uses the same
tolerance: a bound must clear ``f_w(q)`` by the band's width before a pair
is decided without refinement, which routes every near-tie into the exact
refinement path above.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

import numpy as np

#: Relative half-width of the near-tie band.  Float64 inner products of
#: d <= 10^3 terms are accurate to ~d * 2^-52 ~ 2e-13 relative; genuine
#: score gaps in any non-adversarial data set are far larger.
TIE_REL_TOL = 1e-9


def tie_tolerance(query_score: float) -> float:
    """Absolute half-width of the near-tie band around ``query_score``."""
    return TIE_REL_TOL * (1.0 + abs(query_score))


def exact_score_cmp(w: np.ndarray, p: np.ndarray, q: np.ndarray) -> int:
    """Sign of ``f_w(p) - f_w(q)`` in exact rational arithmetic.

    Returns -1, 0 or +1.  ``Fraction(float)`` is exact, so the result is
    the true mathematical comparison of the two inner products.
    """
    diff = Fraction(0)
    for w_i, p_i, q_i in zip(w.tolist(), p.tolist(), q.tolist()):
        if w_i == 0.0 or p_i == q_i:
            continue
        diff += Fraction(w_i) * (Fraction(p_i) - Fraction(q_i))
    if diff < 0:
        return -1
    if diff > 0:
        return 1
    return 0


def exact_strictly_less(w: np.ndarray, p: np.ndarray, q: np.ndarray) -> bool:
    """``f_w(p) < f_w(q)`` decided exactly."""
    return exact_score_cmp(w, p, q) < 0


def count_strictly_better(
    scores: np.ndarray,
    vectors: np.ndarray,
    w: np.ndarray,
    q: np.ndarray,
    query_score: float,
    tol: Optional[float] = None,
) -> int:
    """Count rows of ``vectors`` scoring strictly below ``query_score``.

    ``scores`` are the float-evaluated ``f_w`` of the same rows (any
    kernel).  Rows whose score clears the near-tie band are counted by the
    float comparison; rows inside the band are re-decided exactly.
    """
    if tol is None:
        tol = tie_tolerance(query_score)
    definite = int(np.count_nonzero(scores < query_score - tol))
    near = np.flatnonzero(np.abs(scores - query_score) <= tol)
    for i in near:
        if exact_strictly_less(w, vectors[i], q):
            definite += 1
    return definite


def count_strictly_better_matrix(
    scores: np.ndarray,
    P: np.ndarray,
    W_block: np.ndarray,
    q: np.ndarray,
    query_scores: np.ndarray,
) -> np.ndarray:
    """Column-wise :func:`count_strictly_better` for a score matrix.

    ``scores`` has shape ``(m_p, m_w_block)``; column ``j`` holds
    ``f_{W_block[j]}`` of every row of ``P``.  Used by the vectorized
    oracles, where all weights of a chunk are evaluated at once.
    """
    m_w = scores.shape[1]
    tols = TIE_REL_TOL * (1.0 + np.abs(query_scores))
    counts = (scores < query_scores - tols).sum(axis=0).astype(np.int64)
    near_rows, near_cols = np.nonzero(np.abs(scores - query_scores) <= tols)
    for i, j in zip(near_rows, near_cols):
        if exact_strictly_less(W_block[j], P[i], q):
            counts[j] += 1
    return counts
