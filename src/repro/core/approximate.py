"""Bounds-only (anytime) reverse rank queries.

The Grid-index classifies most pairs without any real score computation;
if an application tolerates a little uncertainty it can skip refinement
entirely and read the answer straight off the bounds:

* for each preference ``w``, counting Case-1 pairs gives a **certain**
  lower bound on ``rank(w, q)`` and Case-1 + Case-3 pairs an upper bound;
* ``upper < k``  → ``w`` certainly qualifies;
  ``lower >= k`` → certainly not;
  otherwise ``w`` is *undecided*.

:func:`reverse_topk_bounds` returns the certain and undecided sets —
sandwiching the exact answer — plus per-weight rank intervals, in one
refinement-free pass.  :func:`reverse_kranks_bounds` does the analogous
thing for reverse k-ranks: preferences whose rank interval cannot be
beaten by ``k`` others are certain members.

Typical uses: interactive dashboards that show the certain audience
immediately and refine the undecided sliver in the background, or
cardinality estimation for query planning.  The exact algorithms remain
the source of truth; tests enforce ``certain <= exact <= certain |
undecided`` on every instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

import numpy as np

from ..algorithms.base import duplicate_mask
from ..errors import InvalidParameterError
from ..stats.counters import OpCounter
from .gir import GridIndexRRQ


@dataclass(frozen=True)
class ApproxRTKResult:
    """Bounds-only reverse top-k answer.

    ``certain`` preferences definitely contain ``q`` in their top-k;
    ``undecided`` might.  The exact answer lies between ``certain`` and
    ``certain | undecided``.
    """

    certain: FrozenSet[int]
    undecided: FrozenSet[int]
    k: int
    rank_intervals: Tuple[Tuple[int, int], ...] = field(compare=False,
                                                        default=())
    counter: OpCounter = field(compare=False, default_factory=OpCounter)

    @property
    def possible(self) -> FrozenSet[int]:
        """Upper envelope: every preference that might qualify."""
        return self.certain | self.undecided

    def uncertainty(self) -> float:
        """Fraction of preferences left undecided."""
        total = len(self.rank_intervals)
        return len(self.undecided) / total if total else 0.0


def _rank_intervals(gir: GridIndexRRQ, q: np.ndarray,
                    counter: OpCounter) -> np.ndarray:
    """(lower, upper) strict-rank interval per preference, bounds only."""
    P = gir.P
    skip = duplicate_mask(P, q)
    live = ~skip
    pa_low = gir.grid.alpha_p[gir.PA.astype(np.intp, copy=False)][live]
    pa_high = gir.grid.alpha_p[gir.PA.astype(np.intp, copy=False) + 1][live]
    alpha_w = gir.grid.alpha_w
    out = np.empty((gir.W.shape[0], 2), dtype=np.int64)
    d = P.shape[1]
    for j in range(gir.W.shape[0]):
        w = gir.W[j]
        fq = float(np.dot(w, q))
        counter.pairwise += 1
        codes = gir.WA[j].astype(np.intp, copy=False)
        w_lo = alpha_w[codes]
        w_hi = alpha_w[codes + 1]
        upper_bounds = pa_high @ w_hi
        lower_bounds = pa_low @ w_lo
        counter.grid_lookups += 2 * pa_low.shape[0] * d
        counter.additions += 2 * pa_low.shape[0] * d
        certainly_better = int(np.count_nonzero(upper_bounds < fq))
        possibly_better = int(np.count_nonzero(lower_bounds < fq))
        counter.filtered_case1 += certainly_better
        counter.filtered_case2 += pa_low.shape[0] - possibly_better
        out[j, 0] = certainly_better
        out[j, 1] = possibly_better
    return out


def reverse_topk_bounds(gir: GridIndexRRQ, q, k: int) -> ApproxRTKResult:
    """Refinement-free RTK: certain members, undecided members, intervals."""
    if k <= 0:
        raise InvalidParameterError("k must be positive")
    q_arr = gir._check_query(q, k)
    counter = OpCounter()
    intervals = _rank_intervals(gir, q_arr, counter)
    certain = frozenset(int(j) for j in np.flatnonzero(intervals[:, 1] < k))
    certainly_out = intervals[:, 0] >= k
    undecided = frozenset(
        int(j) for j in np.flatnonzero(~certainly_out)
    ) - certain
    return ApproxRTKResult(
        certain=certain,
        undecided=undecided,
        k=k,
        rank_intervals=tuple((int(lo), int(hi)) for lo, hi in intervals),
        counter=counter,
    )


@dataclass(frozen=True)
class ApproxRKRResult:
    """Bounds-only reverse k-ranks answer.

    ``certain`` preferences are in every consistent exact answer;
    ``candidates`` is the smallest superset the bounds can prove contains
    the exact answer set.
    """

    certain: FrozenSet[int]
    candidates: FrozenSet[int]
    k: int
    counter: OpCounter = field(compare=False, default_factory=OpCounter)


def reverse_kranks_bounds(gir: GridIndexRRQ, q, k: int) -> ApproxRKRResult:
    """Refinement-free RKR envelope from per-preference rank intervals.

    A preference is *certainly* in the answer when fewer than ``k``
    others could possibly rank ``q`` better or equal (their lower bound
    does not exceed its upper bound); it remains a *candidate* when fewer
    than ``k`` others are certainly strictly better.
    """
    if k <= 0:
        raise InvalidParameterError("k must be positive")
    q_arr = gir._check_query(q, k)
    counter = OpCounter()
    intervals = _rank_intervals(gir, q_arr, counter)
    lowers = intervals[:, 0]
    uppers = intervals[:, 1]
    m = lowers.shape[0]
    certain = []
    candidates = []
    sorted_lowers = np.sort(lowers)
    sorted_uppers = np.sort(uppers)
    for j in range(m):
        # Others certainly at-least-as-good: upper_i < lower_j  (strictly
        # better in every consistent world).  Use sorted uppers.
        strictly_better = int(np.searchsorted(sorted_uppers, lowers[j],
                                              side="left"))
        if strictly_better < k:
            candidates.append(j)
        # Others possibly better-or-tied: lower_i <= upper_j.
        possibly_better = int(np.searchsorted(sorted_lowers, uppers[j],
                                              side="right")) - 1  # minus self
        if possibly_better < k:
            certain.append(j)
    return ApproxRKRResult(
        certain=frozenset(certain),
        candidates=frozenset(candidates),
        k=k,
        counter=counter,
    )
