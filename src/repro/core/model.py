"""The Grid-index performance model (paper Section 5.3).

Three layers, matching the paper's derivation:

1. **Exact combinatorics** — the probability that a d-dimensional score
   assembled from ``n^2`` equal sub-score intervals hits a given total,
   via the classic dice formula (Equation 15, after Uspensky).
2. **Normal approximation** — by the CLT the score is approximately
   ``N(mu', sigma')`` with ``mu' = r d / 2`` and
   ``sigma' = r sqrt(d) / (2 sqrt 3)`` (Lemma 1 / Equation 19).
3. **Worst-case filtering & Theorem 1** — the probability mass of the
   widest grid interval centred on the mean bounds the filtering
   performance from below (Equation 25), which inverts into the partition
   count needed for a target performance (Equation 26).

All functions are pure and cheap; the benchmarks validate them against
measured filtering rates (Figure 15b, Table 4).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy.stats import norm

from ..errors import InvalidParameterError


# ----------------------------------------------------------------------
# 1. exact dice combinatorics (Equation 15)
# ----------------------------------------------------------------------

def dice_ways(total: int, dice: int, faces: int) -> int:
    """Number of ways ``dice`` fair ``faces``-sided dice (faces 1..faces) sum to ``total``.

    The coefficient of ``x^total`` in ``(x + ... + x^faces)^dice``
    (Equation 14), evaluated with the inclusion-exclusion closed form.
    """
    if dice <= 0 or faces <= 0:
        raise InvalidParameterError("dice and faces must be positive")
    if total < dice or total > dice * faces:
        return 0
    ways = 0
    for k in range((total - dice) // faces + 1):
        term = math.comb(dice, k) * math.comb(total - faces * k - 1, dice - 1)
        ways += term if k % 2 == 0 else -term
    return ways


def dice_probability(total: int, dice: int, faces: int) -> float:
    """Probability of rolling ``total`` with ``dice`` fair ``faces``-sided dice."""
    return dice_ways(total, dice, faces) / faces ** dice


def score_cell_probability(cell_sum: int, d: int, partitions: int) -> float:
    """Probability the grid-quantized score lands on a given cell-index sum.

    The paper's mapping: each dimension's sub-score is one of ``n^2``
    equally likely intervals (a ``n^2``-sided die); the d-dimensional score
    sum corresponds to the dice total (Equation 13/15).  ``cell_sum``
    ranges over ``d .. d * n**2``.
    """
    return dice_probability(cell_sum, d, partitions ** 2)


# ----------------------------------------------------------------------
# 2. normal approximation (Lemma 1, Equation 19)
# ----------------------------------------------------------------------

def subscore_moments(value_range: float = 1.0) -> Tuple[float, float]:
    """Mean and standard deviation of one uniform sub-score on ``[0, r)``.

    Equation 16: ``mu = r/2``, ``sigma = r / (2 sqrt 3)``.
    """
    if value_range <= 0:
        raise InvalidParameterError("value_range must be positive")
    return value_range / 2.0, value_range / (2.0 * math.sqrt(3.0))


def score_distribution_params(d: int, value_range: float = 1.0) -> Tuple[float, float]:
    """``(mu', sigma')`` of the d-dimensional score (Equation 19)."""
    if d <= 0:
        raise InvalidParameterError("d must be positive")
    mu, sigma = subscore_moments(value_range)
    return mu * d, sigma * math.sqrt(d)


def score_pdf(x: np.ndarray, d: int, value_range: float = 1.0) -> np.ndarray:
    """Normal pdf of the score distribution (Equation 21)."""
    mu_p, sigma_p = score_distribution_params(d, value_range)
    return norm.pdf(np.asarray(x, dtype=np.float64), loc=mu_p, scale=sigma_p)


# ----------------------------------------------------------------------
# 3. worst-case filtering and Theorem 1
# ----------------------------------------------------------------------

def grid_interval_width(d: int, partitions: int, value_range: float = 1.0) -> float:
    """``Delta = r d / n^2`` — the score span of one grid cell stack (Eq. 23)."""
    if partitions <= 0:
        raise InvalidParameterError("partitions must be positive")
    if d <= 0:
        raise InvalidParameterError("d must be positive")
    return value_range * d / partitions ** 2


def worst_case_filtering(d: int, partitions: int) -> float:
    """Lower bound on the filtering performance ``F`` (Equation 25).

    The worst interval is the width-``Delta`` window centred on the score
    mean; its mass is ``1 - 2 * P(Z > sqrt(3 d) / n^2)`` under the standard
    normal, so ``F_worst = 2 * Phi_tail(sqrt(3 d) / n^2)``.
    """
    if partitions <= 0 or d <= 0:
        raise InvalidParameterError("d and partitions must be positive")
    z_delta = math.sqrt(3.0 * d) / partitions ** 2
    return float(2.0 * norm.sf(z_delta))


def ceil_partitions(bound: float) -> int:
    """Round a real-valued partition bound to a usable grid size.

    The single place Theorem 1's real-valued bound becomes an integer a
    grid constructor can take: ceil, clamped to at least one partition.
    Non-finite bounds (NaN/inf from a degenerate model input) raise
    instead of silently producing a nonsense grid.
    """
    try:
        value = float(bound)
    except (TypeError, ValueError):
        raise InvalidParameterError(
            f"partition bound must be a real number, got {bound!r}")
    if not math.isfinite(value):
        raise InvalidParameterError(
            f"partition bound must be finite, got {value!r}")
    return max(1, math.ceil(value))


def required_partitions(d: int, epsilon: float = 0.01) -> float:
    """Exact (real-valued) bound of Theorem 1: smallest ``n`` with ``F > 1 - eps``.

    ``delta`` satisfies ``Phi_tail(delta / 2) = (1 - eps) / 2`` and the
    theorem requires ``n > sqrt(2 sqrt(3 d) / delta)`` (Equation 26).
    Callers that need an integer grid size should go through
    :func:`recommend_partitions` (or :func:`ceil_partitions`), never
    truncate this float themselves.
    """
    if d <= 0:
        raise InvalidParameterError("d must be positive")
    if not isinstance(epsilon, (int, float)) or not math.isfinite(epsilon):
        raise InvalidParameterError(
            f"epsilon must be a finite number, got {epsilon!r}")
    if not 0 < epsilon < 1:
        raise InvalidParameterError("epsilon must be in (0, 1)")
    delta = 2.0 * norm.isf((1.0 - epsilon) / 2.0)
    return math.sqrt(2.0 * math.sqrt(3.0 * d) / delta)


def recommend_partitions(d: int, epsilon: float = 0.01,
                         power_of_two: bool = True) -> int:
    """Practical partition count: Theorem 1's bound rounded up.

    With ``power_of_two=True`` (the paper always uses ``n = 2^b``), rounds
    up to the next power of two — e.g. ``d = 20, eps = 1% -> 32``, the
    Section 5.3 worked example.
    """
    n = ceil_partitions(required_partitions(d, epsilon))
    if power_of_two:
        return 1 << (n - 1).bit_length()
    return n


def grid_memory_bytes(partitions: int, cell_bytes: int = 8) -> int:
    """Memory of an ``(n+1)^2`` grid — Section 5.3's 'less than 8 KB' check."""
    if partitions <= 0:
        raise InvalidParameterError("partitions must be positive")
    return (partitions + 1) ** 2 * cell_bytes


# ----------------------------------------------------------------------
# empirical validation helpers
# ----------------------------------------------------------------------

def measure_filtering(P: np.ndarray, W: np.ndarray, partitions: int,
                      value_range: float, queries: np.ndarray,
                      seed: int = 0) -> float:
    """Measured fraction of ``(p, w)`` pairs the grid decides without refinement.

    For each query point ``q`` and each weight ``w``, classifies all of
    ``P`` by the grid bounds and counts the Case 1/2 fraction — the
    quantity Table 4 and Figure 15b report.
    """
    from .approx import Quantizer, quantize_dataset
    from .grid import GridIndex

    # Mirror GridIndexRRQ: the weight axis spans the observed component
    # range ("the range of the attribute value", Section 3.1), which is
    # what keeps the grid useful when weights concentrate around 1/d.
    w_range = float(np.asarray(W).max())
    grid = GridIndex(
        np.linspace(0.0, value_range, partitions + 1),
        np.linspace(0.0, w_range, partitions + 1),
    )
    pq = Quantizer(grid.alpha_p)
    wq = Quantizer(grid.alpha_w)
    PA = quantize_dataset(P, pq).astype(np.intp)
    WA = quantize_dataset(W, wq).astype(np.intp)

    decided = 0
    total = 0
    for q in np.atleast_2d(queries):
        fq_all = W @ q
        for j in range(W.shape[0]):
            codes_w = WA[j]
            upper = grid.grid[PA + 1, codes_w + 1].sum(axis=1)
            lower = grid.grid[PA, codes_w].sum(axis=1)
            case3 = (lower <= fq_all[j]) & (upper >= fq_all[j])
            decided += int(P.shape[0] - np.count_nonzero(case3))
            total += P.shape[0]
    return decided / total if total else 0.0
