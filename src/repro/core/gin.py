"""GInTop-k — checking q's rank under one weight vector (Algorithm 1).

This is the workhorse both GIR query algorithms call once per weight
vector.  It scans the approximate vectors ``P^(A)`` (skipping the shared
Domin buffer), assembles Grid-index upper bounds to count products that
definitely out-rank ``q``, collects incomparable products as candidates,
and finally refines only those candidates with real inner products — all
with early termination the moment the rank can no longer satisfy the query
condition.

The scan is chunk-vectorized, and the bound sums are evaluated in their
algebraically factored form: ``U[f_w(p)] = sum_i alpha_p[p_a[i]+1] *
alpha_w[w_a[i]+1]`` is the inner product of the pre-gathered boundary
matrix ``alpha_p[PA+1]`` with the per-weight boundary vector
``alpha_w[w_a+1]`` — bit-for-bit the same cells of the Grid-index, but
assembled by BLAS instead of per-element gathers (a pure-Python/C++ loop
would read the 8 KB grid directly, as the paper describes).  ``chunk=1``
reproduces the textbook per-pair loop; operation counters reflect the
logical grid lookups and additions the paper counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..stats.counters import OpCounter
from .grid import GridIndex
from .ties import count_strictly_better, tie_tolerance

#: Sentinel returned when the scan proves w cannot satisfy the query
#: condition (Algorithm 1 returns -1).
ABORTED = -1

#: Default number of products processed per numpy call.
DEFAULT_CHUNK = 256


@dataclass
class GinContext:
    """Per-query state shared by the per-weight GInTop-k calls.

    Attributes
    ----------
    P:
        Original product matrix ``(m, d)``.
    PA:
        Approximate product codes ``(m, d)``, integer dtype.
    grid:
        The Grid-index.
    q:
        Query point ``(d,)``.
    domin:
        Boolean Domin mask over ``P`` — products known to strictly dominate
        ``q``.  Grows monotonically across calls (Algorithm 1 line 7-8).
    skip:
        Boolean mask of rows excluded from rank counting — exact duplicates
        of ``q``, which tie with it under every weight (see
        :func:`repro.algorithms.base.duplicate_mask`).
    chunk:
        Scan block size.
    """

    P: np.ndarray
    PA: np.ndarray
    grid: GridIndex
    q: np.ndarray
    domin: np.ndarray
    skip: np.ndarray = None
    chunk: int = DEFAULT_CHUNK
    track_domin: bool = True
    #: Pre-gathered per-cell boundaries of P: ``alpha_p[PA]`` and
    #: ``alpha_p[PA + 1]``.  Bound sums become inner products with the
    #: weight-side boundary vectors (see module docstring).
    pa_low: np.ndarray = None
    pa_high: np.ndarray = None

    def __post_init__(self):
        if self.skip is None:
            self.skip = np.zeros(self.P.shape[0], dtype=bool)
        if self.pa_low is None or self.pa_high is None:
            codes = self.PA.astype(np.intp, copy=False)
            self.pa_low = self.grid.alpha_p[codes]
            self.pa_high = self.grid.alpha_p[codes + 1]

    @property
    def domin_count(self) -> int:
        """Current size of the Domin buffer."""
        return int(self.domin.sum())


def gin_topk(ctx: GinContext, w: np.ndarray, w_codes: np.ndarray,
             limit: float, counter: OpCounter) -> int:
    """Rank of ``q`` under ``w``, or :data:`ABORTED` once ``rank >= limit``.

    Parameters
    ----------
    ctx:
        Shared per-query state (see :class:`GinContext`).
    w:
        The real weight vector (needed for ``f_w(q)`` and refinement).
    w_codes:
        Its approximate vector ``w^(a)``.
    limit:
        Abort threshold: ``k`` for RTK, the current k-th best rank for RKR,
        ``inf`` to force an exact rank.
    counter:
        Work tallies (additions, grid lookups, refinements, ...).
    """
    P, PA, grid, q, domin = ctx.P, ctx.PA, ctx.grid, ctx.q, ctx.domin
    skip = ctx.skip
    d = P.shape[1]
    fq = float(np.dot(w, q))
    tol = tie_tolerance(fq)
    counter.pairwise += 1

    rnk = int(domin.sum())
    counter.dominated_skips += rnk
    if rnk >= limit:
        counter.early_terminations += 1
        return ABORTED

    w_lo = np.asarray(w_codes, dtype=np.intp)
    w_hi = w_lo + 1
    w_bound_lo = grid.alpha_w[w_lo]
    w_bound_hi = grid.alpha_w[w_hi]
    cand_blocks: List[np.ndarray] = []
    m = P.shape[0]
    for start in range(0, m, ctx.chunk):
        stop = min(start + ctx.chunk, m)
        live = np.flatnonzero(~(domin[start:stop] | skip[start:stop])) + start
        if live.size == 0:
            continue
        counter.approx_accessed += live.size
        counter.grid_lookups += live.size * d
        counter.additions += live.size * d
        upper = ctx.pa_high[live] @ w_bound_hi

        # Case 1 only when the bound clears f_w(q) by the near-tie band:
        # anything closer is refined, where ties are resolved exactly.
        case1 = upper < fq - tol
        n_case1 = int(np.count_nonzero(case1))
        if n_case1:
            rnk += n_case1
            counter.filtered_case1 += n_case1
            # Lines 7-8: products found preceding q that also strictly
            # dominate it join the shared Domin buffer.
            if ctx.track_domin:
                rows = live[case1]
                counter.points_accessed += rows.size
                dominating = np.all(P[rows] < q, axis=1)
                if dominating.any():
                    domin[rows[dominating]] = True
            if rnk >= limit:
                counter.early_terminations += 1
                return ABORTED

        rest = live[~case1]
        if rest.size:
            counter.grid_lookups += rest.size * d
            counter.additions += rest.size * d
            lower = ctx.pa_low[rest] @ w_bound_lo
            case3 = lower <= fq + tol
            counter.filtered_case2 += int(np.count_nonzero(~case3))
            if case3.any():
                cand_blocks.append(rest[case3])

    # Refinement (line 15): real scores for the incomparable products only,
    # still aborting as soon as the limit is hit.
    for block in cand_blocks:
        for start in range(0, block.size, ctx.chunk):
            rows = block[start:start + ctx.chunk]
            counter.pairwise += rows.size
            counter.points_accessed += rows.size
            counter.refined += rows.size
            scores = P[rows] @ w
            rnk += count_strictly_better(scores, P[rows], w, q, fq, tol)
            if rnk >= limit:
                counter.early_terminations += 1
                return ABORTED
    return rnk
