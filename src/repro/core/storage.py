"""Crash-safe persistence for a built Grid-index (Section 3.2's storage story).

A deployed reverse-rank-query service pre-computes the approximate vector
sets ``P^(A)`` / ``W^(A)`` once and ships them alongside the raw data; at
query time only the small grid has to be rebuilt (it is an outer product
of two boundary vectors).  This module serializes everything a
:class:`~repro.core.gir.GridIndexRRQ` needs into one directory:

* ``products.rrq`` / ``weights.rrq`` — the raw data (``repro.data.io``);
* ``pa.rrqa`` / ``wa.rrqa`` — the bit-packed approximate vectors
  (``b = ceil(log2 n)`` bits per component, the Section 3.2 encoding);
* ``grid.meta`` — boundary vectors and parameters, as JSON;
* ``MANIFEST.json`` — per-file CRC32 checksums, **written last**.

Crash safety contract
---------------------
Every artifact lands via an atomic write-to-temp-then-rename
(:func:`repro.data.io.atomic_write_bytes`), and the manifest is the
commit point: it is only written after every artifact it describes is
durably in place.  A crash at any instant therefore leaves the directory
in one of three detectable states — old index, new index, or *provably
inconsistent* (checksum mismatch / missing file), never a
loadable-but-wrong index.  The chaos suite (``tests/chaos/``) drives
torn writes and byte corruption through the fault-injection hooks to
enforce exactly that.

On load, every artifact is verified against the manifest; a mismatch
raises a structured :class:`~repro.errors.IndexCorruptionError` naming
the damaged artifacts.  When only the *derived* artifacts
(``pa.rrqa`` / ``wa.rrqa``) are damaged the index is **recoverable**:
``load_index(directory, recover=True)`` rebuilds them from the raw data
(quantization is deterministic) and heals the directory in place.

Directories written before the manifest existed (format v1 without
``MANIFEST.json``) still load; they just fall back to the original
deep check (decoded approximate vectors must match a fresh quantization
of the raw data).
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from ..data.io import (
    approx_to_bytes,
    atomic_write_bytes,
    load_approx,
    load_products,
    load_weights,
    products_to_bytes,
    weights_to_bytes,
)
from ..errors import DataValidationError, IndexCorruptionError
from ..resilience.faults import fire
from .approx import bits_needed
from .gir import GridIndexRRQ
from .grid import GridIndex

PathLike = Union[str, Path]

_META_NAME = "grid.meta"
_MANIFEST_NAME = "MANIFEST.json"
_FORMAT_VERSION = 1
_MANIFEST_FORMAT = 1

#: Artifacts listed in the manifest, in write order.
ARTIFACT_NAMES = ("products.rrq", "weights.rrq", "pa.rrqa", "wa.rrqa",
                  _META_NAME)

#: Artifacts derivable from the raw data — damage here is recoverable.
REBUILDABLE = frozenset({"pa.rrqa", "wa.rrqa"})


def _crc32(data: bytes) -> str:
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"


# ----------------------------------------------------------------------
# generic manifest machinery (shared with repro.durability.snapshot)
# ----------------------------------------------------------------------


def write_manifest_dir(directory: PathLike, payloads: Dict[str, bytes],
                       site_prefix: str = "storage.write") -> Dict[str, dict]:
    """Write ``payloads`` atomically into ``directory``, manifest last.

    The generic commit protocol both the index store and the durability
    snapshots use: each artifact lands via temp-file + fsync + rename
    (fault site ``<site_prefix>.<name>``), and ``MANIFEST.json`` —
    per-file byte counts and CRC32 checksums — is written only after
    every artifact it describes is durably in place.  Returns the
    per-file manifest entries.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    files = {}
    for name, data in payloads.items():
        atomic_write_bytes(path / name, data, site=f"{site_prefix}.{name}")
        files[name] = {"bytes": len(data), "crc32": _crc32(data)}
    manifest = {
        "format": _MANIFEST_FORMAT,
        "checksum": "crc32",
        "files": files,
    }
    atomic_write_bytes(
        path / _MANIFEST_NAME,
        json.dumps(manifest, indent=2, sort_keys=True).encode(),
        site=f"{site_prefix}.{_MANIFEST_NAME}",
    )
    return files


def verify_manifest_dir(directory: PathLike) -> dict:
    """Check every artifact in ``directory`` against its manifest.

    Returns ``{"ok": bool, "manifest": "ok"|"missing"|"corrupt",
    "artifacts": {name: status}, "damaged": [...]}`` without parsing any
    artifact — pure presence + checksum verification.
    """
    path = Path(directory)
    report: dict = {"ok": False, "manifest": "ok",
                    "artifacts": {}, "damaged": []}
    if not (path / _MANIFEST_NAME).exists():
        report["manifest"] = "missing"
        report["damaged"] = [_MANIFEST_NAME]
        return report
    try:
        manifest = _read_manifest(path)
    except IndexCorruptionError:
        report["manifest"] = "corrupt"
        report["damaged"] = [_MANIFEST_NAME]
        return report
    for name, entry in manifest["files"].items():
        target = path / name
        if not target.exists():
            status = "missing"
        else:
            data = target.read_bytes()
            status = ("ok" if _crc32(data) == entry.get("crc32")
                      and len(data) == entry.get("bytes") else "corrupt")
        report["artifacts"][name] = status
        if status != "ok":
            report["damaged"].append(name)
    report["ok"] = not report["damaged"]
    return report


def _artifact_payloads(gir: GridIndexRRQ) -> Dict[str, bytes]:
    """Serialize every index artifact to bytes (the save/heal unit)."""
    bits = bits_needed(gir.partitions)
    meta = {
        "version": _FORMAT_VERSION,
        "partitions": gir.partitions,
        "bits": bits,
        "chunk": gir.chunk,
        "use_domin": gir.use_domin,
        "alpha_p": gir.grid.alpha_p.tolist(),
        "alpha_w": gir.grid.alpha_w.tolist(),
    }
    return {
        "products.rrq": products_to_bytes(gir.products),
        "weights.rrq": weights_to_bytes(gir.weights),
        "pa.rrqa": approx_to_bytes(gir.PA.astype(np.int64), bits),
        "wa.rrqa": approx_to_bytes(gir.WA.astype(np.int64), bits),
        _META_NAME: json.dumps(meta, indent=2).encode(),
    }


def save_index(directory: PathLike, gir: GridIndexRRQ) -> dict:
    """Persist a built GIR index; returns a manifest of bytes written.

    Artifacts are written atomically in a fixed order and the checksum
    manifest last — the commit point.  Re-saving over an existing index
    is safe: a reader (or a crash) at any instant sees a consistent or
    provably inconsistent directory, never a torn file.
    """
    path = Path(directory)
    files = write_manifest_dir(path, _artifact_payloads(gir))
    return {
        "products_bytes": files["products.rrq"]["bytes"],
        "weights_bytes": files["weights.rrq"]["bytes"],
        "pa_bytes": files["pa.rrqa"]["bytes"],
        "wa_bytes": files["wa.rrqa"]["bytes"],
        "meta_bytes": files[_META_NAME]["bytes"],
        "manifest_bytes": (path / _MANIFEST_NAME).stat().st_size,
    }


# ----------------------------------------------------------------------
# verification
# ----------------------------------------------------------------------


def _read_manifest(path: Path) -> dict:
    raw = (path / _MANIFEST_NAME).read_bytes()
    try:
        manifest = json.loads(raw)
    except (json.JSONDecodeError, ValueError):
        raise IndexCorruptionError(
            f"{path}: {_MANIFEST_NAME} is not valid JSON (corrupted manifest)",
            directory=str(path), artifacts=(_MANIFEST_NAME,),
        ) from None
    if manifest.get("format") != _MANIFEST_FORMAT or \
            not isinstance(manifest.get("files"), dict):
        raise IndexCorruptionError(
            f"{path}: unsupported or malformed manifest",
            directory=str(path), artifacts=(_MANIFEST_NAME,),
        )
    return manifest


def verify_index(directory: PathLike) -> dict:
    """Check every artifact against the manifest without loading the index.

    Returns a JSON-ready report::

        {"ok": bool, "manifest": "ok"|"missing"|"corrupt",
         "artifacts": {name: "ok"|"missing"|"corrupt"},
         "damaged": [...], "recoverable": bool}

    ``recoverable`` is True when every damaged artifact can be rebuilt
    from the (intact) raw data.  Legacy directories without a manifest
    report ``manifest: "missing"`` and only presence checks.
    """
    path = Path(directory)
    if not (path / _MANIFEST_NAME).exists():
        report: dict = {"ok": False, "manifest": "missing",
                        "artifacts": {}, "damaged": [],
                        "recoverable": False}
        for name in ARTIFACT_NAMES:
            status = "ok" if (path / name).exists() else "missing"
            report["artifacts"][name] = status
            if status != "ok":
                report["damaged"].append(name)
    else:
        report = verify_manifest_dir(path)
        report["recoverable"] = False
        if report["manifest"] == "corrupt":
            report["artifacts"] = {name: "unverified"
                                   for name in ARTIFACT_NAMES}
            return report
    report["ok"] = not report["damaged"]
    report["recoverable"] = bool(report["damaged"]) and \
        set(report["damaged"]) <= REBUILDABLE
    return report


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------


def _gir_from_parts(products, weights, meta: dict) -> GridIndexRRQ:
    grid = GridIndex(np.asarray(meta["alpha_p"]), np.asarray(meta["alpha_w"]))
    return GridIndexRRQ(
        products,
        weights,
        partitions=meta["partitions"],
        grid=grid,
        chunk=int(meta["chunk"]),
        use_domin=bool(meta["use_domin"]),
    )


def _load_meta(path: Path) -> dict:
    meta_path = path / _META_NAME
    try:
        meta = json.loads(meta_path.read_text())
    except (json.JSONDecodeError, ValueError):
        raise IndexCorruptionError(
            f"{path}: {_META_NAME} is not valid JSON",
            directory=str(path), artifacts=(_META_NAME,),
        ) from None
    if meta.get("version") != _FORMAT_VERSION:
        raise DataValidationError(
            f"{path}: unsupported index version {meta.get('version')}"
        )
    return meta


def load_index(directory: PathLike, recover: bool = False) -> GridIndexRRQ:
    """Load a GIR index saved by :func:`save_index`, with integrity checks.

    Parameters
    ----------
    directory:
        The index directory.
    recover:
        When True and corruption is confined to the derived artifacts
        (``pa.rrqa`` / ``wa.rrqa``), rebuild them from the raw data and
        heal the directory in place instead of raising.

    Raises
    ------
    DataValidationError
        Not an index directory, or a legacy (manifest-less) directory
        failed its deep consistency check.
    IndexCorruptionError
        A manifest checksum failed.  ``exc.recoverable`` tells whether
        ``recover=True`` would have succeeded; ``exc.artifacts`` names
        the damage.
    """
    path = Path(directory)
    fire("storage.load")
    if not (path / _META_NAME).exists() and \
            not (path / _MANIFEST_NAME).exists():
        raise DataValidationError(f"{directory}: not an index directory "
                                  f"(missing {_META_NAME})")

    if (path / _MANIFEST_NAME).exists():
        report = verify_index(path)
        if not report["ok"]:
            if recover and report["recoverable"]:
                return _rebuild_derived(path)
            damaged: List[str] = report["damaged"]
            raise IndexCorruptionError(
                f"{directory}: integrity check failed for "
                f"{', '.join(sorted(damaged))} (checksum mismatch or "
                "missing file); "
                + ("rebuildable from raw data with recover=True"
                   if report["recoverable"] else
                   "raw data or metadata damaged — restore from backup or "
                   "rebuild the index from the original data set"),
                directory=str(directory), artifacts=tuple(sorted(damaged)),
                recoverable=report["recoverable"],
            )
    else:
        # Legacy directory: no checksums, so require every artifact to be
        # present (a crashed pre-manifest save must not half-load).
        missing = [name for name in ARTIFACT_NAMES
                   if not (path / name).exists()]
        if missing:
            raise DataValidationError(
                f"{directory}: incomplete index (missing "
                f"{', '.join(sorted(missing))}); likely an interrupted save"
            )

    meta = _load_meta(path)
    try:
        products = load_products(path / "products.rrq")
        weights = load_weights(path / "weights.rrq")
        pa, _ = load_approx(path / "pa.rrqa")
        wa, _ = load_approx(path / "wa.rrqa")
    except OSError as exc:
        raise IndexCorruptionError(
            f"{directory}: I/O error reading index artifacts ({exc})",
            directory=str(directory),
        ) from exc
    gir = _gir_from_parts(products, weights, meta)

    if not np.array_equal(pa, gir.PA.astype(np.int64)):
        raise DataValidationError(
            f"{directory}: stored P^(A) does not match the raw products "
            "(stale or corrupted index)"
        )
    if not np.array_equal(wa, gir.WA.astype(np.int64)):
        raise DataValidationError(
            f"{directory}: stored W^(A) does not match the raw weights "
            "(stale or corrupted index)"
        )
    return gir


def _rebuild_derived(path: Path) -> GridIndexRRQ:
    """Recovery: rebuild ``pa``/``wa`` from intact raw data + metadata.

    Quantization is deterministic, so the healed artifacts are
    byte-identical to what the original save produced; the whole
    directory (manifest included) is rewritten through the normal
    atomic save path.
    """
    meta = _load_meta(path)
    products = load_products(path / "products.rrq")
    weights = load_weights(path / "weights.rrq")
    gir = _gir_from_parts(products, weights, meta)
    save_index(path, gir)
    return gir


def index_size_report(directory: PathLike) -> dict:
    """Byte sizes of each index component (the Section 3.2 overhead story)."""
    path = Path(directory)
    report = {}
    for name in ARTIFACT_NAMES + (_MANIFEST_NAME,):
        target = path / name
        report[name] = target.stat().st_size if target.exists() else 0
    raw = report["products.rrq"] + report["weights.rrq"]
    approx = report["pa.rrqa"] + report["wa.rrqa"]
    report["approx_over_raw"] = approx / raw if raw else 0.0
    return report
