"""Persistence for a built Grid-index (Section 3.2's storage story).

A deployed reverse-rank-query service pre-computes the approximate vector
sets ``P^(A)`` / ``W^(A)`` once and ships them alongside the raw data; at
query time only the small grid has to be rebuilt (it is an outer product
of two boundary vectors).  This module serializes everything a
:class:`~repro.core.gir.GridIndexRRQ` needs into one directory:

* ``products.rrq`` / ``weights.rrq`` — the raw data (``repro.data.io``);
* ``pa.rrqa`` / ``wa.rrqa`` — the bit-packed approximate vectors
  (``b = ceil(log2 n)`` bits per component, the Section 3.2 encoding);
* ``grid.meta`` — boundary vectors and parameters, as JSON.

Loading verifies that the decoded approximate vectors match a fresh
quantization of the raw data, so a stale or corrupted index directory is
rejected instead of silently returning wrong bounds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..data.io import (
    load_approx,
    load_products,
    load_weights,
    save_approx,
    save_products,
    save_weights,
)
from ..errors import DataValidationError
from .approx import bits_needed
from .gir import GridIndexRRQ
from .grid import GridIndex

PathLike = Union[str, Path]

_META_NAME = "grid.meta"
_FORMAT_VERSION = 1


def save_index(directory: PathLike, gir: GridIndexRRQ) -> dict:
    """Persist a built GIR index; returns a manifest of bytes written."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    bits = bits_needed(gir.partitions)
    manifest = {
        "products_bytes": save_products(path / "products.rrq", gir.products),
        "weights_bytes": save_weights(path / "weights.rrq", gir.weights),
        "pa_bytes": save_approx(path / "pa.rrqa",
                                gir.PA.astype(np.int64), bits),
        "wa_bytes": save_approx(path / "wa.rrqa",
                                gir.WA.astype(np.int64), bits),
    }
    meta = {
        "version": _FORMAT_VERSION,
        "partitions": gir.partitions,
        "bits": bits,
        "chunk": gir.chunk,
        "use_domin": gir.use_domin,
        "alpha_p": gir.grid.alpha_p.tolist(),
        "alpha_w": gir.grid.alpha_w.tolist(),
    }
    (path / _META_NAME).write_text(json.dumps(meta, indent=2))
    manifest["meta_bytes"] = (path / _META_NAME).stat().st_size
    return manifest


def load_index(directory: PathLike) -> GridIndexRRQ:
    """Load a GIR index saved by :func:`save_index`, with integrity checks."""
    path = Path(directory)
    meta_path = path / _META_NAME
    if not meta_path.exists():
        raise DataValidationError(f"{directory}: not an index directory "
                                  f"(missing {_META_NAME})")
    meta = json.loads(meta_path.read_text())
    if meta.get("version") != _FORMAT_VERSION:
        raise DataValidationError(
            f"{directory}: unsupported index version {meta.get('version')}"
        )

    products = load_products(path / "products.rrq")
    weights = load_weights(path / "weights.rrq")
    grid = GridIndex(np.asarray(meta["alpha_p"]), np.asarray(meta["alpha_w"]))
    gir = GridIndexRRQ(
        products,
        weights,
        partitions=meta["partitions"],
        grid=grid,
        chunk=int(meta["chunk"]),
        use_domin=bool(meta["use_domin"]),
    )

    pa, _ = load_approx(path / "pa.rrqa")
    wa, _ = load_approx(path / "wa.rrqa")
    if not np.array_equal(pa, gir.PA.astype(np.int64)):
        raise DataValidationError(
            f"{directory}: stored P^(A) does not match the raw products "
            "(stale or corrupted index)"
        )
    if not np.array_equal(wa, gir.WA.astype(np.int64)):
        raise DataValidationError(
            f"{directory}: stored W^(A) does not match the raw weights "
            "(stale or corrupted index)"
        )
    return gir


def index_size_report(directory: PathLike) -> dict:
    """Byte sizes of each index component (the Section 3.2 overhead story)."""
    path = Path(directory)
    report = {}
    for name in ("products.rrq", "weights.rrq", "pa.rrqa", "wa.rrqa",
                 _META_NAME):
        target = path / name
        report[name] = target.stat().st_size if target.exists() else 0
    raw = report["products.rrq"] + report["weights.rrq"]
    approx = report["pa.rrqa"] + report["wa.rrqa"]
    report["approx_over_raw"] = approx / raw if raw else 0.0
    return report
