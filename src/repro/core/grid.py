"""The Grid-index (paper Section 3).

The Grid-index is a tiny ``(n+1) x (n+1)`` array of pre-multiplied partition
boundaries: ``Grid[i][j] = alpha_p[i] * alpha_w[j]`` (Equation 1), where
``alpha_p`` partitions the product value range ``[0, r)`` and ``alpha_w``
partitions the weight range ``[0, 1]``.  Looking up the cell of a quantized
pair ``(p_a[i], w_a[i])`` yields a lower bound on ``p[i] * w[i]``; the
diagonally adjacent cell yields an upper bound.  Summing over dimensions
gives the score bounds of Equations 3-4 *without any multiplication*.

The class supports arbitrary monotone boundary vectors so the non-equal-
width extension (paper Section 7, implemented in
:mod:`repro.ext.adaptive_grid`) can reuse all of the bound machinery; the
paper's equal-width grid is the :meth:`GridIndex.equal_width` constructor.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import InvalidParameterError

#: Default number of partitions; Section 5.3 shows n = 32 filters > 99 %
#: of the data for every dimensionality the paper evaluates.
DEFAULT_PARTITIONS = 32


def _check_boundaries(alpha: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(alpha, dtype=np.float64).reshape(-1)
    if arr.shape[0] < 2:
        raise InvalidParameterError(f"{name} needs at least 2 boundaries")
    if np.any(np.diff(arr) <= 0):
        raise InvalidParameterError(f"{name} must be strictly increasing")
    if arr[0] < 0:
        raise InvalidParameterError(f"{name} must start at a non-negative value")
    return arr


class GridIndex:
    """Pre-computed approximate multiplication table.

    Parameters
    ----------
    alpha_p:
        ``n + 1`` strictly increasing boundaries of the product value range.
    alpha_w:
        ``n + 1`` strictly increasing boundaries of the weight value range.
    """

    def __init__(self, alpha_p: np.ndarray, alpha_w: np.ndarray):
        self.alpha_p = _check_boundaries(alpha_p, "alpha_p")
        self.alpha_w = _check_boundaries(alpha_w, "alpha_w")
        if self.alpha_p.shape != self.alpha_w.shape:
            raise InvalidParameterError(
                "alpha_p and alpha_w must have the same number of boundaries"
            )
        #: Equation 1: all boundary products.
        self.grid = np.outer(self.alpha_p, self.alpha_w)
        self.grid.setflags(write=False)

    # ------------------------------------------------------------------

    @classmethod
    def equal_width(cls, partitions: int = DEFAULT_PARTITIONS,
                    value_range: float = 1.0) -> "GridIndex":
        """The paper's grid: ``n`` equal partitions of ``[0, r)`` and ``[0, 1]``."""
        if partitions < 1:
            raise InvalidParameterError("partitions must be positive")
        if value_range <= 0:
            raise InvalidParameterError("value_range must be positive")
        alpha_p = np.linspace(0.0, value_range, partitions + 1)
        alpha_w = np.linspace(0.0, 1.0, partitions + 1)
        return cls(alpha_p, alpha_w)

    # ------------------------------------------------------------------

    @property
    def partitions(self) -> int:
        """Number of partitions ``n``."""
        return self.alpha_p.shape[0] - 1

    @property
    def value_range(self) -> float:
        """Upper end of the product boundary vector (``r`` for equal width)."""
        return float(self.alpha_p[-1])

    @property
    def memory_bytes(self) -> int:
        """Size of the grid array — the 'negligible memory cost' of Section 5.3."""
        return self.grid.nbytes

    # ------------------------------------------------------------------

    def cell_bounds(self, p_code: int, w_code: int) -> Tuple[float, float]:
        """Lower and upper bound of ``p[i] * w[i]`` for one quantized pair."""
        n = self.partitions
        if not (0 <= p_code < n and 0 <= w_code < n):
            raise InvalidParameterError(
                f"codes must lie in [0, {n}); got ({p_code}, {w_code})"
            )
        return (
            float(self.grid[p_code, w_code]),
            float(self.grid[p_code + 1, w_code + 1]),
        )

    def lower_bounds(self, p_codes: np.ndarray, w_codes: np.ndarray) -> np.ndarray:
        """Equation 3 for a batch: ``L[f_w(p)]`` per row of ``p_codes``.

        ``p_codes`` has shape ``(m, d)``; ``w_codes`` has shape ``(d,)``.
        """
        return self.grid[p_codes, w_codes].sum(axis=-1)

    def upper_bounds(self, p_codes: np.ndarray, w_codes: np.ndarray) -> np.ndarray:
        """Equation 4 for a batch: ``U[f_w(p)]`` per row of ``p_codes``."""
        return self.grid[p_codes + 1, w_codes + 1].sum(axis=-1)

    def score_bounds(self, p_codes: np.ndarray,
                     w_codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Both bounds at once (Equations 3 and 4)."""
        return self.lower_bounds(p_codes, w_codes), self.upper_bounds(
            p_codes, w_codes
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GridIndex(n={self.partitions}, "
                f"value_range={self.value_range}, "
                f"memory={self.memory_bytes}B)")
