"""Quantizers producing the approximate vectors ``P^(A)`` and ``W^(A)``.

Section 3.1: the approximate vector of a point is
``p_a[i] = floor(p[i] * n / r)`` — the index of the partition each
component falls into.  The same recipe with ``r = 1`` covers weights.
:class:`Quantizer` generalizes this to arbitrary strictly increasing
boundary vectors (needed by the adaptive-grid extension) via binary search;
the equal-width case uses the closed-form floor division.

Quantized codes are stored as the smallest unsigned integer dtype that fits
``n`` values, which is what makes the approximate files small (Section 3.2;
the bit-exact packing lives in :mod:`repro.core.bitstring`).
"""

from __future__ import annotations

import numpy as np

from ..errors import DataValidationError, InvalidParameterError


def code_dtype(partitions: int) -> np.dtype:
    """Smallest unsigned dtype able to hold codes in ``[0, partitions)``."""
    if partitions <= 0:
        raise InvalidParameterError("partitions must be positive")
    if partitions <= 2 ** 8:
        return np.dtype(np.uint8)
    if partitions <= 2 ** 16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


def bits_needed(partitions: int) -> int:
    """Bits per component for ``partitions`` intervals (``b`` with ``n = 2^b``)."""
    if partitions <= 0:
        raise InvalidParameterError("partitions must be positive")
    return max(1, int(np.ceil(np.log2(partitions))))


class Quantizer:
    """Maps real values to partition codes for one boundary vector.

    Parameters
    ----------
    boundaries:
        ``n + 1`` strictly increasing partition boundaries.  Values must lie
        in ``[boundaries[0], boundaries[-1]]``; the top boundary is mapped
        into the last partition (the paper's range is half-open, but real
        data can sit exactly on the maximum).
    equal_width:
        When True (auto-detected by :meth:`equal_width`), use the closed
        form instead of binary search.
    """

    def __init__(self, boundaries: np.ndarray):
        arr = np.asarray(boundaries, dtype=np.float64).reshape(-1)
        if arr.shape[0] < 2 or np.any(np.diff(arr) <= 0):
            raise InvalidParameterError(
                "boundaries must be strictly increasing with length >= 2"
            )
        self.boundaries = arr
        self.partitions = arr.shape[0] - 1
        self._dtype = code_dtype(self.partitions)
        widths = np.diff(arr)
        self._equal_width = bool(np.allclose(widths, widths[0]))
        self._lo = float(arr[0])
        self._hi = float(arr[-1])
        self._width = float(widths[0])

    # ------------------------------------------------------------------

    @classmethod
    def equal_width(cls, partitions: int, value_range: float = 1.0,
                    low: float = 0.0) -> "Quantizer":
        """The paper's quantizer: ``n`` equal partitions of ``[low, low + r)``."""
        if value_range <= 0:
            raise InvalidParameterError("value_range must be positive")
        return cls(np.linspace(low, low + value_range, partitions + 1))

    # ------------------------------------------------------------------

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Partition code of every element of ``values`` (any shape)."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size and (arr.min() < self._lo - 1e-12
                         or arr.max() > self._hi + 1e-12):
            raise DataValidationError(
                f"values outside quantizer range [{self._lo}, {self._hi}]"
            )
        if self._equal_width:
            codes = np.floor((arr - self._lo) / self._width).astype(np.int64)
        else:
            codes = np.searchsorted(self.boundaries, arr, side="right") - 1
        # Values equal to the top boundary belong to the last partition.
        codes = np.clip(codes, 0, self.partitions - 1)
        return codes.astype(self._dtype)

    def cell_low(self, codes: np.ndarray) -> np.ndarray:
        """Lower boundary of each code's partition."""
        return self.boundaries[np.asarray(codes, dtype=np.int64)]

    def cell_high(self, codes: np.ndarray) -> np.ndarray:
        """Upper boundary of each code's partition."""
        return self.boundaries[np.asarray(codes, dtype=np.int64) + 1]

    def reconstruct(self, codes: np.ndarray) -> np.ndarray:
        """Mid-point de-quantization (used by compression-loss tests)."""
        idx = np.asarray(codes, dtype=np.int64)
        return (self.boundaries[idx] + self.boundaries[idx + 1]) / 2.0


def quantize_dataset(values: np.ndarray, quantizer: Quantizer) -> np.ndarray:
    """Approximate vectors of a whole ``(m, d)`` matrix (``P^(A)`` / ``W^(A)``)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise InvalidParameterError("quantize_dataset expects a (m, d) matrix")
    return quantizer.quantize(arr)
