"""Data sets: containers, synthetic generators, real-data stand-ins, I/O."""

from .datasets import ProductSet, WeightSet, check_compatible, check_query_point, score
from .synthetic import (
    anticorrelated_products,
    clustered_products,
    clustered_weights,
    exponential_products,
    exponential_weights,
    generate_products,
    generate_weights,
    normal_products,
    normal_weights,
    uniform_products,
    uniform_weights,
)
from .real import DianpingData, color, dianping, house

__all__ = [
    "ProductSet", "WeightSet", "check_compatible", "check_query_point", "score",
    "uniform_products", "clustered_products", "anticorrelated_products",
    "normal_products", "exponential_products", "uniform_weights",
    "clustered_weights", "normal_weights", "exponential_weights",
    "generate_products", "generate_weights",
    "house", "color", "dianping", "DianpingData",
]
