"""Synthetic stand-ins for the paper's three real data sets.

The paper evaluates on HOUSE, COLOR and DIANPING (Section 6.1).  None of
those files ship with this reproduction (the DIANPING crawl in particular is
proprietary), so this module builds the closest synthetic equivalents that
exercise the same code paths:

* :func:`house` — HOUSE is 201,760 6-d tuples of *percentages of an American
  family's annual payment* across six expense categories.  Percentage shares
  are compositional data: non-negative, correlated (a family that spends a
  large share on heating spends less elsewhere), summing to ~100.  We sample
  a Dirichlet mixture with category-skewed concentration parameters, which
  preserves exactly that compositional anti-correlation.

* :func:`color` — COLOR is 68,040 9-d HSV image features.  Image features
  clump around dominant colours, so we generate a clustered Gaussian mixture
  in 9 dimensions with long-tailed cluster sizes.

* :func:`dianping` — DIANPING is built (per the paper) by averaging each
  user's review scores into a preference vector ``w`` and each restaurant's
  review scores into an attribute vector ``p`` over six rating aspects.  We
  simulate the *same pipeline*: latent restaurant quality vectors, latent
  user taste vectors, per-review scores = quality + taste bias + noise, then
  the identical per-user / per-restaurant averaging.  The resulting
  correlation structure (users who review harshly do so across aspects;
  restaurant aspect scores correlate) matches the mechanism, which is what
  the RRQ algorithms are sensitive to.

Every generator returns data already scaled into the synthetic experiments'
value-range convention so the rest of the pipeline is distribution-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from .datasets import ProductSet, WeightSet
from .synthetic import RngLike, _rng

#: Default (scaled-down) cardinalities.  The paper's real sets are 68K-3.6M
#: tuples; pure-Python timings need smaller defaults, growable via arguments.
HOUSE_DEFAULT_SIZE = 4_000
COLOR_DEFAULT_SIZE = 3_000
DIANPING_DEFAULT_RESTAURANTS = 2_000
DIANPING_DEFAULT_USERS = 2_000

HOUSE_DIM = 6
COLOR_DIM = 9
DIANPING_DIM = 6

#: The six DIANPING rating aspects (paper Section 6.1).
DIANPING_ASPECTS = (
    "rate",
    "food_flavor",
    "cost",
    "service",
    "environment",
    "waiting_time",
)

#: The six HOUSE expenditure categories (paper Section 6.1).
HOUSE_CATEGORIES = (
    "gas",
    "electricity",
    "water",
    "heating",
    "insurance",
    "property_tax",
)


def house(size: int = HOUSE_DEFAULT_SIZE, value_range: float = 1.0,
          seed: RngLike = None) -> ProductSet:
    """HOUSE stand-in: compositional expenditure shares over six categories.

    Returns a 6-d :class:`ProductSet` whose rows are expense shares in
    ``[0, value_range)``.  Shares are drawn from a three-component Dirichlet
    mixture (urban / suburban / rural spending profiles) so categories are
    negatively correlated as in real expenditure data.
    """
    if size <= 0:
        raise InvalidParameterError("size must be positive")
    rng = _rng(seed)
    profiles = np.array([
        # gas, electricity, water, heating, insurance, property_tax
        [2.0, 6.0, 2.0, 3.0, 4.0, 8.0],   # urban: tax/electricity heavy
        [5.0, 5.0, 3.0, 5.0, 4.0, 4.0],   # suburban: balanced
        [8.0, 4.0, 2.0, 8.0, 3.0, 2.0],   # rural: gas/heating heavy
    ])
    mix = rng.choice(len(profiles), size=size, p=[0.45, 0.35, 0.20])
    values = np.empty((size, HOUSE_DIM))
    for comp in range(len(profiles)):
        mask = mix == comp
        count = int(mask.sum())
        if count:
            values[mask] = rng.dirichlet(profiles[comp], size=count)
    values = np.minimum(values, 1.0 - 1e-12) * value_range
    return ProductSet(values, value_range=value_range)


def color(size: int = COLOR_DEFAULT_SIZE, value_range: float = 1.0,
          seed: RngLike = None) -> ProductSet:
    """COLOR stand-in: clustered 9-d HSV-like image feature vectors.

    Cluster sizes follow a Zipf-like tail (a few dominant colour themes,
    many rare ones), and per-cluster spread differs per dimension, mimicking
    the heterogeneous variance of HSV histogram moments.
    """
    if size <= 0:
        raise InvalidParameterError("size must be positive")
    rng = _rng(seed)
    num_clusters = max(4, round(size ** (1 / 3)))
    weights = 1.0 / np.arange(1, num_clusters + 1)
    weights /= weights.sum()
    centroids = rng.random((num_clusters, COLOR_DIM))
    spreads = rng.uniform(0.02, 0.12, size=(num_clusters, COLOR_DIM))
    assignment = rng.choice(num_clusters, size=size, p=weights)
    noise = rng.normal(size=(size, COLOR_DIM)) * spreads[assignment]
    unit = np.clip(centroids[assignment] + noise, 0.0, 1.0 - 1e-12)
    return ProductSet(unit * value_range, value_range=value_range)


@dataclass(frozen=True)
class DianpingData:
    """The simulated DIANPING data: restaurants ``P`` and user preferences ``W``."""

    restaurants: ProductSet
    users: WeightSet
    num_reviews: int


def dianping(
    num_restaurants: int = DIANPING_DEFAULT_RESTAURANTS,
    num_users: int = DIANPING_DEFAULT_USERS,
    reviews_per_user: int = 8,
    value_range: float = 1.0,
    seed: RngLike = None,
) -> DianpingData:
    """DIANPING stand-in: simulate reviews, then average them as the paper does.

    Each review scores six aspects of one restaurant in ``[0, 10)``.  A
    review score is ``restaurant latent quality + user bias + noise``.  A
    restaurant's attribute vector is the average of its reviews' scores,
    inverted so that *smaller is better* (the library's global convention);
    a user's preference vector is their average emphasis across aspects,
    renormalized to the simplex — exactly the construction described in
    Section 6.1.
    """
    if num_restaurants <= 0 or num_users <= 0:
        raise InvalidParameterError("cardinalities must be positive")
    if reviews_per_user <= 0:
        raise InvalidParameterError("reviews_per_user must be positive")
    rng = _rng(seed)
    d = DIANPING_DIM

    quality = np.clip(rng.normal(6.0, 1.5, size=(num_restaurants, d)), 0.5, 9.5)
    taste = rng.dirichlet(np.full(d, 2.0), size=num_users)
    harshness = rng.normal(0.0, 0.8, size=num_users)

    review_sum_p = np.zeros((num_restaurants, d))
    review_cnt_p = np.zeros(num_restaurants)
    taste_sum_w = np.zeros((num_users, d))

    total_reviews = 0
    # Popularity-skewed restaurant choice: a few restaurants collect many
    # reviews, mirroring the real crawl.
    popularity = rng.exponential(1.0, size=num_restaurants)
    popularity /= popularity.sum()
    for user in range(num_users):
        chosen = rng.choice(num_restaurants, size=reviews_per_user, p=popularity)
        for rest in chosen:
            noise = rng.normal(0.0, 0.6, size=d)
            scores = np.clip(quality[rest] + harshness[user] + noise, 0.0, 10.0 - 1e-9)
            review_sum_p[rest] += scores
            review_cnt_p[rest] += 1
            # The emphasis a user's review places on each aspect is their
            # taste plus per-review jitter; averaging recovers the taste.
            taste_sum_w[user] += np.clip(
                taste[user] + rng.normal(0.0, 0.05, size=d), 1e-9, None
            )
            total_reviews += 1

    # Restaurants nobody reviewed fall back to their latent quality.
    avg_p = np.where(
        review_cnt_p[:, None] > 0,
        review_sum_p / np.maximum(review_cnt_p, 1)[:, None],
        quality,
    )
    # Higher review score = better restaurant; the library convention is
    # minimum-preferable, so attributes are (10 - average score), scaled.
    attrs = np.clip((10.0 - avg_p) / 10.0, 0.0, 1.0 - 1e-12) * value_range
    restaurants = ProductSet(attrs, value_range=value_range)
    users = WeightSet(taste_sum_w / reviews_per_user, renormalize=True)
    return DianpingData(restaurants=restaurants, users=users,
                        num_reviews=total_reviews)
