"""Synthetic data generators used throughout the paper's evaluation.

Section 6.1 uses three synthetic product distributions — uniform (UN),
clustered (CL) and anti-correlated (AC) — with an attribute value range of
``[0, 10K)``, plus UN and CL weight-vector sets.  The generation recipes
follow the descriptions in the reverse top-k literature the paper cites
([13, 17]):

* **UN** — attribute values drawn independently and uniformly.
* **CL** — ``sqrt[3]{m}`` cluster centroids drawn uniformly; points are
  centroids plus Gaussian noise with variance ``0.1^2`` (relative to the
  value range), clipped into range.
* **AC** — points concentrated around the anti-diagonal plane: a point's
  coordinates sum to roughly the same total, so products good in one
  attribute are bad in others.  We use the standard recipe: draw the plane
  offset from a Gaussian centred mid-range, then spread it across dimensions
  with a Dirichlet-like split.

Weight vectors are generated on the standard simplex (they must sum to 1);
the uniform case uses a symmetric Dirichlet(1), which is the uniform
distribution on the simplex, and the clustered case blends cluster centroids
on the simplex with Gaussian jitter followed by renormalization.

Table 4 additionally needs per-component Normal and Exponential value
distributions; :func:`generate_products` accepts those too.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import InvalidParameterError
from .datasets import ProductSet, WeightSet

#: Default attribute value range used by the paper for synthetic P.
DEFAULT_VALUE_RANGE = 10_000.0

#: Relative standard deviation of cluster noise (paper Table 5: sigma^2 = 0.1^2).
CLUSTER_SIGMA = 0.1

RngLike = Union[None, int, np.random.Generator]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _check_size_dim(size: int, dim: int) -> None:
    if size <= 0:
        raise InvalidParameterError(f"size must be positive, got {size}")
    if dim <= 0:
        raise InvalidParameterError(f"dim must be positive, got {dim}")


def _num_clusters(size: int) -> int:
    """Paper Table 5: the number of clusters is the cube root of the cardinality."""
    return max(1, round(size ** (1.0 / 3.0)))


def uniform_products(
    size: int,
    dim: int,
    value_range: float = DEFAULT_VALUE_RANGE,
    seed: RngLike = None,
) -> ProductSet:
    """Generate a UN product set: i.i.d. uniform attributes in ``[0, r)``."""
    _check_size_dim(size, dim)
    rng = _rng(seed)
    values = rng.random((size, dim)) * value_range
    return ProductSet(values, value_range=value_range)


def clustered_products(
    size: int,
    dim: int,
    value_range: float = DEFAULT_VALUE_RANGE,
    num_clusters: Optional[int] = None,
    sigma: float = CLUSTER_SIGMA,
    seed: RngLike = None,
) -> ProductSet:
    """Generate a CL product set: Gaussian blobs around uniform centroids."""
    _check_size_dim(size, dim)
    rng = _rng(seed)
    k = num_clusters if num_clusters is not None else _num_clusters(size)
    if k <= 0:
        raise InvalidParameterError("num_clusters must be positive")
    centroids = rng.random((k, dim))
    assignment = rng.integers(0, k, size=size)
    noise = rng.normal(0.0, sigma, size=(size, dim))
    unit = np.clip(centroids[assignment] + noise, 0.0, 1.0 - 1e-12)
    return ProductSet(unit * value_range, value_range=value_range)


def anticorrelated_products(
    size: int,
    dim: int,
    value_range: float = DEFAULT_VALUE_RANGE,
    seed: RngLike = None,
) -> ProductSet:
    """Generate an AC product set: coordinates anti-correlated across dimensions.

    Each point's coordinate total is drawn from a Gaussian centred at
    ``d/2`` (in unit space) and then split across dimensions with a flat
    Dirichlet, so a large value in one attribute forces small values in the
    others — the classic anti-correlated benchmark shape.
    """
    _check_size_dim(size, dim)
    rng = _rng(seed)
    totals = np.clip(
        rng.normal(loc=dim / 2.0, scale=max(dim / 8.0, 0.05), size=size),
        0.05 * dim,
        0.95 * dim,
    )
    split = rng.dirichlet(np.ones(dim), size=size)
    unit = split * totals[:, None]
    # A Dirichlet split can push a single coordinate above 1; fold the excess
    # back uniformly to keep the anti-correlation while staying in range.
    unit = np.minimum(unit, 1.0 - 1e-12)
    return ProductSet(unit * value_range, value_range=value_range)


def normal_products(
    size: int,
    dim: int,
    value_range: float = DEFAULT_VALUE_RANGE,
    sigma: float = CLUSTER_SIGMA,
    seed: RngLike = None,
) -> ProductSet:
    """Per-attribute Normal(0.5, sigma) values, clipped to range (Table 4)."""
    _check_size_dim(size, dim)
    rng = _rng(seed)
    unit = np.clip(rng.normal(0.5, sigma, size=(size, dim)), 0.0, 1.0 - 1e-12)
    return ProductSet(unit * value_range, value_range=value_range)


def exponential_products(
    size: int,
    dim: int,
    value_range: float = DEFAULT_VALUE_RANGE,
    lam: float = 2.0,
    seed: RngLike = None,
) -> ProductSet:
    """Per-attribute Exponential(lambda) values, clipped to range (Table 4)."""
    _check_size_dim(size, dim)
    if lam <= 0:
        raise InvalidParameterError("lam must be positive")
    rng = _rng(seed)
    unit = np.clip(rng.exponential(1.0 / lam, size=(size, dim)), 0.0, 1.0 - 1e-12)
    return ProductSet(unit * value_range, value_range=value_range)


def uniform_weights(size: int, dim: int, seed: RngLike = None) -> WeightSet:
    """Generate a UN weight set: uniform on the standard simplex (Dirichlet(1))."""
    _check_size_dim(size, dim)
    rng = _rng(seed)
    values = rng.dirichlet(np.ones(dim), size=size)
    return WeightSet(values, renormalize=True)


def clustered_weights(
    size: int,
    dim: int,
    num_clusters: Optional[int] = None,
    sigma: float = CLUSTER_SIGMA,
    seed: RngLike = None,
) -> WeightSet:
    """Generate a CL weight set: jittered simplex centroids, renormalized."""
    _check_size_dim(size, dim)
    rng = _rng(seed)
    k = num_clusters if num_clusters is not None else _num_clusters(size)
    if k <= 0:
        raise InvalidParameterError("num_clusters must be positive")
    centroids = rng.dirichlet(np.ones(dim), size=k)
    assignment = rng.integers(0, k, size=size)
    noise = rng.normal(0.0, sigma / max(dim, 1), size=(size, dim))
    values = np.clip(centroids[assignment] + noise, 1e-9, None)
    return WeightSet(values, renormalize=True)


def normal_weights(size: int, dim: int, sigma: float = CLUSTER_SIGMA,
                   seed: RngLike = None) -> WeightSet:
    """Normal-perturbed weights around the uniform preference (Table 4)."""
    _check_size_dim(size, dim)
    rng = _rng(seed)
    values = np.clip(rng.normal(1.0 / dim, sigma / dim, size=(size, dim)), 1e-9, None)
    return WeightSet(values, renormalize=True)


def exponential_weights(size: int, dim: int, lam: float = 2.0,
                        seed: RngLike = None) -> WeightSet:
    """Exponentially distributed raw weights, renormalized (Table 4)."""
    _check_size_dim(size, dim)
    if lam <= 0:
        raise InvalidParameterError("lam must be positive")
    rng = _rng(seed)
    values = np.clip(rng.exponential(1.0 / lam, size=(size, dim)), 1e-9, None)
    return WeightSet(values, renormalize=True)


#: Distribution codes used by the paper's parameter table (Table 5).
PRODUCT_DISTRIBUTIONS = ("UN", "CL", "AC", "NORMAL", "EXP")
WEIGHT_DISTRIBUTIONS = ("UN", "CL", "NORMAL", "EXP")


def generate_products(
    distribution: str,
    size: int,
    dim: int,
    value_range: float = DEFAULT_VALUE_RANGE,
    seed: RngLike = None,
) -> ProductSet:
    """Dispatch on a paper distribution code (``UN``/``CL``/``AC``/``NORMAL``/``EXP``)."""
    code = distribution.upper()
    if code == "UN":
        return uniform_products(size, dim, value_range, seed)
    if code == "CL":
        return clustered_products(size, dim, value_range, seed=seed)
    if code == "AC":
        return anticorrelated_products(size, dim, value_range, seed)
    if code == "NORMAL":
        return normal_products(size, dim, value_range, seed=seed)
    if code == "EXP":
        return exponential_products(size, dim, value_range, seed=seed)
    raise InvalidParameterError(
        f"unknown product distribution {distribution!r}; "
        f"expected one of {PRODUCT_DISTRIBUTIONS}"
    )


def generate_weights(
    distribution: str,
    size: int,
    dim: int,
    seed: RngLike = None,
) -> WeightSet:
    """Dispatch on a paper weight distribution code (``UN``/``CL``/``NORMAL``/``EXP``)."""
    code = distribution.upper()
    if code == "UN":
        return uniform_weights(size, dim, seed)
    if code == "CL":
        return clustered_weights(size, dim, seed=seed)
    if code == "NORMAL":
        return normal_weights(size, dim, seed=seed)
    if code == "EXP":
        return exponential_weights(size, dim, seed=seed)
    raise InvalidParameterError(
        f"unknown weight distribution {distribution!r}; "
        f"expected one of {WEIGHT_DISTRIBUTIONS}"
    )
