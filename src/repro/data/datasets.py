"""Data-set containers for products (points) and user preferences (weights).

The paper (Section 1.1) models a product as a d-dimensional vector of
non-negative scoring attributes where *smaller is better*, and a user
preference as a non-negative weight vector whose components sum to one.
These two containers enforce exactly those constraints and expose the small
amount of shared behaviour the algorithms need (validation, score
evaluation, slicing).

Both containers wrap a read-only ``numpy.ndarray`` of shape ``(m, d)`` with
dtype ``float64``.  They are intentionally thin: algorithm code accesses
``.values`` directly in hot loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from ..errors import (
    DataValidationError,
    DimensionMismatchError,
    EmptyDatasetError,
)

ArrayLike = Union[np.ndarray, Sequence[Sequence[float]]]

#: Tolerance used when checking that a weight vector sums to one.
WEIGHT_SUM_TOLERANCE = 1e-6


def _row_repr(arr: np.ndarray, row: int) -> str:
    """A short, readable rendering of one offending row for error messages."""
    return np.array2string(arr[row], threshold=8, precision=6,
                           suppress_small=True)


def _as_matrix(values: ArrayLike, name: str) -> np.ndarray:
    """Coerce ``values`` to a 2-D float64 array, validating shape and finiteness.

    Validation failures name the first offending row — a million-row
    ingest that dies with "contains NaN" and no coordinates is a
    debugging session; with ``row 73812: [nan, 0.2, ...]`` it is a grep.
    """
    try:
        arr = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise DataValidationError(
            f"{name} is not numeric array-like: {exc}"
        ) from None
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DataValidationError(
            f"{name} must be a 2-D array of shape (m, d); got ndim={arr.ndim}"
        )
    if arr.shape[0] == 0:
        raise EmptyDatasetError(f"{name} must contain at least one vector")
    if arr.shape[1] == 0:
        raise DataValidationError(f"{name} must have at least one dimension")
    finite = np.isfinite(arr)
    if not finite.all():
        bad = int(np.nonzero(~finite.all(axis=1))[0][0])
        raise DataValidationError(
            f"{name} contains NaN or infinite values "
            f"(first offending row {bad}: {_row_repr(arr, bad)})"
        )
    negative = arr < 0
    if negative.any():
        bad = int(np.nonzero(negative.any(axis=1))[0][0])
        raise DataValidationError(
            f"{name} contains negative values "
            f"(first offending row {bad}: {_row_repr(arr, bad)})"
        )
    return arr


@dataclass(frozen=True)
class ProductSet:
    """The product data set ``P``: ``m`` points in ``d`` dimensions.

    Parameters
    ----------
    values:
        Array-like of shape ``(m, d)`` with non-negative finite entries.
    value_range:
        Upper bound ``r`` of the attribute value range ``[0, r)`` used for
        quantization (paper Section 3.1).  Defaults to the smallest power of
        ten not below the data maximum, or 1.0 for data already in ``[0, 1)``.
    """

    values: np.ndarray
    value_range: float = field(default=0.0)

    def __init__(self, values: ArrayLike, value_range: Optional[float] = None):
        arr = _as_matrix(values, "ProductSet")
        if value_range is None:
            top = float(arr.max(initial=0.0))
            value_range = 1.0
            while value_range <= top:
                value_range *= 10.0
        if value_range <= 0:
            raise DataValidationError("value_range must be positive")
        if float(arr.max(initial=0.0)) >= value_range:
            raise DataValidationError(
                "all product values must lie in [0, value_range)"
            )
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)
        object.__setattr__(self, "value_range", float(value_range))

    @property
    def size(self) -> int:
        """Number of products ``|P|``."""
        return self.values.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality ``d``."""
        return self.values.shape[1]

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, idx: int) -> np.ndarray:
        return self.values[idx]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.values)

    def point(self, idx: int) -> np.ndarray:
        """Return the ``idx``-th product vector (read-only view)."""
        return self.values[idx]

    def subset(self, indices: Iterable[int]) -> "ProductSet":
        """Return a new :class:`ProductSet` restricted to ``indices``."""
        return ProductSet(self.values[np.fromiter(indices, dtype=np.intp)],
                          value_range=self.value_range)

    def normalized(self) -> "ProductSet":
        """Return a copy rescaled into ``[0, 1)`` (divides by ``value_range``)."""
        return ProductSet(self.values / self.value_range, value_range=1.0)


@dataclass(frozen=True)
class WeightSet:
    """The preference data set ``W``: ``m`` weight vectors in ``d`` dimensions.

    Every vector is non-negative and sums to one (paper Section 1.1).
    Construction validates the sum unless ``renormalize=True``, in which case
    rows are divided by their sums (rows summing to zero are rejected).
    """

    values: np.ndarray

    def __init__(self, values: ArrayLike, renormalize: bool = False):
        arr = _as_matrix(values, "WeightSet")
        sums = arr.sum(axis=1)
        if renormalize:
            if np.any(sums <= 0):
                bad = int(np.nonzero(sums <= 0)[0][0])
                raise DataValidationError(
                    "cannot renormalize weight vectors that sum to zero "
                    f"(first offending row {bad}: {_row_repr(arr, bad)})"
                )
            arr = arr / sums[:, None]
        else:
            off = np.abs(sums - 1.0) > WEIGHT_SUM_TOLERANCE
            if off.any():
                bad = int(np.nonzero(off)[0][0])
                raise DataValidationError(
                    f"weight vector {bad} sums to {sums[bad]:.6f}, expected "
                    f"1.0 (row {bad}: {_row_repr(arr, bad)}; pass "
                    "renormalize=True to fix automatically)"
                )
        arr = np.ascontiguousarray(arr)
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)

    @property
    def size(self) -> int:
        """Number of weight vectors ``|W|``."""
        return self.values.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality ``d``."""
        return self.values.shape[1]

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, idx: int) -> np.ndarray:
        return self.values[idx]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.values)

    def weight(self, idx: int) -> np.ndarray:
        """Return the ``idx``-th weight vector (read-only view)."""
        return self.values[idx]

    def subset(self, indices: Iterable[int]) -> "WeightSet":
        """Return a new :class:`WeightSet` restricted to ``indices``."""
        return WeightSet(self.values[np.fromiter(indices, dtype=np.intp)])


def check_compatible(products: ProductSet, weights: WeightSet) -> None:
    """Raise :class:`DimensionMismatchError` unless ``P`` and ``W`` share ``d``."""
    if products.dim != weights.dim:
        raise DimensionMismatchError(
            f"products have d={products.dim} but weights have d={weights.dim}"
        )


def check_query_point(q: ArrayLike, dim: int) -> np.ndarray:
    """Validate a query product vector and return it as a 1-D float64 array."""
    arr = np.asarray(q, dtype=np.float64).reshape(-1)
    if arr.shape[0] != dim:
        raise DimensionMismatchError(
            f"query point has d={arr.shape[0]}, data sets have d={dim}"
        )
    if not np.all(np.isfinite(arr)):
        raise DataValidationError("query point contains NaN or infinite values")
    if np.any(arr < 0):
        raise DataValidationError("query point contains negative values")
    return arr


def score(w: np.ndarray, p: np.ndarray) -> float:
    """The paper's scoring function ``f_w(p) = sum_i w[i] * p[i]``."""
    return float(np.dot(w, p))
