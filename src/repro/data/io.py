"""Binary persistence for data sets and approximate-vector files.

Table 2 of the paper measures how cheap reading the data is compared to the
CPU cost of processing a reverse rank query; Section 3.2 argues that the
compressed approximate-vector file is less than a tenth of the original data
size.  This module provides both file formats so the Table 2 experiment can
be reproduced:

* ``.rrq`` — raw 64-bit float matrices with a small self-describing header.
* ``.rrqa`` — bit-packed approximate vectors (``b`` bits per component),
  written via :mod:`repro.core.bitstring`.

The format is deliberately simple (magic, version, shape, payload) — the
experiments need a faithful byte count and read path, not a database file
format.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from ..errors import DataValidationError
from .datasets import ProductSet, WeightSet

_MAGIC_RAW = b"RRQF"
_MAGIC_APPROX = b"RRQA"
_VERSION = 1

PathLike = Union[str, Path]


def save_matrix(path: PathLike, values: np.ndarray) -> int:
    """Write a float64 matrix to ``path`` in ``.rrq`` format; return byte count."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise DataValidationError("save_matrix expects a 2-D array")
    header = _MAGIC_RAW + struct.pack("<HII", _VERSION, arr.shape[0], arr.shape[1])
    payload = arr.tobytes()
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(payload)
    return len(header) + len(payload)


def load_matrix(path: PathLike) -> np.ndarray:
    """Read a ``.rrq`` float64 matrix written by :func:`save_matrix`."""
    with open(path, "rb") as handle:
        header = handle.read(len(_MAGIC_RAW) + struct.calcsize("<HII"))
        if header[:4] != _MAGIC_RAW:
            raise DataValidationError(f"{path}: not an RRQ raw matrix file")
        version, rows, cols = struct.unpack("<HII", header[4:])
        if version != _VERSION:
            raise DataValidationError(f"{path}: unsupported version {version}")
        payload = handle.read(rows * cols * 8)
    if len(payload) != rows * cols * 8:
        raise DataValidationError(f"{path}: truncated payload")
    return np.frombuffer(payload, dtype=np.float64).reshape(rows, cols).copy()


def save_products(path: PathLike, products: ProductSet) -> int:
    """Persist a :class:`ProductSet` (value range is stored in a trailer)."""
    written = save_matrix(path, products.values)
    with open(path, "ab") as handle:
        trailer = struct.pack("<d", products.value_range)
        handle.write(trailer)
    return written + 8


def load_products(path: PathLike) -> ProductSet:
    """Load a :class:`ProductSet` written by :func:`save_products`."""
    values = load_matrix(path)
    with open(path, "rb") as handle:
        handle.seek(-8, 2)
        (value_range,) = struct.unpack("<d", handle.read(8))
    return ProductSet(values, value_range=value_range)


def save_weights(path: PathLike, weights: WeightSet) -> int:
    """Persist a :class:`WeightSet`."""
    return save_matrix(path, weights.values)


def load_weights(path: PathLike) -> WeightSet:
    """Load a :class:`WeightSet` written by :func:`save_weights`."""
    return WeightSet(load_matrix(path))


def save_approx(path: PathLike, codes: np.ndarray, bits: int) -> int:
    """Write quantized vectors (integers in ``[0, 2**bits)``) bit-packed.

    Returns the number of bytes written.  The payload packs each component
    into ``bits`` bits via :func:`repro.core.bitstring.pack_matrix`.
    """
    from ..core.bitstring import pack_matrix  # deferred: avoids an import cycle

    arr = np.ascontiguousarray(codes)
    if arr.ndim != 2:
        raise DataValidationError("save_approx expects a 2-D code array")
    payload = pack_matrix(arr, bits)
    header = _MAGIC_APPROX + struct.pack(
        "<HHII", _VERSION, bits, arr.shape[0], arr.shape[1]
    )
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(payload)
    return len(header) + len(payload)


def load_approx(path: PathLike) -> Tuple[np.ndarray, int]:
    """Read a bit-packed approximate-vector file; returns ``(codes, bits)``."""
    from ..core.bitstring import unpack_matrix  # deferred: avoids an import cycle

    with open(path, "rb") as handle:
        header = handle.read(len(_MAGIC_APPROX) + struct.calcsize("<HHII"))
        if header[:4] != _MAGIC_APPROX:
            raise DataValidationError(f"{path}: not an RRQ approx-vector file")
        version, bits, rows, cols = struct.unpack("<HHII", header[4:])
        if version != _VERSION:
            raise DataValidationError(f"{path}: unsupported version {version}")
        payload = handle.read()
    return unpack_matrix(payload, rows, cols, bits), bits


def file_size(path: PathLike) -> int:
    """Size of ``path`` in bytes (helper for the Table 2 / Section 3.2 benches)."""
    return Path(path).stat().st_size
