"""Binary persistence for data sets and approximate-vector files.

Table 2 of the paper measures how cheap reading the data is compared to the
CPU cost of processing a reverse rank query; Section 3.2 argues that the
compressed approximate-vector file is less than a tenth of the original data
size.  This module provides both file formats so the Table 2 experiment can
be reproduced:

* ``.rrq`` — raw 64-bit float matrices with a small self-describing header.
* ``.rrqa`` — bit-packed approximate vectors (``b`` bits per component),
  written via :mod:`repro.core.bitstring`.

The format is deliberately simple (magic, version, shape, payload) — the
experiments need a faithful byte count and read path, not a database file
format.

Crash safety: every ``save_*`` serializes the whole file to bytes first
(the ``*_to_bytes`` helpers) and lands it via :func:`atomic_write_bytes` —
write to a same-directory temp file, flush, fsync, then ``os.replace``.
A reader can therefore never observe a torn file under a crash; the worst
case is the old content.  The write path consults the fault-injection
hooks (:mod:`repro.resilience.faults`) so the chaos suite can simulate
corruption, I/O errors, and mid-write crashes deterministically.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from ..errors import DataValidationError
from ..resilience.faults import active_injector
from .datasets import ProductSet, WeightSet

_MAGIC_RAW = b"RRQF"
_MAGIC_APPROX = b"RRQA"
_VERSION = 1

PathLike = Union[str, Path]


def atomic_write_bytes(path: PathLike, data: bytes,
                       site: Optional[str] = None) -> int:
    """Write ``data`` to ``path`` atomically; returns the byte count.

    The payload lands in a temp file in the same directory and is moved
    into place with ``os.replace``, so a concurrent reader (or a crash at
    any point) sees either the old file or the complete new one — never a
    prefix.  ``site`` names the fault-injection point (defaults to
    ``io.write.<filename>``); with no injector active the hook is a
    single global read.
    """
    path = Path(path)
    injector = active_injector()
    if injector is not None:
        site = site or f"io.write.{path.name}"
        injector.fire(site)
        data = injector.mutate(site, data)
        keep = injector.partial_write(site)
        if keep is not None:
            # Model a kill -9 mid-write of a NON-atomic writer: torn bytes
            # at the final path, then death.  Loaders must detect this.
            from ..resilience.faults import InjectedCrashError

            with open(path, "wb") as handle:
                handle.write(data[: int(len(data) * keep)])
            raise InjectedCrashError(
                f"injected crash after torn write at {site}"
            )
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(data)


# ----------------------------------------------------------------------
# serializers (bytes in memory — the atomic write path builds on these)
# ----------------------------------------------------------------------


def matrix_to_bytes(values: np.ndarray) -> bytes:
    """Serialize a float64 matrix to ``.rrq`` bytes (header + payload)."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise DataValidationError("save_matrix expects a 2-D array")
    if not np.all(np.isfinite(arr)):
        bad = int(np.argwhere(~np.isfinite(np.asarray(arr)))[0][0])
        raise DataValidationError(
            f"refusing to write matrix with NaN/infinite values "
            f"(first offending row {bad})"
        )
    header = _MAGIC_RAW + struct.pack("<HII", _VERSION,
                                      arr.shape[0], arr.shape[1])
    return header + arr.tobytes()


def products_to_bytes(products: ProductSet) -> bytes:
    """Serialize a :class:`ProductSet` (value range in an 8-byte trailer)."""
    return matrix_to_bytes(products.values) + struct.pack(
        "<d", products.value_range
    )


def weights_to_bytes(weights: WeightSet) -> bytes:
    """Serialize a :class:`WeightSet`."""
    return matrix_to_bytes(weights.values)


def approx_to_bytes(codes: np.ndarray, bits: int) -> bytes:
    """Serialize quantized vectors (integers in ``[0, 2**bits)``) bit-packed."""
    from ..core.bitstring import pack_matrix  # deferred: avoids an import cycle

    arr = np.ascontiguousarray(codes)
    if arr.ndim != 2:
        raise DataValidationError("save_approx expects a 2-D code array")
    payload = pack_matrix(arr, bits)
    header = _MAGIC_APPROX + struct.pack(
        "<HHII", _VERSION, bits, arr.shape[0], arr.shape[1]
    )
    return header + payload


# ----------------------------------------------------------------------
# file-level API
# ----------------------------------------------------------------------


def save_matrix(path: PathLike, values: np.ndarray,
                site: Optional[str] = None) -> int:
    """Write a float64 matrix to ``path`` in ``.rrq`` format; return byte count."""
    return atomic_write_bytes(path, matrix_to_bytes(values), site=site)


def load_matrix(path: PathLike) -> np.ndarray:
    """Read a ``.rrq`` float64 matrix written by :func:`save_matrix`."""
    with open(path, "rb") as handle:
        header = handle.read(len(_MAGIC_RAW) + struct.calcsize("<HII"))
        if header[:4] != _MAGIC_RAW:
            raise DataValidationError(f"{path}: not an RRQ raw matrix file")
        version, rows, cols = struct.unpack("<HII", header[4:])
        if version != _VERSION:
            raise DataValidationError(f"{path}: unsupported version {version}")
        payload = handle.read(rows * cols * 8)
    if len(payload) != rows * cols * 8:
        raise DataValidationError(
            f"{path}: truncated payload (expected {rows * cols * 8} bytes, "
            f"found {len(payload)})"
        )
    return np.frombuffer(payload, dtype=np.float64).reshape(rows, cols).copy()


def save_products(path: PathLike, products: ProductSet,
                  site: Optional[str] = None) -> int:
    """Persist a :class:`ProductSet` (value range is stored in a trailer)."""
    return atomic_write_bytes(path, products_to_bytes(products), site=site)


def load_products(path: PathLike) -> ProductSet:
    """Load a :class:`ProductSet` written by :func:`save_products`."""
    values = load_matrix(path)
    with open(path, "rb") as handle:
        handle.seek(-8, 2)
        (value_range,) = struct.unpack("<d", handle.read(8))
    return ProductSet(values, value_range=value_range)


def save_weights(path: PathLike, weights: WeightSet,
                 site: Optional[str] = None) -> int:
    """Persist a :class:`WeightSet`."""
    return atomic_write_bytes(path, weights_to_bytes(weights), site=site)


def load_weights(path: PathLike) -> WeightSet:
    """Load a :class:`WeightSet` written by :func:`save_weights`."""
    return WeightSet(load_matrix(path))


def save_approx(path: PathLike, codes: np.ndarray, bits: int,
                site: Optional[str] = None) -> int:
    """Write quantized vectors bit-packed; returns the byte count."""
    return atomic_write_bytes(path, approx_to_bytes(codes, bits), site=site)


def load_approx(path: PathLike) -> Tuple[np.ndarray, int]:
    """Read a bit-packed approximate-vector file; returns ``(codes, bits)``."""
    from ..core.bitstring import unpack_matrix  # deferred: avoids an import cycle

    with open(path, "rb") as handle:
        header = handle.read(len(_MAGIC_APPROX) + struct.calcsize("<HHII"))
        if header[:4] != _MAGIC_APPROX:
            raise DataValidationError(f"{path}: not an RRQ approx-vector file")
        version, bits, rows, cols = struct.unpack("<HHII", header[4:])
        if version != _VERSION:
            raise DataValidationError(f"{path}: unsupported version {version}")
        payload = handle.read()
    try:
        return unpack_matrix(payload, rows, cols, bits), bits
    except ValueError as exc:
        raise DataValidationError(f"{path}: corrupt bit-packed payload "
                                  f"({exc})") from None


def file_size(path: PathLike) -> int:
    """Size of ``path`` in bytes (helper for the Table 2 / Section 3.2 benches)."""
    return Path(path).stat().st_size
