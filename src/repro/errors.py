"""Typed exceptions raised by the :mod:`repro` library.

Every invalid input detected by the library raises one of these classes so
callers can distinguish user errors from genuine bugs.  All of them derive
from :class:`ReproError`, which itself derives from :class:`ValueError` to
stay friendly to generic exception handling.
"""

from __future__ import annotations


class ReproError(ValueError):
    """Base class for all errors raised by the repro library."""


class DataValidationError(ReproError):
    """A data set (products or weights) failed validation.

    Raised for negative values, NaN/inf entries, wrong shapes, or weight
    vectors that do not sum to one.
    """


class DimensionMismatchError(ReproError):
    """Two objects that must share dimensionality do not."""


class EmptyDatasetError(ReproError):
    """An operation requires a non-empty data set."""


class InvalidParameterError(ReproError):
    """A query or index parameter is out of its valid domain.

    Examples: ``k <= 0``, a partition count that is not positive, or a
    histogram resolution of zero.
    """


class IndexCorruptionError(ReproError):
    """An index structure violated one of its own invariants.

    This is never expected during normal operation; it indicates a bug and
    is raised by the self-check routines (e.g. :meth:`RTree.check_invariants`).
    """


class ServiceError(ReproError):
    """Base class for admission-control rejections raised by
    :mod:`repro.service`.

    These are *load* conditions, not caller mistakes: the request itself
    was well-formed but the service chose not to (or could not) answer it
    in time.  The HTTP frontend maps them to 4xx/5xx status codes (see
    :func:`repro.service.limits.http_status`).
    """


class ServiceOverloadError(ServiceError):
    """The admission queue is full; the request was rejected (HTTP 429)."""


class DeadlineExceededError(ServiceError):
    """The request's deadline elapsed before an answer was produced
    (HTTP 504)."""
