"""Typed exceptions raised by the :mod:`repro` library.

Every invalid input detected by the library raises one of these classes so
callers can distinguish user errors from genuine bugs.  All of them derive
from :class:`ReproError`, which itself derives from :class:`ValueError` to
stay friendly to generic exception handling.
"""

from __future__ import annotations


class ReproError(ValueError):
    """Base class for all errors raised by the repro library."""


class DataValidationError(ReproError):
    """A data set (products or weights) failed validation.

    Raised for negative values, NaN/inf entries, wrong shapes, or weight
    vectors that do not sum to one.
    """


class DimensionMismatchError(ReproError):
    """Two objects that must share dimensionality do not."""


class EmptyDatasetError(ReproError):
    """An operation requires a non-empty data set."""


class InvalidParameterError(ReproError):
    """A query or index parameter is out of its valid domain.

    Examples: ``k <= 0``, a partition count that is not positive, or a
    histogram resolution of zero.
    """


class IndexCorruptionError(ReproError):
    """An index structure or persisted artifact violated an invariant.

    Raised by in-memory self-check routines (e.g.
    :meth:`RTree.check_invariants`) and by the storage layer when a
    persisted index fails its manifest checksums
    (:func:`repro.core.storage.load_index`).  For storage corruption the
    structured attributes say *what* is damaged so callers can decide
    between rebuild-from-raw recovery and degraded naive serving.

    Attributes
    ----------
    directory:
        The index directory, when the corruption is on disk.
    artifacts:
        Tuple of damaged artifact file names (may be empty).
    recoverable:
        True when the raw data and metadata are intact, i.e. a rebuild
        of the approximate vectors can heal the index in place.
    """

    def __init__(self, message: str, *, directory=None,
                 artifacts=(), recoverable: bool = False):
        super().__init__(message)
        self.directory = directory
        self.artifacts = tuple(artifacts)
        self.recoverable = bool(recoverable)


class WalCorruptionError(ReproError):
    """A write-ahead log failed its framing or checksum checks mid-log.

    Torn *trailing* records (an interrupted append) are expected after a
    crash and are silently dropped by recovery; this error is reserved
    for damage that cannot be explained by a torn tail — a CRC mismatch
    or framing violation with valid bytes after it — which means
    acknowledged history is gone and recovery must not silently proceed.

    Attributes
    ----------
    path:
        The WAL file, when known.
    offset:
        Byte offset of the first record that failed verification.
    lsn:
        LSN of the last successfully decoded record before the damage.
    """

    def __init__(self, message: str, *, path=None, offset: int = -1,
                 lsn: int = 0):
        super().__init__(message)
        self.path = path
        self.offset = int(offset)
        self.lsn = int(lsn)


class ServiceError(ReproError):
    """Base class for admission-control rejections raised by
    :mod:`repro.service`.

    These are *load* conditions, not caller mistakes: the request itself
    was well-formed but the service chose not to (or could not) answer it
    in time.  The HTTP frontend maps them to 4xx/5xx status codes (see
    :func:`repro.service.limits.http_status`).
    """


class ServiceOverloadError(ServiceError):
    """The admission queue is full; the request was rejected (HTTP 429)."""


class DeadlineExceededError(ServiceError):
    """The request's deadline elapsed before an answer was produced
    (HTTP 504)."""


class ServiceUnavailableError(ServiceError):
    """The service cannot currently answer at all (HTTP 503).

    Raised when the server is shutting down (requests are drained with
    structured rejections instead of dropped connections), when the
    engine is down and no fallback is configured, or by the client when
    the server cannot be reached at the transport level (connection
    refused, reset, DNS failure) — distinct from an HTTP-level error,
    which means the server is up and answered.
    """


class NotPrimaryError(ServiceError):
    """A mutation was sent to a replica that is not the primary (HTTP 409).

    Standbys serve reads (and the replication feed) but refuse writes
    until promoted via ``POST /promote``; the client uses this signal to
    keep writes on the primary while reads fail over freely.
    """
