"""repro — reproduction of "Grid-Index Algorithm for Reverse Rank Queries".

(Dong, Chen, Furuse, Yu, Kitagawa — EDBT 2017.)

Quick start::

    from repro import RRQEngine, uniform_products, uniform_weights

    P = uniform_products(size=1000, dim=6, seed=1)
    W = uniform_weights(size=1000, dim=6, seed=2)
    engine = RRQEngine(P, W, method="gir")
    print(engine.reverse_topk(P[0], k=10).sorted_indices())
    print(engine.reverse_kranks(P[0], k=5).entries)

The package layout mirrors the paper: :mod:`repro.core` holds the
Grid-index contribution, :mod:`repro.algorithms` the baselines it is
compared against, :mod:`repro.index` the spatial substrates those
baselines need, and :mod:`repro.ext` the future-work extensions.
"""

from .algorithms import (
    BranchBoundRTK,
    MarkedPruningRKR,
    NaiveRRQ,
    SimpleScan,
    ThresholdRTK,
)
from .core import GridIndex, GridIndexRRQ, Quantizer
from .core import model
from .data import (
    ProductSet,
    WeightSet,
    anticorrelated_products,
    clustered_products,
    clustered_weights,
    color,
    dianping,
    generate_products,
    generate_weights,
    house,
    uniform_products,
    uniform_weights,
)
from .errors import (
    DataValidationError,
    DeadlineExceededError,
    DimensionMismatchError,
    EmptyDatasetError,
    IndexCorruptionError,
    InvalidParameterError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
)
from .ext import (
    AdaptiveGridIndexRRQ,
    AggregateGridIndexRKR,
    DynamicRRQEngine,
    SparseGridIndexRRQ,
    aggregate_reverse_kranks_naive,
    sparsify_weights,
)
from .queries import (
    MonochromaticResult,
    RKRResult,
    RRQEngine,
    RTKResult,
    available_methods,
    monochromatic_reverse_topk,
)
from .service import QueryService, ServiceClient, ServiceConfig
from .stats import OpCounter
from .vectorized import BatchOracle

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # facade
    "RRQEngine", "available_methods", "RTKResult", "RKRResult", "OpCounter",
    "monochromatic_reverse_topk", "MonochromaticResult",
    # core
    "GridIndex", "GridIndexRRQ", "Quantizer", "model",
    # algorithms
    "NaiveRRQ", "SimpleScan", "BranchBoundRTK", "MarkedPruningRKR",
    "ThresholdRTK",
    "BatchOracle", "AdaptiveGridIndexRRQ", "SparseGridIndexRRQ",
    "sparsify_weights", "AggregateGridIndexRKR",
    "aggregate_reverse_kranks_naive", "DynamicRRQEngine",
    # data
    "ProductSet", "WeightSet", "uniform_products", "clustered_products",
    "anticorrelated_products", "uniform_weights", "clustered_weights",
    "generate_products", "generate_weights", "house", "color", "dianping",
    # serving
    "QueryService", "ServiceConfig", "ServiceClient",
    # errors
    "ReproError", "DataValidationError", "DimensionMismatchError",
    "EmptyDatasetError", "InvalidParameterError", "IndexCorruptionError",
    "ServiceError", "ServiceOverloadError", "DeadlineExceededError",
]
