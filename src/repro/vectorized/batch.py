"""Batch (multi-query) vectorized engines.

The paper's experiments repeat every measurement for 1000 random query
points.  When the goal is *answers* rather than per-algorithm cost
profiles, computing the full score matrix once and answering every query
from it is far faster in numpy than looping the scan algorithms.  These
engines do exactly that, in memory-bounded chunks, and double as a second,
independently-implemented oracle for the test suite.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.ties import count_strictly_better_matrix
from ..data.datasets import ProductSet, WeightSet, check_compatible, check_query_point
from ..errors import InvalidParameterError
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..stats.counters import OpCounter

#: Upper bound on the floats materialized per chunk (64 MB of float64).
DEFAULT_CHUNK_BUDGET = 8_000_000


def all_ranks_multi(P: np.ndarray, W: np.ndarray, Q: np.ndarray,
                    chunk_budget: int = DEFAULT_CHUNK_BUDGET) -> np.ndarray:
    """``rank(w, q)`` for every weight and every query point.

    Returns an ``(num_q, |W|)`` int64 array.  Work is chunked over ``W`` so
    at most ``chunk_budget`` score entries exist at a time.
    """
    if chunk_budget < 1:
        raise InvalidParameterError(
            f"chunk_budget must be positive, got {chunk_budget}"
        )
    P = np.asarray(P, dtype=np.float64)
    W = np.asarray(W, dtype=np.float64)
    Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
    if P.shape[1] != W.shape[1] or P.shape[1] != Q.shape[1]:
        raise InvalidParameterError("P, W and Q must share dimensionality")
    m_p, m_w, num_q = P.shape[0], W.shape[0], Q.shape[0]
    chunk = max(1, min(m_w, chunk_budget // max(m_p, 1)))
    out = np.zeros((num_q, m_w), dtype=np.int64)
    fq = Q @ W.T  # (num_q, m_w) query scores
    # Rows identical to a query tie with it exactly and must not count;
    # excluding them avoids cross-kernel rounding flips (see
    # repro.algorithms.base.duplicate_mask).
    live_rows = [np.flatnonzero(~np.all(P == Q[qi], axis=1)) for qi in range(num_q)]
    for start in range(0, m_w, chunk):
        stop = min(start + chunk, m_w)
        scores = P @ W[start:stop].T  # (m_p, chunk)
        # Broadcasting (num_q, 1, chunk) against (1, m_p, chunk) would blow
        # memory for large num_q; loop queries instead (num_q is small).
        for qi in range(num_q):
            rows = live_rows[qi]
            block_scores = scores if rows.shape[0] == m_p else scores[rows]
            block_P = P if rows.shape[0] == m_p else P[rows]
            out[qi, start:stop] = count_strictly_better_matrix(
                block_scores, block_P, W[start:stop], Q[qi],
                fq[qi, start:stop],
            )
    return out


class BatchOracle:
    """Answers RTK/RKR for many query points from one rank matrix.

    Built once per ``(P, W)`` pair; every query method validates inputs the
    same way the scan algorithms do, so results are interchangeable.
    """

    name = "BATCH"

    def __init__(self, products: ProductSet, weights: WeightSet,
                 chunk_budget: int = DEFAULT_CHUNK_BUDGET):
        check_compatible(products, weights)
        if chunk_budget < 1:
            raise InvalidParameterError(
                f"chunk_budget must be positive, got {chunk_budget}"
            )
        self.products = products
        self.weights = weights
        self.chunk_budget = chunk_budget

    @property
    def dim(self) -> int:
        """Data dimensionality."""
        return self.products.dim

    def ranks(self, q) -> np.ndarray:
        """``rank(w, q)`` for all ``w`` as an int64 vector."""
        q_arr = check_query_point(q, self.dim)
        return all_ranks_multi(
            self.products.values, self.weights.values, q_arr[None, :],
            self.chunk_budget,
        )[0]

    def reverse_topk(self, q, k: int) -> RTKResult:
        """RTK from the rank vector."""
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        ranks = self.ranks(q)
        counter = OpCounter()
        counter.pairwise += self.products.size * self.weights.size
        qualifying = frozenset(int(i) for i in np.nonzero(ranks < k)[0])
        return RTKResult(weights=qualifying, k=k, counter=counter)

    def reverse_kranks(self, q, k: int) -> RKRResult:
        """RKR from the rank vector (library tie-break)."""
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        ranks = self.ranks(q)
        counter = OpCounter()
        counter.pairwise += self.products.size * self.weights.size
        pairs = [(int(r), int(i)) for i, r in enumerate(ranks)]
        return make_rkr_result(pairs, k, counter)

    def reverse_topk_many(self, queries: Sequence, k: int) -> List[RTKResult]:
        """RTK for a batch of query points sharing one score sweep."""
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        Q = np.array([check_query_point(q, self.dim) for q in queries])
        rank_matrix = all_ranks_multi(
            self.products.values, self.weights.values, Q, self.chunk_budget
        )
        results = []
        for row in rank_matrix:
            qualifying = frozenset(int(i) for i in np.nonzero(row < k)[0])
            results.append(RTKResult(weights=qualifying, k=k))
        return results

    def reverse_kranks_many(self, queries: Sequence, k: int) -> List[RKRResult]:
        """RKR for a batch of query points sharing one score sweep."""
        if k <= 0:
            raise InvalidParameterError("k must be positive")
        Q = np.array([check_query_point(q, self.dim) for q in queries])
        rank_matrix = all_ranks_multi(
            self.products.values, self.weights.values, Q, self.chunk_budget
        )
        return [
            make_rkr_result(
                [(int(r), int(i)) for i, r in enumerate(row)], k, OpCounter()
            )
            for row in rank_matrix
        ]
