"""Single-query parallelism: shard ``W`` across shared-memory workers.

:mod:`repro.vectorized.parallel` parallelizes *across* queries — useless
when one user asks one enormous query.  This module splits a single
query's weight scan into contiguous shards of ``W`` and fans the shards
across worker processes, each running the blocked kernel
(:class:`~repro.vectorized.girkernel.KernelCore`) over **zero-copy**
``multiprocessing.shared_memory`` views of the six kernel arrays
(``P``, ``W`` and the four pre-gathered boundary matrices).  The
segments are created once per engine; per query only the tiny
``(kind, q, k, lo, hi)`` task tuples and the per-shard partial answers
cross the process boundary.

Shard merging is deterministic and exact:

* RTK — ``rank(w, q)`` never depends on other weights, so the shard
  answers are disjoint index sets and the merged answer is their union;
* RKR — each shard returns its local top-k ``(rank, index)`` pairs with
  exact ranks; the global answer is the k lexicographically smallest
  pairs (:func:`~repro.queries.types.make_rkr_result`), which is
  byte-identical to the serial heap's tie-break (smaller index wins on
  equal ranks).

Lifecycle: the engine owns a process pool and the shared segments; call
:meth:`ShardedGirRRQ.close` (or use it as a context manager) to release
both.  Workers attach segments read-only-by-convention and detach on
exit; the parent unlinks at close.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.base import RRQAlgorithm
from ..data.datasets import ProductSet, WeightSet
from ..errors import InvalidParameterError
from ..obs.trace import span
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..stats.counters import OpCounter
from .girkernel import (
    DEFAULT_P_BLOCK,
    DEFAULT_W_BLOCK,
    GirKernelRRQ,
    KernelCore,
    KernelStats,
)

#: spec = (shm name, shape, dtype string) — everything a worker needs to
#: rebuild an ndarray view of one segment.
ArraySpec = Tuple[str, tuple, str]


def _share_array(arr: np.ndarray) -> Tuple[shared_memory.SharedMemory,
                                           ArraySpec]:
    """Copy ``arr`` into a fresh shared-memory segment; return handle + spec."""
    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return shm, (shm.name, arr.shape, arr.dtype.str)


def _attach_array(spec: ArraySpec) -> Tuple[np.ndarray,
                                            shared_memory.SharedMemory]:
    """Worker-side: map a segment by name and wrap it in an ndarray view.

    The segment must not be registered with this process's
    resource_tracker: the parent owns unlinking, and a tracker entry in
    a worker would tear the segment down when the *worker* exits
    (bpo-38119).  Python 3.13 grew ``track=False`` for exactly this;
    older versions need the unregister fallback.
    """
    name, shape, dtype = spec
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track flag
        # Suppress the attach-side tracker registration instead of
        # unregistering afterwards: under fork the tracker process is
        # shared with the parent, and an unregister here would strip the
        # parent's own entry (KeyError noise at unlink time).
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf), shm


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: Built by the pool initializer; one core (and its pinned segments) per
#: worker process.
_WORKER_CORE: Optional[KernelCore] = None
_WORKER_SEGMENTS: List[shared_memory.SharedMemory] = []

_ARRAY_KEYS = ("P", "W", "pa_lo", "pa_hi", "wb_lo", "wb_hi")


def _init_shard_worker(specs: Dict[str, ArraySpec], params: dict) -> None:
    global _WORKER_CORE
    arrays = {}
    for key in _ARRAY_KEYS:
        arr, shm = _attach_array(specs[key])
        arrays[key] = arr
        _WORKER_SEGMENTS.append(shm)  # keep mapped for the worker's lifetime
    _WORKER_CORE = KernelCore(**arrays, **params)


def _init_mmap_worker(directory: str, verify: str) -> None:
    """Pool initializer for store-fed workers: each worker memory-maps
    the on-disk kernel store directly (``np.load(mmap_mode='r')``), so
    spawn cost is O(mmap) and all workers share the page-cache copy —
    no shared-memory segments, no per-worker array materialization."""
    global _WORKER_CORE
    from .kernelstore import load_kernel

    _WORKER_CORE = load_kernel(directory, verify=verify).core


def _run_shard(task) -> Tuple[list, dict, dict]:
    kind, q, k, lo, hi = task
    counter = OpCounter()
    stats = KernelStats()
    if kind == "rtk":
        payload = _WORKER_CORE.rtk_indices(q, k, lo, hi, counter, stats)
    else:
        payload = _WORKER_CORE.rkr_pairs(q, k, lo, hi, counter, stats)
    return payload, counter.snapshot(), stats.snapshot()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


class ShardedGirRRQ(RRQAlgorithm):
    """Blocked GIR kernel with the weight scan sharded across processes.

    Parameters
    ----------
    products, weights:
        The data sets.
    shards:
        Worker process count (= shard count); defaults to
        ``os.cpu_count()``.  ``shards=1`` still runs through one worker
        so the code path is uniform (use :class:`GirKernelRRQ` directly
        when no parallelism is wanted).
    partitions, w_block, p_block, use_domin:
        Forwarded to the kernel (see :class:`GirKernelRRQ`).

    Everything is built once: the kernel arrays are quantized in the
    parent, published to shared memory, and the pool initializer maps
    them into each worker exactly once.  Answers are byte-identical to
    the serial kernel and to :class:`~repro.core.gir.GridIndexRRQ` (the
    tests enforce it).
    """

    name = "GIR-SHARD"

    def __init__(self, products: ProductSet, weights: WeightSet,
                 shards: Optional[int] = None,
                 partitions: Optional[int] = None,
                 w_block: int = DEFAULT_W_BLOCK,
                 p_block: int = DEFAULT_P_BLOCK,
                 use_domin: bool = True,
                 kernel: Optional[GirKernelRRQ] = None):
        super().__init__(products, weights)
        if shards is None:
            shards = os.cpu_count() or 1
        if shards < 1:
            raise InvalidParameterError(
                f"shards must be positive, got {shards}"
            )
        if kernel is None:
            kwargs = {} if partitions is None else {"partitions": partitions}
            kernel = GirKernelRRQ(products, weights, w_block=w_block,
                                  p_block=p_block, use_domin=use_domin,
                                  **kwargs)
        #: The serial kernel — source of the shared arrays, and the
        #: in-process fallback after :meth:`close`.
        self.kernel = kernel
        #: Local→global id map for snapshot-built engines (None = identity).
        self._w_gids: Optional[np.ndarray] = None
        self.shards = int(min(shards, self.W.shape[0]) or 1)
        #: Stats of the most recent query, merged across shards.
        self.last_stats: Optional[KernelStats] = None
        core = kernel.core
        self._segments: List[shared_memory.SharedMemory] = []
        specs: Dict[str, ArraySpec] = {}
        for key in _ARRAY_KEYS:
            shm, spec = _share_array(getattr(core, key))
            self._segments.append(shm)
            specs[key] = spec
        params = {"w_block": core.w_block, "p_block": core.p_block,
                  "use_domin": core.use_domin,
                  "filter_dtype": core.filter_dtype}
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.shards,
            initializer=_init_shard_worker,
            initargs=(specs, params),
        )
        bounds = np.linspace(0, self.W.shape[0], self.shards + 1).astype(int)
        self._ranges = [(int(lo), int(hi))
                        for lo, hi in zip(bounds[:-1], bounds[1:])
                        if hi > lo]

    @classmethod
    def from_snapshot(cls, snapshot, shards: Optional[int] = None,
                      partitions: Optional[int] = None,
                      w_block: int = DEFAULT_W_BLOCK,
                      p_block: int = DEFAULT_P_BLOCK,
                      use_domin: bool = True) -> "ShardedGirRRQ":
        """Build a sharded engine over one pinned MVCC store snapshot.

        The snapshot's live rows are gathered in ascending global-id
        order, densified into the kernel arrays, and answers are mapped
        back to the snapshot's stable global ids.  The id map is
        monotone, so the kernel's lexicographic ``(rank, index)``
        tie-break commutes with it — answers stay byte-identical to the
        snapshot's own merge path.  The caller keeps the snapshot
        pinned for as long as it wants the ids to stay meaningful; the
        engine itself copies everything it needs at build time.
        """
        p_rows, p_gids = snapshot.live_products()
        w_rows, w_gids = snapshot.live_weights()
        if p_rows.shape[0] == 0 or w_rows.shape[0] == 0:
            raise InvalidParameterError(
                "cannot build a sharded engine over an empty snapshot "
                f"({p_rows.shape[0]} products, {w_rows.shape[0]} weights)"
            )
        if partitions is None and snapshot.segments:
            partitions = snapshot.segments[0].partitions
        engine = cls(
            ProductSet(p_rows, value_range=snapshot.value_range),
            WeightSet(w_rows), shards=shards, partitions=partitions,
            w_block=w_block, p_block=p_block, use_domin=use_domin,
        )
        engine._w_gids = np.asarray(w_gids, dtype=np.int64)
        return engine

    @classmethod
    def from_store(cls, directory, shards: Optional[int] = None,
                   verify: str = "size") -> "ShardedGirRRQ":
        """Build a sharded engine over an on-disk kernel store.

        The parent and every worker memory-map the store written by
        :func:`repro.vectorized.kernelstore.save_kernel` instead of
        copying arrays into shared-memory segments: worker spawn cost
        drops to O(mmap), physical pages are shared through the page
        cache, and answers stay byte-identical (same arrays, same
        kernel).  The store must outlive the engine.
        """
        from .kernelstore import load_kernel

        kernel = load_kernel(directory, verify=verify)
        self = cls.__new__(cls)
        RRQAlgorithm.__init__(self, kernel.products, kernel.weights)
        if shards is None:
            shards = os.cpu_count() or 1
        if shards < 1:
            raise InvalidParameterError(
                f"shards must be positive, got {shards}"
            )
        self.kernel = kernel
        self._w_gids = None
        self.shards = int(min(shards, self.W.shape[0]) or 1)
        self.last_stats = None
        self._segments = []
        self._pool = ProcessPoolExecutor(
            max_workers=self.shards,
            initializer=_init_mmap_worker,
            initargs=(str(directory), verify),
        )
        bounds = np.linspace(0, self.W.shape[0], self.shards + 1).astype(int)
        self._ranges = [(int(lo), int(hi))
                        for lo, hi in zip(bounds[:-1], bounds[1:])
                        if hi > lo]
        return self

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down and unlink the shared segments.

        Idempotent and safe on half-built instances: a constructor that
        raised before ``_pool``/``_segments`` existed still gets
        garbage-collected through :meth:`__del__` → ``close()``, and at
        interpreter shutdown GC may run after module teardown — so every
        attribute access is guarded instead of assumed.
        """
        pool = getattr(self, "_pool", None)
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)
        segments = getattr(self, "_segments", None) or []
        self._segments = []
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover - gone
                pass

    def __enter__(self) -> "ShardedGirRRQ":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        # BaseException: at interpreter exit pool.shutdown can raise
        # RuntimeError subclasses or partially-torn-down builtins; a
        # destructor must never let anything escape.
        try:
            self.close()
        except BaseException:
            pass

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _scatter_gather(self, kind: str, q: np.ndarray, k: int,
                        counter: OpCounter) -> List[list]:
        """Fan one query across the shard pool; collect partial payloads."""
        stats = KernelStats()
        with span("shard.scatter_gather") as sp:
            sp.annotate("kind", kind)
            if self._pool is None:
                # Closed engine: serve in-process so callers holding a
                # reference keep getting exact answers.
                sp.annotate("shards", 1)
                sp.annotate("in_process", True)
                payload, csnap, ssnap = _serial_shard(self.kernel.core, kind,
                                                      q, k, self.W.shape[0])
                _merge_snapshots(counter, stats, csnap, ssnap)
                self.last_stats = stats
                return [payload]
            sp.annotate("shards", len(self._ranges))
            futures = [
                self._pool.submit(_run_shard, (kind, q, k, lo, hi))
                for lo, hi in self._ranges
            ]
            payloads = []
            for future in futures:
                payload, csnap, ssnap = future.result()
                payloads.append(payload)
                _merge_snapshots(counter, stats, csnap, ssnap)
            # The shards ran concurrently; queries counts as one scan.
            stats.queries = 1
            self.last_stats = stats
            return payloads

    def _reverse_topk(self, q: np.ndarray, k: int,
                      counter: OpCounter) -> RTKResult:
        payloads = self._scatter_gather("rtk", q, k, counter)
        t0 = perf_counter()
        if self._w_gids is not None:
            qualifying = frozenset(int(self._w_gids[j])
                                   for payload in payloads for j in payload)
        else:
            qualifying = frozenset(j for payload in payloads for j in payload)
        if self.last_stats is not None:
            self.last_stats.merge_s += perf_counter() - t0
        return RTKResult(weights=qualifying, k=k, counter=counter)

    def _reverse_kranks(self, q: np.ndarray, k: int,
                        counter: OpCounter) -> RKRResult:
        payloads = self._scatter_gather("rkr", q, k, counter)
        t0 = perf_counter()
        pairs = [tuple(pair) for payload in payloads for pair in payload]
        result = make_rkr_result(pairs, k, counter)
        if self._w_gids is not None:
            # The id map is monotone, so remapping after the merge keeps
            # the lexicographic (rank, index) truncation intact.
            result = RKRResult(
                entries=tuple((rank, int(self._w_gids[j]))
                              for rank, j in result.entries),
                k=result.k, counter=result.counter,
            )
        if self.last_stats is not None:
            self.last_stats.merge_s += perf_counter() - t0
        return result


def _serial_shard(core: KernelCore, kind: str, q: np.ndarray, k: int,
                  m_w: int) -> Tuple[list, dict, dict]:
    counter = OpCounter()
    stats = KernelStats()
    if kind == "rtk":
        payload = core.rtk_indices(q, k, 0, m_w, counter, stats)
    else:
        payload = core.rkr_pairs(q, k, 0, m_w, counter, stats)
    return payload, counter.snapshot(), stats.snapshot()


def _merge_snapshots(counter: OpCounter, stats: KernelStats,
                     csnap: dict, ssnap: dict) -> None:
    """Fold a shard's counter/stats snapshots into the parent objects."""
    for name, value in csnap.items():
        setattr(counter, name, getattr(counter, name) + value)
    stats.queries += ssnap["queries"]
    stats.filter_s += ssnap["stage_s"]["filter"]
    stats.refine_s += ssnap["stage_s"]["refine"]
    stats.merge_s += ssnap["stage_s"]["merge"]
    pairs = ssnap["pairs"]
    stats.pairs_total += pairs["total"]
    stats.pairs_case1 += pairs["case1"]
    stats.pairs_case2 += pairs["case2"]
    stats.pairs_refined += pairs["refined"]
    stats.pairs_domin_skipped += pairs["domin_skipped"]
    stats.pairs_f32 += pairs.get("f32", 0)
    stats.weights_pruned += ssnap["weights_pruned"]
    fused = ssnap.get("fused", {})
    stats.fused_batches += fused.get("batches", 0)
    stats.fused_queries += fused.get("queries", 0)
