"""Batch vectorized engines and process-parallel batch execution."""

from .batch import BatchOracle, all_ranks_multi
from .parallel import answer_batch

__all__ = ["BatchOracle", "all_ranks_multi", "answer_batch"]
