"""Batch vectorized engines and process-parallel batch execution."""

from .batch import BatchOracle, all_ranks_multi
from .parallel import BatchStats, answer_batch, answer_batch_stats

__all__ = ["BatchOracle", "all_ranks_multi", "answer_batch",
           "answer_batch_stats", "BatchStats"]
