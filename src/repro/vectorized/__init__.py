"""Batch vectorized engines and process-parallel batch execution."""

from .batch import BatchOracle, all_ranks_multi
from .girkernel import GirKernelRRQ, KernelCore, KernelStats
from .parallel import BatchStats, answer_batch, answer_batch_stats
from .shard import ShardedGirRRQ

__all__ = ["BatchOracle", "all_ranks_multi", "answer_batch",
           "answer_batch_stats", "BatchStats", "GirKernelRRQ",
           "KernelCore", "KernelStats", "ShardedGirRRQ"]
