"""Process-parallel execution of query batches.

The paper's protocol answers hundreds of queries per configuration and
each query is independent, so a batch parallelizes embarrassingly.  This
module fans a query batch across worker processes; each worker receives
the (picklable) algorithm object once via the pool initializer, so the
per-query overhead is one small task message.

Use for throughput, not latency: a single query is always faster served
in-process.  Results are returned in input order and are identical to the
serial answers (the tests enforce it) — all algorithms in this library
are deterministic.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import InvalidParameterError
from ..queries.types import RKRResult, RTKResult
from ..stats.timing import percentile

#: Set in each worker by the pool initializer.
_WORKER_ALGORITHM = None


@dataclass(frozen=True)
class BatchStats:
    """What :func:`answer_batch_stats` actually did for one batch.

    Attributes
    ----------
    batch_size:
        Number of queries answered.
    requested_workers:
        The caller's ``workers`` argument (``None`` = default).
    workers:
        The worker count actually used after capping at the batch size —
        spawning ``os.cpu_count()`` processes for a 2-query batch would
        pay pool startup for idle workers.
    parallel:
        False when the serial short-circuit ran (one worker or <= 1 query).
    elapsed_s:
        Wall-clock seconds for the whole batch.
    per_query_p50_s, per_query_p95_s:
        Nearest-rank percentiles of the individual query times (each
        query timed where it ran, so worker-side times exclude pool
        startup and task shipping).  ``0.0`` for an empty batch.
    """

    batch_size: int
    requested_workers: Optional[int]
    workers: int
    parallel: bool
    elapsed_s: float
    per_query_p50_s: float = 0.0
    per_query_p95_s: float = 0.0


def _init_worker(algorithm) -> None:
    global _WORKER_ALGORITHM
    _WORKER_ALGORITHM = algorithm


def _run_one(task):
    kind, q, k = task
    start = time.perf_counter()
    if kind == "rtk":
        result = _WORKER_ALGORITHM.reverse_topk(q, k)
    else:
        result = _WORKER_ALGORITHM.reverse_kranks(q, k)
    return result, time.perf_counter() - start


def answer_batch(
    algorithm,
    queries: Sequence,
    k: int,
    kind: str = "rtk",
    workers: Optional[int] = None,
) -> List[Union[RTKResult, RKRResult]]:
    """Answer ``queries`` with ``algorithm`` across worker processes.

    Parameters
    ----------
    algorithm:
        Any library algorithm/engine exposing ``reverse_topk`` /
        ``reverse_kranks``; must be picklable (all of ours are).
    queries:
        Iterable of query points.
    k:
        The query parameter.
    kind:
        ``"rtk"`` or ``"rkr"``.
    workers:
        Process count; defaults to ``os.cpu_count()`` capped at the batch
        size.  ``workers=1`` (or a single query) short-circuits to a
        serial loop with no pool.
    """
    results, _ = answer_batch_stats(algorithm, queries, k, kind, workers)
    return results


def answer_batch_stats(
    algorithm,
    queries: Sequence,
    k: int,
    kind: str = "rtk",
    workers: Optional[int] = None,
) -> Tuple[List[Union[RTKResult, RKRResult]], BatchStats]:
    """Like :func:`answer_batch`, also returning a :class:`BatchStats`.

    The stats expose the worker count actually chosen (after capping at
    the batch size), which the benchmarks and the serving layer report.
    """
    if kind not in ("rtk", "rkr"):
        raise InvalidParameterError("kind must be 'rtk' or 'rkr'")
    queries = list(queries)
    if workers is not None and workers < 1:
        raise InvalidParameterError("workers must be positive")
    requested = workers
    chosen = workers or os.cpu_count() or 1
    chosen = min(chosen, max(1, len(queries)))

    start = time.perf_counter()
    if chosen == 1 or len(queries) <= 1:
        method = (algorithm.reverse_topk if kind == "rtk"
                  else algorithm.reverse_kranks)
        results, times = [], []
        for q in queries:
            q_start = time.perf_counter()
            results.append(method(q, k))
            times.append(time.perf_counter() - q_start)
        stats = BatchStats(
            batch_size=len(queries), requested_workers=requested,
            workers=1, parallel=False,
            elapsed_s=time.perf_counter() - start,
            per_query_p50_s=percentile(times, 0.50),
            per_query_p95_s=percentile(times, 0.95),
        )
        return results, stats

    tasks = [(kind, q, k) for q in queries]
    with ProcessPoolExecutor(
        max_workers=chosen,
        initializer=_init_worker,
        initargs=(algorithm,),
    ) as pool:
        timed = list(pool.map(_run_one, tasks))
    results = [result for result, _ in timed]
    times = [elapsed for _, elapsed in timed]
    stats = BatchStats(
        batch_size=len(queries), requested_workers=requested,
        workers=chosen, parallel=True,
        elapsed_s=time.perf_counter() - start,
        per_query_p50_s=percentile(times, 0.50),
        per_query_p95_s=percentile(times, 0.95),
    )
    return results, stats
