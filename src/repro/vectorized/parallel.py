"""Process-parallel execution of query batches.

The paper's protocol answers hundreds of queries per configuration and
each query is independent, so a batch parallelizes embarrassingly.  This
module fans a query batch across worker processes; each worker receives
the (picklable) algorithm object once via the pool initializer, so the
per-query overhead is one small task message.

Use for throughput, not latency: a single query is always faster served
in-process.  Results are returned in input order and are identical to the
serial answers (the tests enforce it) — all algorithms in this library
are deterministic.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Union

from ..errors import InvalidParameterError
from ..queries.types import RKRResult, RTKResult

#: Set in each worker by the pool initializer.
_WORKER_ALGORITHM = None


def _init_worker(algorithm) -> None:
    global _WORKER_ALGORITHM
    _WORKER_ALGORITHM = algorithm


def _run_one(task):
    kind, q, k = task
    if kind == "rtk":
        return _WORKER_ALGORITHM.reverse_topk(q, k)
    return _WORKER_ALGORITHM.reverse_kranks(q, k)


def answer_batch(
    algorithm,
    queries: Sequence,
    k: int,
    kind: str = "rtk",
    workers: Optional[int] = None,
) -> List[Union[RTKResult, RKRResult]]:
    """Answer ``queries`` with ``algorithm`` across worker processes.

    Parameters
    ----------
    algorithm:
        Any library algorithm/engine exposing ``reverse_topk`` /
        ``reverse_kranks``; must be picklable (all of ours are).
    queries:
        Iterable of query points.
    k:
        The query parameter.
    kind:
        ``"rtk"`` or ``"rkr"``.
    workers:
        Process count; defaults to ``os.cpu_count()``.  ``workers=1`` (or
        a single query) short-circuits to a serial loop with no pool.
    """
    if kind not in ("rtk", "rkr"):
        raise InvalidParameterError("kind must be 'rtk' or 'rkr'")
    queries = list(queries)
    if workers is not None and workers < 1:
        raise InvalidParameterError("workers must be positive")
    workers = workers or os.cpu_count() or 1
    workers = min(workers, max(1, len(queries)))

    if workers == 1 or len(queries) <= 1:
        if kind == "rtk":
            return [algorithm.reverse_topk(q, k) for q in queries]
        return [algorithm.reverse_kranks(q, k) for q in queries]

    tasks = [(kind, q, k) for q in queries]
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(algorithm,),
    ) as pool:
        return list(pool.map(_run_one, tasks))
