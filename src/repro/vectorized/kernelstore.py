"""Zero-copy persistence for a built blocked kernel (mmap warm start).

Building a :class:`~repro.vectorized.girkernel.GirKernelRRQ` from raw
data costs a full validation + quantization + bound-gather sweep over
``P`` and ``W`` — cheap next to a query sweep, but it is pure overhead
on every cold start, worker spawn, and snapshot densification, and it
scales linearly with ``|W|``.  This module persists everything the
kernel needs — the six bound/data arrays, the approximate codes, and
(on the float32 filter path) the single-precision bound copies — as a
single packed blob (``kernel.bin``: raw C-contiguous array bytes at
64-byte-aligned offsets) plus a JSON ``kernel.meta`` that records each
array's dtype, shape and offset, committed through the same
checksummed-manifest protocol as the index store
(:func:`repro.core.storage.write_manifest_dir`: atomic per-file writes,
``MANIFEST.json`` written last as the commit point).

Loading maps ``kernel.bin`` once (``numpy.memmap``) and slices every
array out of it as a zero-copy ``frombuffer`` view — one open and one
``mmap(2)`` for the whole kernel, no per-array file opens or ``.npy``
header parses.  The dataset containers and :class:`KernelCore` are
reassembled around those views *without* re-validating or re-deriving
anything (construction is bypassed — the arrays were validated before
the save and are checksum-guarded after it), and first-touch I/O is
deferred to the page cache.  Cold start is O(mmap), not O(rebuild); a
warm page cache makes repeat loads nearly free, and worker processes
mapping the same blob share the physical pages.

Integrity: :func:`load_kernel` always checks the manifest and per-file
byte counts (missing / truncated files are caught without reading
array data, preserving the zero-copy property) and raises a structured
:class:`~repro.errors.IndexCorruptionError` on damage; pass
``verify="full"`` to also CRC-check every byte (reads the files once,
e.g. after a restore).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..core.approx import Quantizer
from ..core.grid import GridIndex
from ..core.storage import verify_manifest_dir, write_manifest_dir
from ..data.datasets import ProductSet, WeightSet
from ..errors import DataValidationError, IndexCorruptionError
from .girkernel import GirKernelRRQ, KernelCore, f32_gamma

_META_NAME = "kernel.meta"
_BLOB_NAME = "kernel.bin"
_MANIFEST_NAME = "MANIFEST.json"
_FORMAT_VERSION = 1
_ALIGN = 64  # cache-line alignment for every packed array

#: Core array artifacts every kernel store carries, in write order.
CORE_ARRAYS = ("P", "W", "pa_lo", "pa_hi", "wb_lo", "wb_hi", "pa", "wa")

#: float32 bound copies, present only when saved with filter_dtype=float32.
F32_ARRAYS = ("pa_lo32", "pa_hi32", "wb_lo32", "wb_hi32")


def _pack_blob(arrays: Dict[str, np.ndarray]):
    """Concatenate raw C-order array bytes at aligned offsets.

    Returns ``(blob_bytes, layout)`` where ``layout`` maps each array
    name to its ``{dtype, shape, offset}`` slice of the blob — all a
    loader needs to rebuild zero-copy views with ``np.frombuffer``.
    """
    blob = bytearray()
    layout: Dict[str, dict] = {}
    for name, arr in arrays.items():
        contig = np.ascontiguousarray(arr)
        pad = (-len(blob)) % _ALIGN
        blob.extend(b"\0" * pad)
        layout[name] = {
            "dtype": contig.dtype.str,
            "shape": list(contig.shape),
            "offset": len(blob),
        }
        blob.extend(contig.tobytes())
    return bytes(blob), layout


def kernel_config_digest(alpha_p, alpha_w, w_block: int, p_block: int,
                         use_domin: bool, filter_dtype: str) -> str:
    """Digest of everything that shapes a kernel's *answers-per-layout*.

    Grid boundaries (both axes, exact float64 bytes), tile schedule,
    Domin buffer and filter dtype — the settings ``kernel.meta`` used to
    omit, letting a cached ``static/`` kernel built under old boundaries
    be silently reused after a config change.  Two kernels with equal
    digests filter identically; a digest mismatch means the store must
    be rebuilt, not trusted.
    """
    h = hashlib.sha256()
    for arr in (alpha_p, alpha_w):
        a = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    h.update(f"|{int(w_block)}|{int(p_block)}"
             f"|{bool(use_domin)}|{filter_dtype}".encode())
    return h.hexdigest()


def config_digest_of(kernel: GirKernelRRQ) -> str:
    """:func:`kernel_config_digest` of a built kernel's own config."""
    core = kernel.core
    return kernel_config_digest(
        kernel.grid.alpha_p, kernel.grid.alpha_w,
        core.w_block, core.p_block, core.use_domin, core.filter_dtype,
    )


def store_config_digest(directory) -> Optional[str]:
    """The ``config_digest`` recorded in a store's ``kernel.meta``.

    Returns ``None`` when the store is absent, unreadable, or predates
    the digest field — callers treat all three as "unknown config" and
    rebuild rather than trust.
    """
    try:
        meta = json.loads((Path(directory) / _META_NAME).read_text())
    except (OSError, json.JSONDecodeError, ValueError):
        return None
    digest = meta.get("config_digest")
    return digest if isinstance(digest, str) else None


# ----------------------------------------------------------------------
# per-config store layout (the tuner's `--kernel-cache` extension)
# ----------------------------------------------------------------------

#: Pointer file naming the active tuned config inside a kernel cache.
TUNED_POINTER_NAME = "tuned.json"


def config_store_dir(cache_dir, digest: str) -> str:
    """``<cache_dir>/cfg-<digest12>`` — one store per kernel config."""
    return os.path.join(str(cache_dir), f"cfg-{digest[:12]}")


def read_tuned_pointer(cache_dir) -> Optional[dict]:
    """The active tuned-config pointer, or ``None`` when untuned/damaged.

    A well-formed pointer is ``{"digest": <full config digest>, ...}``;
    anything unreadable is treated as absent — the scheduler then falls
    back to the default ``static/`` entry (digest-verified itself), so a
    torn pointer can cost a rebuild but never a stale kernel.
    """
    try:
        pointer = json.loads(
            (Path(str(cache_dir)) / TUNED_POINTER_NAME).read_text()
        )
    except (OSError, json.JSONDecodeError, ValueError):
        return None
    if not isinstance(pointer, dict) or \
            not isinstance(pointer.get("digest"), str):
        return None
    return pointer


def write_tuned_pointer(cache_dir, digest: str,
                        config: Optional[dict] = None) -> None:
    """Atomically point the cache at ``cfg-<digest12>`` (tmp + rename)."""
    root = Path(cache_dir)
    root.mkdir(parents=True, exist_ok=True)
    payload = {"digest": str(digest)}
    if config is not None:
        payload["config"] = dict(config)
    tmp = root / (TUNED_POINTER_NAME + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, root / TUNED_POINTER_NAME)


def clear_tuned_pointer(cache_dir) -> None:
    """Drop the pointer (revert to the default ``static/`` entry)."""
    try:
        os.unlink(os.path.join(str(cache_dir), TUNED_POINTER_NAME))
    except OSError:
        pass


def _corrupt(directory, msg: str, artifacts=()) -> IndexCorruptionError:
    return IndexCorruptionError(
        f"{directory}: {msg}", directory=str(directory),
        artifacts=tuple(sorted(artifacts)),
    )


def save_kernel(directory, kernel: GirKernelRRQ,
                extras: Optional[Dict[str, np.ndarray]] = None) -> dict:
    """Persist a built kernel for O(mmap) reload; returns a size report.

    ``extras`` are additional named arrays stored (and mmap-reloaded)
    alongside the kernel — e.g. a :class:`SnapshotKernel`'s global-id
    maps.  Names must not collide with the kernel's own artifacts.

    The write is crash-safe with the same contract as the index store:
    artifacts land atomically and the checksum manifest is written
    last, so a reader at any instant sees a consistent or *provably*
    inconsistent directory, never a torn one.
    """
    extras = dict(extras or {})
    core = kernel.core
    arrays: Dict[str, np.ndarray] = {
        "P": core.P, "W": core.W,
        "pa_lo": core.pa_lo, "pa_hi": core.pa_hi,
        "wb_lo": core.wb_lo, "wb_hi": core.wb_hi,
        "pa": np.asarray(kernel.PA, dtype=np.int64),
        "wa": np.asarray(kernel.WA, dtype=np.int64),
    }
    f32 = core.filter_dtype == "float32"
    if f32:
        arrays.update({
            "pa_lo32": core.pa_lo32, "pa_hi32": core.pa_hi32,
            "wb_lo32": core.wb_lo32, "wb_hi32": core.wb_hi32,
        })
    for name in extras:
        if name in arrays or name in (_META_NAME, _BLOB_NAME,
                                      _MANIFEST_NAME):
            raise DataValidationError(
                f"extra array name {name!r} collides with a kernel artifact"
            )
        arrays[name] = np.asarray(extras[name])
    blob, layout = _pack_blob(arrays)
    meta = {
        "version": _FORMAT_VERSION,
        "dim": int(core.P.shape[1]),
        "n_products": int(core.P.shape[0]),
        "n_weights": int(core.W.shape[0]),
        "value_range": float(kernel.products.value_range),
        "alpha_p": kernel.grid.alpha_p.tolist(),
        "alpha_w": kernel.grid.alpha_w.tolist(),
        "w_block": core.w_block,
        "p_block": core.p_block,
        "use_domin": core.use_domin,
        "filter_dtype": core.filter_dtype,
        "config_digest": config_digest_of(kernel),
        "extras": sorted(extras),
        "arrays": layout,
    }
    payloads: Dict[str, bytes] = {
        _BLOB_NAME: blob,
        _META_NAME: json.dumps(meta, indent=2).encode(),
    }
    files = write_manifest_dir(directory, payloads,
                               site_prefix="kernelstore.write")
    return {
        "files": len(files) + 1,
        "bytes": sum(entry["bytes"] for entry in files.values()),
    }


def kernel_store_size(directory) -> int:
    """Total on-disk bytes of a kernel store (0 when absent/empty)."""
    path = Path(directory)
    if not path.is_dir():
        return 0
    return sum(f.stat().st_size for f in path.iterdir() if f.is_file())


def _check_store(path: Path, verify: str) -> dict:
    """Manifest + size (or full CRC) verification; returns the meta dict."""
    if verify not in ("size", "full"):
        raise DataValidationError(f"verify must be 'size' or 'full', "
                                  f"got {verify!r}")
    manifest_path = path / _MANIFEST_NAME
    if not manifest_path.exists():
        raise _corrupt(path, "not a kernel store (missing MANIFEST.json)",
                       [_MANIFEST_NAME])
    if verify == "full":
        report = verify_manifest_dir(path)
        if not report["ok"]:
            raise _corrupt(
                path,
                "integrity check failed for "
                + ", ".join(sorted(report["damaged"])),
                report["damaged"],
            )
    else:
        try:
            manifest = json.loads(manifest_path.read_bytes())
            entries = manifest["files"]
        except (json.JSONDecodeError, ValueError, KeyError, TypeError):
            raise _corrupt(path, "corrupt MANIFEST.json",
                           [_MANIFEST_NAME]) from None
        damaged = []
        base = str(path)
        for name, entry in entries.items():
            try:
                size = os.stat(os.path.join(base, name)).st_size
            except OSError:
                size = -1
            if size != entry.get("bytes"):
                damaged.append(name)
        if damaged:
            raise _corrupt(
                path,
                "missing or truncated artifacts: " + ", ".join(sorted(damaged)),
                damaged,
            )
    try:
        meta = json.loads((path / _META_NAME).read_text())
    except (OSError, json.JSONDecodeError, ValueError):
        raise _corrupt(path, f"unreadable {_META_NAME}",
                       [_META_NAME]) from None
    if meta.get("version") != _FORMAT_VERSION:
        raise DataValidationError(
            f"{path}: unsupported kernel store version {meta.get('version')}"
        )
    return meta


def _blob_views(path: Path, meta: dict, mmap: bool) -> Dict[str, np.ndarray]:
    """Slice every array out of ``kernel.bin`` as a zero-copy view.

    One open + one ``mmap(2)`` serves the whole kernel; each array is a
    read-only ``np.frombuffer`` window at its recorded offset.  With
    ``mmap=False`` the blob is read into RAM once and sliced the same
    way.
    """
    blob_path = path / _BLOB_NAME
    try:
        if mmap:
            buf = np.memmap(blob_path, dtype=np.uint8, mode="r")
        else:
            buf = np.frombuffer(blob_path.read_bytes(), dtype=np.uint8)
    except (OSError, ValueError) as exc:
        raise _corrupt(path, f"cannot map {_BLOB_NAME} ({exc})",
                       [_BLOB_NAME]) from exc
    views: Dict[str, np.ndarray] = {}
    try:
        for name, spec in meta["arrays"].items():
            shape = tuple(int(s) for s in spec["shape"])
            views[name] = np.frombuffer(
                buf, dtype=np.dtype(spec["dtype"]),
                count=math.prod(shape), offset=int(spec["offset"]),
            ).reshape(shape)
    except (KeyError, TypeError, ValueError) as exc:
        raise _corrupt(path, f"blob layout mismatch ({exc})",
                       [_BLOB_NAME, _META_NAME]) from exc
    return views


def _dataset_views(P: np.ndarray, W: np.ndarray, value_range: float):
    """Rebuild the dataset containers around mmap views, skipping the
    construction-time validation sweeps (the arrays were validated
    before the save and are checksum-guarded after it)."""
    products = ProductSet.__new__(ProductSet)
    object.__setattr__(products, "values", P)
    object.__setattr__(products, "value_range", float(value_range))
    weights = WeightSet.__new__(WeightSet)
    object.__setattr__(weights, "values", W)
    return products, weights


def _core_from_views(arrays: Dict[str, np.ndarray], meta: dict) -> KernelCore:
    """Reassemble a KernelCore around mmap views without the __init__
    copies/scans (``astype`` of the f32 bounds, the non-negativity
    probe) — the saved store already carries their results."""
    core = KernelCore.__new__(KernelCore)
    core.P = arrays["P"]
    core.W = arrays["W"]
    core.pa_lo = arrays["pa_lo"]
    core.pa_hi = arrays["pa_hi"]
    core.wb_lo = arrays["wb_lo"]
    core.wb_hi = arrays["wb_hi"]
    core.w_block = int(meta["w_block"])
    core.p_block = int(meta["p_block"])
    core.use_domin = bool(meta["use_domin"])
    core.filter_dtype = meta["filter_dtype"]
    core._f32 = core.filter_dtype == "float32"
    if core._f32:
        core._gamma = f32_gamma(core.P.shape[1])
        core.pa_lo32 = arrays["pa_lo32"]
        core.pa_hi32 = arrays["pa_hi32"]
        core.wb_lo32 = arrays["wb_lo32"]
        core.wb_hi32 = arrays["wb_hi32"]
    else:
        core._gamma = 0.0
        core.pa_lo32 = core.pa_hi32 = None
        core.wb_lo32 = core.wb_hi32 = None
    return core


def load_kernel(directory, mmap: bool = True, verify: str = "size",
                expected_digest: Optional[str] = None) -> GirKernelRRQ:
    """Load a kernel saved by :func:`save_kernel` as zero-copy mmap views.

    ``verify="size"`` (default) checks the manifest and per-file byte
    counts without touching array data; ``verify="full"`` additionally
    CRC-checks every byte.  ``mmap=False`` materializes the arrays in
    RAM (useful when the store lives on slow storage and will be hit
    hard).  Raises :class:`IndexCorruptionError` on damage, or — when
    ``expected_digest`` is given — when the store's recorded
    ``config_digest`` is missing or different (a kernel built under a
    different grid config; callers refuse it and rebuild).
    """
    kernel, _ = load_kernel_bundle(directory, mmap=mmap, verify=verify,
                                   expected_digest=expected_digest)
    return kernel


def load_kernel_bundle(directory, mmap: bool = True, verify: str = "size",
                       expected_digest: Optional[str] = None):
    """Like :func:`load_kernel` but also returns the saved extras dict."""
    path = Path(directory)
    meta = _check_store(path, verify)
    if expected_digest is not None:
        recorded = meta.get("config_digest")
        if recorded != expected_digest:
            raise _corrupt(
                path,
                "kernel store was built under a different grid config "
                f"(recorded digest {recorded!r}, expected "
                f"{expected_digest!r}) — refusing stale kernel",
                [_META_NAME],
            )
    views = _blob_views(path, meta, mmap)
    names = list(CORE_ARRAYS)
    if meta["filter_dtype"] == "float32":
        names += list(F32_ARRAYS)
    missing = [n for n in names if n not in views]
    if missing:
        raise _corrupt(path, "arrays missing from blob layout: "
                       + ", ".join(missing), [_META_NAME])
    arrays = {name: views[name] for name in names}
    extras = {name: views[name] for name in meta.get("extras", ())
              if name in views}

    products, weights = _dataset_views(arrays["P"], arrays["W"],
                                       meta["value_range"])
    kernel = GirKernelRRQ.__new__(GirKernelRRQ)
    # RRQAlgorithm.__init__ is only a dim-compatibility check plus raw
    # array aliases — safe and O(1) over the views.
    from ..algorithms.base import RRQAlgorithm
    RRQAlgorithm.__init__(kernel, products, weights)
    grid = GridIndex(np.asarray(meta["alpha_p"], dtype=np.float64),
                     np.asarray(meta["alpha_w"], dtype=np.float64))
    kernel.grid = grid
    kernel.p_quantizer = Quantizer(grid.alpha_p)
    kernel.w_quantizer = Quantizer(grid.alpha_w)
    kernel.PA = arrays["pa"]
    kernel.WA = arrays["wa"]
    kernel.core = _core_from_views(arrays, meta)
    kernel.last_stats = None
    return kernel, extras
