"""The weight-blocked GIR kernel: grid-bound filtering without a weight loop.

:class:`~repro.core.gir.GridIndexRRQ` drives Algorithm 1 through a Python
loop over ``W`` — one :func:`~repro.core.gin.gin_topk` call per weight
vector.  The per-call interpreter overhead is tiny next to ``|P|`` bound
checks, but multiplied by millions of weights it dwarfs the arithmetic the
Grid-index was built to avoid.  This module evaluates the same bounds for
an entire *block* of weights at once:

* the pre-gathered boundary matrices ``alpha_p[PA]`` / ``alpha_p[PA + 1]``
  (products) and ``alpha_w[WA]`` / ``alpha_w[WA + 1]`` (weights) turn the
  Equation 3/4 bound sums of every ``(p, w)`` pair in a
  ``(P-block, W-block)`` tile into one BLAS matrix product — bit-for-bit
  the same Grid-index cells as the per-pair gathers, assembled wholesale;
* whole tiles are classified in bulk into definitely-better (Case 1),
  definitely-worse (Case 2) and undecided pairs with two vectorized
  comparisons;
* only the undecided band is refined with exact dot products (one
  ``einsum`` over the COO pair list), with near-ties re-decided in exact
  rational arithmetic exactly like every other engine in the library.

Answers are **byte-identical** to :class:`GridIndexRRQ` and
:class:`~repro.algorithms.naive.NaiveRRQ`: the Domin semantics (k
strictly dominating products ⇒ empty RTK answer) and the RKR minRank
feedback (a weight block is pruned when its certain-better count already
reaches the current k-th best rank) are preserved, and every comparison
that could be perturbed by BLAS rounding goes through the near-tie band
of :mod:`repro.core.ties`.  Only the *work* differs, and
:class:`KernelStats` reports exactly where it went (filter / refine /
merge stage seconds, pair classification counts).

The compute core is array-only (:class:`KernelCore`) so that
:mod:`repro.vectorized.shard` can run it inside worker processes over
``multiprocessing.shared_memory`` views without re-quantizing anything.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, fields
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.base import RRQAlgorithm, duplicate_mask
from ..core.approx import Quantizer, quantize_dataset
from ..core.grid import DEFAULT_PARTITIONS, GridIndex
from ..core.ties import TIE_REL_TOL, exact_strictly_less
from ..data.datasets import ProductSet, WeightSet
from ..errors import InvalidParameterError
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..stats.counters import OpCounter

#: Weights classified per tile.  1024 weights x 2048 products of float64
#: bounds is a 16 MB working set — big enough to amortize BLAS dispatch,
#: small enough to stay cache/RAM friendly.
DEFAULT_W_BLOCK = 1024

#: Products per tile (rows of the bound matrices), the cap of the
#: escalating tile schedule.
DEFAULT_P_BLOCK = 2048

#: First tile of the escalating schedule: small, like gin_topk's scan
#: chunk, so the k / minRank abort kills most weight columns after a few
#: hundred products; later tiles quadruple up to ``p_block`` once the
#: survivor set is thin.
FIRST_P_TILE = 256


@dataclass
class KernelStats:
    """Where a kernel query's time and pairs went.

    Attributes
    ----------
    queries:
        Queries accumulated into this stats object.
    filter_s, refine_s, merge_s:
        Seconds spent assembling/classifying grid bounds, refining the
        undecided band with exact dot products, and merging per-block
        (or per-shard) partial answers.
    pairs_total:
        Live ``(p, w)`` pairs that entered bound classification.
    pairs_case1:
        Pairs decided "p definitely out-ranks q" by the upper bound.
    pairs_case2:
        Pairs decided "q definitely out-ranks p" by the lower bound.
    pairs_refined:
        Undecided pairs that needed an exact dot product.
    pairs_domin_skipped:
        Pairs never classified because the product strictly dominates
        the query (counted straight into every weight's rank floor).
    weights_pruned:
        Weight vectors dropped without refinement because their
        certain-better count already met the k / minRank abort threshold.
    """

    queries: int = 0
    filter_s: float = 0.0
    refine_s: float = 0.0
    merge_s: float = 0.0
    pairs_total: int = 0
    pairs_case1: int = 0
    pairs_case2: int = 0
    pairs_refined: int = 0
    pairs_domin_skipped: int = 0
    weights_pruned: int = 0

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Accumulate ``other`` into this object and return ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @property
    def pairs_decided(self) -> int:
        """Pairs settled by bounds alone (no exact dot product)."""
        return self.pairs_case1 + self.pairs_case2

    def filter_rate(self) -> float:
        """Fraction of classified pairs decided without refinement."""
        if self.pairs_total == 0:
            return 0.0
        return self.pairs_decided / self.pairs_total

    def snapshot(self) -> dict:
        """JSON-ready dict (used by ``/metrics`` and the bench harness)."""
        return {
            "queries": self.queries,
            "stage_s": {
                "filter": self.filter_s,
                "refine": self.refine_s,
                "merge": self.merge_s,
            },
            "pairs": {
                "total": self.pairs_total,
                "case1": self.pairs_case1,
                "case2": self.pairs_case2,
                "refined": self.pairs_refined,
                "domin_skipped": self.pairs_domin_skipped,
            },
            "weights_pruned": self.weights_pruned,
            "filter_rate": self.filter_rate(),
        }


def _check_block(value: int, name: str) -> int:
    if int(value) < 1:
        raise InvalidParameterError(f"{name} must be positive, got {value}")
    return int(value)


@dataclass
class _QueryState:
    """Per-query prep shared by every weight block of one scan."""

    #: Global row indices of live products, or ``None`` for "all rows"
    #: (the common case: no duplicates of q, nothing dominating it).
    rows: Optional[np.ndarray]
    #: Bound matrices restricted to the live rows.
    a_lo: np.ndarray
    a_hi: np.ndarray
    #: Size of the Domin set — the rank floor under every weight.
    n_dom: int
    #: Live products (bound-classified rows).
    n_live: int


class KernelCore:
    """Array-only compute core of the blocked kernel.

    Deliberately free of dataset/quantizer objects so shard workers can
    build one directly over shared-memory views.  All arrays are taken
    as-is (float64, C-contiguous preferred); ``pa_lo``/``pa_hi`` are the
    pre-gathered product-side boundary matrices ``alpha_p[PA]`` /
    ``alpha_p[PA + 1]``, and ``wb_lo``/``wb_hi`` the weight-side
    ``alpha_w[WA]`` / ``alpha_w[WA + 1]``.
    """

    def __init__(self, P: np.ndarray, W: np.ndarray,
                 pa_lo: np.ndarray, pa_hi: np.ndarray,
                 wb_lo: np.ndarray, wb_hi: np.ndarray,
                 w_block: int = DEFAULT_W_BLOCK,
                 p_block: int = DEFAULT_P_BLOCK,
                 use_domin: bool = True):
        self.P = np.asarray(P, dtype=np.float64)
        self.W = np.asarray(W, dtype=np.float64)
        self.pa_lo = np.asarray(pa_lo, dtype=np.float64)
        self.pa_hi = np.asarray(pa_hi, dtype=np.float64)
        self.wb_lo = np.asarray(wb_lo, dtype=np.float64)
        self.wb_hi = np.asarray(wb_hi, dtype=np.float64)
        self.w_block = _check_block(w_block, "w_block")
        self.p_block = _check_block(p_block, "p_block")
        self.use_domin = bool(use_domin)

    # ------------------------------------------------------------------
    # per-query preparation
    # ------------------------------------------------------------------

    def prepare(self, q: np.ndarray) -> _QueryState:
        """Skip mask, Domin floor and live-row bound matrices for ``q``."""
        excluded = duplicate_mask(self.P, q)
        n_dom = 0
        if self.use_domin:
            # The full Domin set up front: one vectorized pass replaces
            # Algorithm 1's lazy per-weight discovery.  Every dominator
            # contributes exactly 1 to every weight's rank either way.
            domin = np.all(self.P < q, axis=1)
            n_dom = int(np.count_nonzero(domin))
            if n_dom:
                excluded = excluded | domin
        if excluded.any():
            rows = np.flatnonzero(~excluded)
            a_lo, a_hi = self.pa_lo[rows], self.pa_hi[rows]
        else:
            rows, a_lo, a_hi = None, self.pa_lo, self.pa_hi
        n_live = a_lo.shape[0]
        return _QueryState(rows=rows, a_lo=a_lo, a_hi=a_hi,
                           n_dom=n_dom, n_live=n_live)

    # ------------------------------------------------------------------
    # the blocked filter
    # ------------------------------------------------------------------

    def _classify(self, state: _QueryState, fq: np.ndarray, tol: np.ndarray,
                  ws: int, we: int, limit: float, counter: OpCounter,
                  stats: KernelStats,
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Bound-classify the live pairs for weights ``[ws, we)``.

        Returns ``(counts, und_rows, und_cols, alive)``: per-weight
        certain-better counts (Domin floor included), the COO coordinates
        of the undecided pairs (``und_rows`` are *global* P row indices,
        ``und_cols`` block-local weight offsets), and the survivor mask.

        ``limit`` carries the abort semantics of Algorithm 1 into the
        blocked scan: the certain-better count is a lower bound on the
        exact rank, so once a weight's count reaches ``limit`` (``k``
        for RTK, the current k-th best rank for RKR) it can never enter
        the answer.  Dead weights are compacted out of the remaining
        tiles — the bulk equivalent of gin_topk's early return, and
        where most of the speedup over the full sweep comes from.
        """
        t0 = perf_counter()
        B = we - ws
        d = self.P.shape[1]
        hi_gate = fq - tol
        lo_gate = fq + tol
        counts = np.full(B, state.n_dom, dtype=np.int64)
        #: Columns still worth classifying, as block-local indices.
        active = np.flatnonzero(counts < limit)
        und_rows: List[np.ndarray] = []
        und_cols: List[np.ndarray] = []
        for ps, pe in self._tiles(state.n_live):
            if active.size == 0:
                break
            wb_hi = self.wb_hi[ws:we][active]
            wb_lo = self.wb_lo[ws:we][active]
            # Equations 3-4 for the whole tile: two dgemms instead of
            # (pe - ps) * |active| per-pair grid gathers.
            upper = state.a_hi[ps:pe] @ wb_hi.T
            case1 = upper < hi_gate[active]
            counts[active] += case1.sum(axis=0, dtype=np.int64)
            lower = state.a_lo[ps:pe] @ wb_lo.T
            undecided = lower <= lo_gate[active]
            undecided &= ~case1
            n_pairs = (pe - ps) * active.size
            n_case1 = int(np.count_nonzero(case1))
            n_und = int(np.count_nonzero(undecided))
            counter.approx_accessed += pe - ps
            counter.grid_lookups += n_pairs * d + (n_pairs - n_case1) * d
            counter.additions += n_pairs * d + (n_pairs - n_case1) * d
            counter.filtered_case1 += n_case1
            counter.filtered_case2 += n_pairs - n_case1 - n_und
            stats.pairs_total += n_pairs
            stats.pairs_case1 += n_case1
            stats.pairs_case2 += n_pairs - n_case1 - n_und
            if n_und:
                rr, cc = np.nonzero(undecided)
                rr = rr + ps
                if state.rows is not None:
                    rr = state.rows[rr]
                und_rows.append(rr)
                und_cols.append(active[cc])
            survivors = counts[active] < limit
            if not survivors.all():
                active = active[survivors]
        if und_rows:
            rows_arr = np.concatenate(und_rows)
            cols_arr = np.concatenate(und_cols)
        else:
            rows_arr = np.empty(0, dtype=np.intp)
            cols_arr = np.empty(0, dtype=np.intp)
        alive = counts < limit
        stats.filter_s += perf_counter() - t0
        return counts, rows_arr, cols_arr, alive

    def _tiles(self, n_live: int):
        """The escalating P-tile schedule: ``FIRST_P_TILE`` rows, then
        quadrupling up to ``p_block`` per tile."""
        size = min(FIRST_P_TILE, self.p_block)
        ps = 0
        while ps < n_live:
            pe = min(ps + size, n_live)
            yield ps, pe
            ps = pe
            size = min(size * 4, self.p_block)

    def _refine(self, q: np.ndarray, fq: np.ndarray, tol: np.ndarray,
                ws: int, B: int, und_rows: np.ndarray, und_cols: np.ndarray,
                alive: np.ndarray, counter: OpCounter, stats: KernelStats,
                ) -> np.ndarray:
        """Exact strictly-better counts per weight for the undecided band.

        Only pairs whose weight is still ``alive`` (not pruned by the k /
        minRank threshold) are scored.  Near-ties are re-decided in exact
        rational arithmetic, so the counts match every other engine
        bit-for-bit regardless of which BLAS kernel produced the floats.
        """
        t0 = perf_counter()
        keep = alive[und_cols]
        rows = und_rows[keep]
        cols = und_cols[keep]
        add = np.zeros(B, dtype=np.int64)
        if rows.size:
            w_rows = self.W[ws + cols]
            scores = np.einsum("ij,ij->i", self.P[rows], w_rows)
            f = fq[cols]
            t = tol[cols]
            better = scores < f - t
            near = np.flatnonzero(np.abs(scores - f) <= t)
            for i in near:
                better[i] = exact_strictly_less(w_rows[i], self.P[rows[i]], q)
            add = np.bincount(cols[better], minlength=B)
            counter.pairwise += rows.size
            counter.points_accessed += rows.size
            counter.refined += rows.size
            stats.pairs_refined += int(rows.size)
        stats.refine_s += perf_counter() - t0
        return add

    def _block_scores(self, q: np.ndarray, ws: int, we: int,
                      counter: OpCounter) -> Tuple[np.ndarray, np.ndarray]:
        """``f_w(q)`` and the near-tie half-width for weights ``[ws, we)``."""
        fq = self.W[ws:we] @ q
        tol = TIE_REL_TOL * (1.0 + np.abs(fq))
        counter.pairwise += we - ws
        return fq, tol

    # ------------------------------------------------------------------
    # query kinds (range-restricted so shards can reuse them)
    # ------------------------------------------------------------------

    def rtk_indices(self, q: np.ndarray, k: int, lo: int, hi: int,
                    counter: OpCounter, stats: KernelStats) -> List[int]:
        """Weight indices in ``[lo, hi)`` whose rank of ``q`` is below ``k``."""
        stats.queries += 1
        state = self.prepare(q)
        if state.n_dom >= k:
            # k dominating products out-rank q under *every* weight: the
            # answer is empty everywhere (Algorithm 2 lines 7-8).
            stats.pairs_domin_skipped += state.n_dom * (hi - lo)
            stats.weights_pruned += hi - lo
            counter.dominated_skips += state.n_dom * (hi - lo)
            counter.early_terminations += hi - lo
            return []
        result: List[int] = []
        stats.pairs_domin_skipped += state.n_dom * (hi - lo)
        counter.dominated_skips += state.n_dom * (hi - lo)
        for ws in range(lo, hi, self.w_block):
            we = min(ws + self.w_block, hi)
            B = we - ws
            fq, tol = self._block_scores(q, ws, we, counter)
            counts, und_r, und_c, alive = self._classify(
                state, fq, tol, ws, we, k, counter, stats
            )
            n_pruned = B - int(np.count_nonzero(alive))
            stats.weights_pruned += n_pruned
            counter.early_terminations += n_pruned
            counts += self._refine(q, fq, tol, ws, B, und_r, und_c, alive,
                                   counter, stats)
            t0 = perf_counter()
            hits = np.flatnonzero(counts < k)
            result.extend((hits + ws).tolist())
            stats.merge_s += perf_counter() - t0
        return result

    def rkr_pairs(self, q: np.ndarray, k: int, lo: int, hi: int,
                  counter: OpCounter, stats: KernelStats,
                  ) -> List[Tuple[int, int]]:
        """The k best ``(rank, weight index)`` pairs within ``[lo, hi)``.

        Tie-break matches the library contract: among equal ranks the
        smaller index wins (blocks are scanned in index order and the
        heap replacement test is strict, like Algorithm 3).
        """
        stats.queries += 1
        state = self.prepare(q)
        stats.pairs_domin_skipped += state.n_dom * (hi - lo)
        counter.dominated_skips += state.n_dom * (hi - lo)
        # Max-heap of the current k best: entries (-rank, -index).
        heap: List[Tuple[int, int]] = []
        for ws in range(lo, hi, self.w_block):
            we = min(ws + self.w_block, hi)
            B = we - ws
            min_rank = float("inf") if len(heap) < k else float(-heap[0][0])
            fq, tol = self._block_scores(q, ws, we, counter)
            # minRank feedback: the threshold is the one from *before*
            # this block — minRank only shrinks, so the stale value
            # prunes less than Algorithm 3's per-weight update, never
            # wrongly.
            counts, und_r, und_c, alive = self._classify(
                state, fq, tol, ws, we, min_rank, counter, stats
            )
            n_pruned = B - int(np.count_nonzero(alive))
            stats.weights_pruned += n_pruned
            counter.early_terminations += n_pruned
            counts += self._refine(q, fq, tol, ws, B, und_r, und_c, alive,
                                   counter, stats)
            t0 = perf_counter()
            for j in np.flatnonzero(alive):
                rnk = int(counts[j])
                if len(heap) < k:
                    heapq.heappush(heap, (-rnk, -(ws + int(j))))
                elif rnk < -heap[0][0]:
                    heapq.heapreplace(heap, (-rnk, -(ws + int(j))))
            stats.merge_s += perf_counter() - t0
        return [(-neg_rank, -neg_idx) for neg_rank, neg_idx in heap]


class GirKernelRRQ(RRQAlgorithm):
    """Grid-index RRQ answered by the weight-blocked kernel.

    Drop-in replacement for :class:`~repro.core.gir.GridIndexRRQ` with
    identical answers and the same construction surface (``partitions``,
    ``grid``, quantizer overrides, ``use_domin``), plus the blocking
    knobs ``w_block`` / ``p_block``.  After every query
    :attr:`last_stats` holds that query's :class:`KernelStats` (the
    scheduler feeds these into ``/metrics``).
    """

    name = "GIR-K"

    def __init__(self, products: ProductSet, weights: WeightSet,
                 partitions: int = DEFAULT_PARTITIONS,
                 grid: Optional[GridIndex] = None,
                 p_quantizer: Optional[Quantizer] = None,
                 w_quantizer: Optional[Quantizer] = None,
                 w_block: int = DEFAULT_W_BLOCK,
                 p_block: int = DEFAULT_P_BLOCK,
                 use_domin: bool = True):
        super().__init__(products, weights)
        if grid is None:
            # Identical grid recipe to GridIndexRRQ (see the rationale
            # there): weight-axis resolution spans the observed range.
            w_range = float(self.W.max())
            alpha_p = np.linspace(0.0, products.value_range, partitions + 1)
            alpha_w = np.linspace(0.0, w_range, partitions + 1)
            grid = GridIndex(alpha_p, alpha_w)
        self.grid = grid
        self.p_quantizer = p_quantizer or Quantizer(grid.alpha_p)
        self.w_quantizer = w_quantizer or Quantizer(grid.alpha_w)
        self.PA = quantize_dataset(self.P, self.p_quantizer)
        self.WA = quantize_dataset(self.W, self.w_quantizer)
        self.core = self._build_core(w_block, p_block, use_domin)
        #: Stats of the most recent query (None before the first).
        self.last_stats: Optional[KernelStats] = None

    def _build_core(self, w_block: int, p_block: int,
                    use_domin: bool) -> KernelCore:
        pa = self.PA.astype(np.intp, copy=False)
        wa = self.WA.astype(np.intp, copy=False)
        return KernelCore(
            P=self.P, W=self.W,
            pa_lo=self.grid.alpha_p[pa],
            pa_hi=self.grid.alpha_p[pa + 1],
            wb_lo=self.grid.alpha_w[wa],
            wb_hi=self.grid.alpha_w[wa + 1],
            w_block=w_block, p_block=p_block, use_domin=use_domin,
        )

    # ------------------------------------------------------------------

    @classmethod
    def from_gir(cls, gir, w_block: int = DEFAULT_W_BLOCK,
                 p_block: int = DEFAULT_P_BLOCK) -> "GirKernelRRQ":
        """Wrap an existing :class:`GridIndexRRQ`, reusing its grid and
        approximate vectors (no re-quantization)."""
        self = cls.__new__(cls)
        RRQAlgorithm.__init__(self, gir.products, gir.weights)
        self.grid = gir.grid
        self.p_quantizer = gir.p_quantizer
        self.w_quantizer = gir.w_quantizer
        self.PA = gir.PA
        self.WA = gir.WA
        self.core = self._build_core(w_block, p_block, gir.use_domin)
        self.last_stats = None
        return self

    @property
    def partitions(self) -> int:
        """Grid resolution ``n``."""
        return self.grid.partitions

    @property
    def use_domin(self) -> bool:
        """Whether the Domin rank floor is applied."""
        return self.core.use_domin

    def memory_report(self) -> dict:
        """Bytes held by the grid, codes, and pre-gathered bound matrices."""
        return {
            "grid_bytes": self.grid.memory_bytes,
            "pa_bytes": self.PA.nbytes,
            "wa_bytes": self.WA.nbytes,
            "bound_matrix_bytes": (self.core.pa_lo.nbytes
                                   + self.core.pa_hi.nbytes
                                   + self.core.wb_lo.nbytes
                                   + self.core.wb_hi.nbytes),
            "original_bytes": self.P.nbytes + self.W.nbytes,
        }

    # ------------------------------------------------------------------

    def _reverse_topk(self, q: np.ndarray, k: int,
                      counter: OpCounter) -> RTKResult:
        stats = KernelStats()
        hits = self.core.rtk_indices(q, k, 0, self.W.shape[0], counter, stats)
        self.last_stats = stats
        return RTKResult(weights=frozenset(hits), k=k, counter=counter)

    def _reverse_kranks(self, q: np.ndarray, k: int,
                        counter: OpCounter) -> RKRResult:
        stats = KernelStats()
        pairs = self.core.rkr_pairs(q, k, 0, self.W.shape[0], counter, stats)
        self.last_stats = stats
        return make_rkr_result(pairs, k, counter)
