"""The weight-blocked GIR kernel: grid-bound filtering without a weight loop.

:class:`~repro.core.gir.GridIndexRRQ` drives Algorithm 1 through a Python
loop over ``W`` — one :func:`~repro.core.gin.gin_topk` call per weight
vector.  The per-call interpreter overhead is tiny next to ``|P|`` bound
checks, but multiplied by millions of weights it dwarfs the arithmetic the
Grid-index was built to avoid.  This module evaluates the same bounds for
an entire *block* of weights at once:

* the pre-gathered boundary matrices ``alpha_p[PA]`` / ``alpha_p[PA + 1]``
  (products) and ``alpha_w[WA]`` / ``alpha_w[WA + 1]`` (weights) turn the
  Equation 3/4 bound sums of every ``(p, w)`` pair in a
  ``(P-block, W-block)`` tile into one BLAS matrix product — bit-for-bit
  the same Grid-index cells as the per-pair gathers, assembled wholesale;
* whole tiles are classified in bulk into definitely-better (Case 1),
  definitely-worse (Case 2) and undecided pairs with two vectorized
  comparisons;
* only the undecided band is refined with exact dot products (one
  ``einsum`` over the COO pair list), with near-ties re-decided in exact
  rational arithmetic exactly like every other engine in the library.

Answers are **byte-identical** to :class:`GridIndexRRQ` and
:class:`~repro.algorithms.naive.NaiveRRQ`: the Domin semantics (k
strictly dominating products ⇒ empty RTK answer) and the RKR minRank
feedback (a weight block is pruned when its certain-better count already
reaches the current k-th best rank) are preserved, and every comparison
that could be perturbed by BLAS rounding goes through the near-tie band
of :mod:`repro.core.ties`.  Only the *work* differs, and
:class:`KernelStats` reports exactly where it went (filter / refine /
merge stage seconds, pair classification counts).

The compute core is array-only (:class:`KernelCore`) so that
:mod:`repro.vectorized.shard` can run it inside worker processes over
``multiprocessing.shared_memory`` views without re-quantizing anything.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, fields
from time import perf_counter
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..algorithms.base import RRQAlgorithm, duplicate_mask
from ..core.approx import Quantizer, quantize_dataset
from ..core.grid import DEFAULT_PARTITIONS, GridIndex
from ..core.ties import TIE_REL_TOL, exact_strictly_less
from ..data.datasets import ProductSet, WeightSet
from ..errors import InvalidParameterError
from ..queries.types import RKRResult, RTKResult, make_rkr_result
from ..stats.counters import OpCounter

#: Weights classified per tile.  1024 weights x 2048 products of float64
#: bounds is a 16 MB working set — big enough to amortize BLAS dispatch,
#: small enough to stay cache/RAM friendly.
DEFAULT_W_BLOCK = 1024

#: Products per tile (rows of the bound matrices), the cap of the
#: escalating tile schedule.
DEFAULT_P_BLOCK = 2048

#: First tile of the escalating schedule: small, like gin_topk's scan
#: chunk, so the k / minRank abort kills most weight columns after a few
#: hundred products; later tiles quadruple up to ``p_block`` once the
#: survivor set is thin.
FIRST_P_TILE = 256

#: Filter dtypes the kernel accepts.  ``float32`` halves the memory
#: traffic of the bound matmuls (the ~85% filter stage) and is proven
#: safe by widening the classification gates by :func:`f32_gamma` — any
#: pair the widened float32 bounds cannot decide falls through to the
#: float64/rational refinement path, so answers stay byte-identical.
FILTER_DTYPES = ("float64", "float32")


def f32_gamma(dim: int) -> float:
    """Relative error bound of a float32 bound product over ``dim`` terms.

    The six kernel arrays are non-negative, so a single-precision
    evaluation of the Eq. 3/4 boundary products ``sum_i a_i * b_i``
    carries a pure *relative* error: casting each f64 operand to f32
    contributes one ulp per operand (``(1+u)^2`` per term) and the
    accumulation another ``dim`` ulps, for a standard forward bound of
    ``gamma_{dim+2} = (dim+2)u / (1 - (dim+2)u)`` with ``u = 2^-24``.
    We return four times that (safety margin for non-sequential BLAS
    accumulation orders, FMA contraction, and the f32 gate cast), which
    is still ~1e-5 at d=32 — four orders of magnitude below the
    near-tie band no genuine score gap lives in.
    """
    u = 2.0 ** -24
    n = dim + 2
    return 4.0 * (n * u) / (1.0 - n * u)


@dataclass
class KernelStats:
    """Where a kernel query's time and pairs went.

    Attributes
    ----------
    queries:
        Queries accumulated into this stats object.
    filter_s, refine_s, merge_s:
        Seconds spent assembling/classifying grid bounds, refining the
        undecided band with exact dot products, and merging per-block
        (or per-shard) partial answers.
    pairs_total:
        Live ``(p, w)`` pairs that entered bound classification.
    pairs_case1:
        Pairs decided "p definitely out-ranks q" by the upper bound.
    pairs_case2:
        Pairs decided "q definitely out-ranks p" by the lower bound.
    pairs_refined:
        Undecided pairs that needed an exact dot product.
    pairs_domin_skipped:
        Pairs never classified because the product strictly dominates
        the query (counted straight into every weight's rank floor).
    weights_pruned:
        Weight vectors dropped without refinement because their
        certain-better count already met the k / minRank abort threshold.
    pairs_f32:
        Pairs whose bound classification ran through the float32
        prefilter (a subset of ``pairs_total``).
    fused_batches:
        Fused multi-query passes executed (one per coalesced batch and
        query kind).
    fused_queries:
        Queries answered inside a fused pass (each shares its batch's
        gather/matmul work instead of paying for its own).
    """

    queries: int = 0
    filter_s: float = 0.0
    refine_s: float = 0.0
    merge_s: float = 0.0
    pairs_total: int = 0
    pairs_case1: int = 0
    pairs_case2: int = 0
    pairs_refined: int = 0
    pairs_domin_skipped: int = 0
    weights_pruned: int = 0
    pairs_f32: int = 0
    fused_batches: int = 0
    fused_queries: int = 0

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Accumulate ``other`` into this object and return ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @property
    def pairs_decided(self) -> int:
        """Pairs settled by bounds alone (no exact dot product)."""
        return self.pairs_case1 + self.pairs_case2

    def filter_rate(self) -> float:
        """Fraction of classified pairs decided without refinement."""
        if self.pairs_total == 0:
            return 0.0
        return self.pairs_decided / self.pairs_total

    def snapshot(self) -> dict:
        """JSON-ready dict (used by ``/metrics`` and the bench harness)."""
        return {
            "queries": self.queries,
            "stage_s": {
                "filter": self.filter_s,
                "refine": self.refine_s,
                "merge": self.merge_s,
            },
            "pairs": {
                "total": self.pairs_total,
                "case1": self.pairs_case1,
                "case2": self.pairs_case2,
                "refined": self.pairs_refined,
                "domin_skipped": self.pairs_domin_skipped,
                "f32": self.pairs_f32,
            },
            "weights_pruned": self.weights_pruned,
            "filter_rate": self.filter_rate(),
            "fused": {
                "batches": self.fused_batches,
                "queries": self.fused_queries,
            },
        }


def _check_block(value: int, name: str) -> int:
    if int(value) < 1:
        raise InvalidParameterError(f"{name} must be positive, got {value}")
    return int(value)


def _count_sorted(S: np.ndarray, G: np.ndarray, strict: bool) -> np.ndarray:
    """Per-row gate counts off row-sorted scores, all queries at once.

    ``S`` is ``(cols, rows)`` with each row ascending; ``G`` is
    ``(cols, nq)`` gates.  Returns the exact ``(cols, nq)`` tally of
    entries ``< G`` (``strict``) or ``<= G`` — identical to a dense
    compare-and-count, via a vectorized binary lift: ``log2(rows)``
    rounds of one gather + one compare over ``cols * nq`` cells,
    instead of ``nq`` sweeps over ``cols * rows``.
    """
    n_cols, n = S.shape
    flat = S.ravel()
    base = np.arange(n_cols, dtype=np.intp)[:, None] * n
    pos = np.zeros((n_cols, G.shape[1]), dtype=np.intp)
    step = 1
    while step * 2 <= n:
        step *= 2
    while step:
        cand = pos + step
        vals = np.take(flat, base + np.minimum(cand, n) - 1)
        hit = (vals < G) if strict else (vals <= G)
        hit &= cand <= n
        pos = np.where(hit, cand, pos)
        step >>= 1
    return pos


@dataclass
class _QueryState:
    """Per-query prep shared by every weight block of one scan."""

    #: Global row indices of live products, or ``None`` for "all rows"
    #: (the common case: no duplicates of q, nothing dominating it).
    rows: Optional[np.ndarray]
    #: Bound matrices restricted to the live rows.
    a_lo: np.ndarray
    a_hi: np.ndarray
    #: Size of the Domin set — the rank floor under every weight.
    n_dom: int
    #: Live products (bound-classified rows).
    n_live: int
    #: float32 views of ``a_lo`` / ``a_hi`` (None on the float64 path).
    a_lo32: Optional[np.ndarray] = None
    a_hi32: Optional[np.ndarray] = None


@dataclass
class _BatchState:
    """Per-batch prep for one fused multi-query pass.

    Unlike :class:`_QueryState`, the fused path never compacts product
    rows per query — the whole point is that every query shares one
    gather/matmul per (P-block, W-block) tile — so each query instead
    carries the *sorted global indices* of its excluded rows (duplicates
    of q plus, with ``use_domin``, its dominators), masked out of that
    query's classification after the shared tile products are formed.
    """

    #: Stacked query matrix, shape ``(nq, d)``.
    QM: np.ndarray
    #: Per-query sorted excluded-row indices (None when nothing excluded).
    excl: List[Optional[np.ndarray]]
    #: Per-query Domin-set sizes (the rank floor under every weight).
    n_dom: List[int]


class KernelCore:
    """Array-only compute core of the blocked kernel.

    Deliberately free of dataset/quantizer objects so shard workers can
    build one directly over shared-memory views.  All arrays are taken
    as-is (float64, C-contiguous preferred); ``pa_lo``/``pa_hi`` are the
    pre-gathered product-side boundary matrices ``alpha_p[PA]`` /
    ``alpha_p[PA + 1]``, and ``wb_lo``/``wb_hi`` the weight-side
    ``alpha_w[WA]`` / ``alpha_w[WA + 1]``.
    """

    def __init__(self, P: np.ndarray, W: np.ndarray,
                 pa_lo: np.ndarray, pa_hi: np.ndarray,
                 wb_lo: np.ndarray, wb_hi: np.ndarray,
                 w_block: int = DEFAULT_W_BLOCK,
                 p_block: int = DEFAULT_P_BLOCK,
                 use_domin: bool = True,
                 filter_dtype: str = "float32"):
        self.P = np.asarray(P, dtype=np.float64)
        self.W = np.asarray(W, dtype=np.float64)
        self.pa_lo = np.asarray(pa_lo, dtype=np.float64)
        self.pa_hi = np.asarray(pa_hi, dtype=np.float64)
        self.wb_lo = np.asarray(wb_lo, dtype=np.float64)
        self.wb_hi = np.asarray(wb_hi, dtype=np.float64)
        self.w_block = _check_block(w_block, "w_block")
        self.p_block = _check_block(p_block, "p_block")
        self.use_domin = bool(use_domin)
        if filter_dtype not in FILTER_DTYPES:
            raise InvalidParameterError(
                f"filter_dtype must be one of {FILTER_DTYPES}, "
                f"got {filter_dtype!r}"
            )
        # The float32 safety argument (see f32_gamma) requires purely
        # non-negative operands; the library's data model guarantees it,
        # but a hand-built core with exotic bounds silently falls back
        # to the always-safe float64 filter instead of mis-filtering.
        if filter_dtype == "float32" and (
                float(self.pa_lo.min(initial=0.0)) < 0.0
                or float(self.wb_lo.min(initial=0.0)) < 0.0):
            filter_dtype = "float64"
        self.filter_dtype = filter_dtype
        self._f32 = filter_dtype == "float32"
        if self._f32:
            self._gamma = f32_gamma(self.P.shape[1])
            self.pa_lo32 = self.pa_lo.astype(np.float32)
            self.pa_hi32 = self.pa_hi.astype(np.float32)
            self.wb_lo32 = self.wb_lo.astype(np.float32)
            self.wb_hi32 = self.wb_hi.astype(np.float32)
        else:
            self._gamma = 0.0
            self.pa_lo32 = self.pa_hi32 = None
            self.wb_lo32 = self.wb_hi32 = None

    # ------------------------------------------------------------------
    # per-query preparation
    # ------------------------------------------------------------------

    def prepare(self, q: np.ndarray) -> _QueryState:
        """Skip mask, Domin floor and live-row bound matrices for ``q``."""
        excluded = duplicate_mask(self.P, q)
        n_dom = 0
        if self.use_domin:
            # The full Domin set up front: one vectorized pass replaces
            # Algorithm 1's lazy per-weight discovery.  Every dominator
            # contributes exactly 1 to every weight's rank either way.
            domin = np.all(self.P < q, axis=1)
            n_dom = int(np.count_nonzero(domin))
            if n_dom:
                excluded = excluded | domin
        a_lo32 = a_hi32 = None
        if excluded.any():
            rows = np.flatnonzero(~excluded)
            a_lo, a_hi = self.pa_lo[rows], self.pa_hi[rows]
            if self._f32:
                a_lo32, a_hi32 = self.pa_lo32[rows], self.pa_hi32[rows]
        else:
            rows, a_lo, a_hi = None, self.pa_lo, self.pa_hi
            if self._f32:
                a_lo32, a_hi32 = self.pa_lo32, self.pa_hi32
        n_live = a_lo.shape[0]
        return _QueryState(rows=rows, a_lo=a_lo, a_hi=a_hi,
                           n_dom=n_dom, n_live=n_live,
                           a_lo32=a_lo32, a_hi32=a_hi32)

    def _f32_gates(self, hi_gate: np.ndarray, lo_gate: np.ndarray):
        """Widen the classification gates for the float32 prefilter.

        A float32 bound product carries at most ``gamma`` relative error
        (:func:`f32_gamma`) and is non-negative, so

        * ``upper32 < hi_gate * (1 - gamma)`` implies the true upper
          bound clears ``hi_gate`` (Case 1 is safe: if ``hi_gate`` is
          negative the scaled gate stays negative and no non-negative
          ``upper32`` passes it);
        * ``lower32 > lo_gate * (1 + gamma)`` implies the true lower
          bound clears ``lo_gate`` (Case 2 is safe; ``lo_gate =
          f_w(q) + tol`` is always non-negative).

        The f64→f32 cast of the gates themselves is made conservative
        with one ``nextafter`` step in the safe direction.  Everything
        the widened gates cannot decide lands in the undecided band and
        is refined in float64/rational arithmetic — which is the whole
        byte-identity proof.
        """
        g = self._gamma
        hi_eff = np.nextafter((hi_gate * (1.0 - g)).astype(np.float32),
                              np.float32(-np.inf))
        lo_eff = np.nextafter((lo_gate * (1.0 + g)).astype(np.float32),
                              np.float32(np.inf))
        return hi_eff, lo_eff

    # ------------------------------------------------------------------
    # the blocked filter
    # ------------------------------------------------------------------

    def _classify(self, state: _QueryState, fq: np.ndarray, tol: np.ndarray,
                  ws: int, we: int, limit: float, counter: OpCounter,
                  stats: KernelStats,
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Bound-classify the live pairs for weights ``[ws, we)``.

        Returns ``(counts, und_rows, und_cols, alive)``: per-weight
        certain-better counts (Domin floor included), the COO coordinates
        of the undecided pairs (``und_rows`` are *global* P row indices,
        ``und_cols`` block-local weight offsets), and the survivor mask.

        ``limit`` carries the abort semantics of Algorithm 1 into the
        blocked scan: the certain-better count is a lower bound on the
        exact rank, so once a weight's count reaches ``limit`` (``k``
        for RTK, the current k-th best rank for RKR) it can never enter
        the answer.  Dead weights are compacted out of the remaining
        tiles — the bulk equivalent of gin_topk's early return, and
        where most of the speedup over the full sweep comes from.
        """
        t0 = perf_counter()
        B = we - ws
        d = self.P.shape[1]
        hi_gate = fq - tol
        lo_gate = fq + tol
        if self._f32:
            hi_cmp, lo_cmp = self._f32_gates(hi_gate, lo_gate)
            a_hi_f, a_lo_f = state.a_hi32, state.a_lo32
            wb_hi_all, wb_lo_all = self.wb_hi32, self.wb_lo32
        else:
            hi_cmp, lo_cmp = hi_gate, lo_gate
            a_hi_f, a_lo_f = state.a_hi, state.a_lo
            wb_hi_all, wb_lo_all = self.wb_hi, self.wb_lo
        counts = np.full(B, state.n_dom, dtype=np.int64)
        #: Columns still worth classifying, as block-local indices.
        active = np.flatnonzero(counts < limit)
        und_rows: List[np.ndarray] = []
        und_cols: List[np.ndarray] = []
        for ps, pe in self._tiles(state.n_live):
            if active.size == 0:
                break
            wb_hi = wb_hi_all[ws:we][active]
            wb_lo = wb_lo_all[ws:we][active]
            # Equations 3-4 for the whole tile: two gemms instead of
            # (pe - ps) * |active| per-pair grid gathers (sgemm on the
            # float32 prefilter path, dgemm otherwise).
            upper = a_hi_f[ps:pe] @ wb_hi.T
            case1 = upper < hi_cmp[active]
            counts[active] += case1.sum(axis=0, dtype=np.int64)
            lower = a_lo_f[ps:pe] @ wb_lo.T
            undecided = lower <= lo_cmp[active]
            undecided &= ~case1
            n_pairs = (pe - ps) * active.size
            if self._f32:
                stats.pairs_f32 += n_pairs
            n_case1 = int(np.count_nonzero(case1))
            n_und = int(np.count_nonzero(undecided))
            counter.approx_accessed += pe - ps
            counter.grid_lookups += n_pairs * d + (n_pairs - n_case1) * d
            counter.additions += n_pairs * d + (n_pairs - n_case1) * d
            counter.filtered_case1 += n_case1
            counter.filtered_case2 += n_pairs - n_case1 - n_und
            stats.pairs_total += n_pairs
            stats.pairs_case1 += n_case1
            stats.pairs_case2 += n_pairs - n_case1 - n_und
            if n_und:
                rr, cc = np.nonzero(undecided)
                rr = rr + ps
                if state.rows is not None:
                    rr = state.rows[rr]
                und_rows.append(rr)
                und_cols.append(active[cc])
            survivors = counts[active] < limit
            if not survivors.all():
                active = active[survivors]
        if und_rows:
            rows_arr = np.concatenate(und_rows)
            cols_arr = np.concatenate(und_cols)
        else:
            rows_arr = np.empty(0, dtype=np.intp)
            cols_arr = np.empty(0, dtype=np.intp)
        alive = counts < limit
        stats.filter_s += perf_counter() - t0
        return counts, rows_arr, cols_arr, alive

    def _tiles(self, n_live: int):
        """The escalating P-tile schedule: ``FIRST_P_TILE`` rows, then
        quadrupling up to ``p_block`` per tile."""
        size = min(FIRST_P_TILE, self.p_block)
        ps = 0
        while ps < n_live:
            pe = min(ps + size, n_live)
            yield ps, pe
            ps = pe
            size = min(size * 4, self.p_block)

    def _refine(self, q: np.ndarray, fq: np.ndarray, tol: np.ndarray,
                ws: int, B: int, und_rows: np.ndarray, und_cols: np.ndarray,
                alive: np.ndarray, counter: OpCounter, stats: KernelStats,
                ) -> np.ndarray:
        """Exact strictly-better counts per weight for the undecided band.

        Only pairs whose weight is still ``alive`` (not pruned by the k /
        minRank threshold) are scored.  Near-ties are re-decided in exact
        rational arithmetic, so the counts match every other engine
        bit-for-bit regardless of which BLAS kernel produced the floats.
        """
        t0 = perf_counter()
        keep = alive[und_cols]
        rows = und_rows[keep]
        cols = und_cols[keep]
        add = np.zeros(B, dtype=np.int64)
        if rows.size:
            w_rows = self.W[ws + cols]
            scores = np.einsum("ij,ij->i", self.P[rows], w_rows)
            f = fq[cols]
            t = tol[cols]
            better = scores < f - t
            near = np.flatnonzero(np.abs(scores - f) <= t)
            for i in near:
                better[i] = exact_strictly_less(w_rows[i], self.P[rows[i]], q)
            add = np.bincount(cols[better], minlength=B)
            counter.pairwise += rows.size
            counter.points_accessed += rows.size
            counter.refined += rows.size
            stats.pairs_refined += int(rows.size)
        stats.refine_s += perf_counter() - t0
        return add

    def _block_scores(self, q: np.ndarray, ws: int, we: int,
                      counter: OpCounter) -> Tuple[np.ndarray, np.ndarray]:
        """``f_w(q)`` and the near-tie half-width for weights ``[ws, we)``."""
        fq = self.W[ws:we] @ q
        tol = TIE_REL_TOL * (1.0 + np.abs(fq))
        counter.pairwise += we - ws
        return fq, tol

    # ------------------------------------------------------------------
    # query kinds (range-restricted so shards can reuse them)
    # ------------------------------------------------------------------

    def rtk_indices(self, q: np.ndarray, k: int, lo: int, hi: int,
                    counter: OpCounter, stats: KernelStats) -> List[int]:
        """Weight indices in ``[lo, hi)`` whose rank of ``q`` is below ``k``."""
        stats.queries += 1
        state = self.prepare(q)
        if state.n_dom >= k:
            # k dominating products out-rank q under *every* weight: the
            # answer is empty everywhere (Algorithm 2 lines 7-8).
            stats.pairs_domin_skipped += state.n_dom * (hi - lo)
            stats.weights_pruned += hi - lo
            counter.dominated_skips += state.n_dom * (hi - lo)
            counter.early_terminations += hi - lo
            return []
        result: List[int] = []
        stats.pairs_domin_skipped += state.n_dom * (hi - lo)
        counter.dominated_skips += state.n_dom * (hi - lo)
        for ws in range(lo, hi, self.w_block):
            we = min(ws + self.w_block, hi)
            B = we - ws
            fq, tol = self._block_scores(q, ws, we, counter)
            counts, und_r, und_c, alive = self._classify(
                state, fq, tol, ws, we, k, counter, stats
            )
            n_pruned = B - int(np.count_nonzero(alive))
            stats.weights_pruned += n_pruned
            counter.early_terminations += n_pruned
            counts += self._refine(q, fq, tol, ws, B, und_r, und_c, alive,
                                   counter, stats)
            t0 = perf_counter()
            hits = np.flatnonzero(counts < k)
            result.extend((hits + ws).tolist())
            stats.merge_s += perf_counter() - t0
        return result

    def rkr_pairs(self, q: np.ndarray, k: int, lo: int, hi: int,
                  counter: OpCounter, stats: KernelStats,
                  ) -> List[Tuple[int, int]]:
        """The k best ``(rank, weight index)`` pairs within ``[lo, hi)``.

        Tie-break matches the library contract: among equal ranks the
        smaller index wins (blocks are scanned in index order and the
        heap replacement test is strict, like Algorithm 3).
        """
        stats.queries += 1
        state = self.prepare(q)
        stats.pairs_domin_skipped += state.n_dom * (hi - lo)
        counter.dominated_skips += state.n_dom * (hi - lo)
        # Max-heap of the current k best: entries (-rank, -index).
        heap: List[Tuple[int, int]] = []
        for ws in range(lo, hi, self.w_block):
            we = min(ws + self.w_block, hi)
            B = we - ws
            min_rank = float("inf") if len(heap) < k else float(-heap[0][0])
            fq, tol = self._block_scores(q, ws, we, counter)
            # minRank feedback: the threshold is the one from *before*
            # this block — minRank only shrinks, so the stale value
            # prunes less than Algorithm 3's per-weight update, never
            # wrongly.
            counts, und_r, und_c, alive = self._classify(
                state, fq, tol, ws, we, min_rank, counter, stats
            )
            n_pruned = B - int(np.count_nonzero(alive))
            stats.weights_pruned += n_pruned
            counter.early_terminations += n_pruned
            counts += self._refine(q, fq, tol, ws, B, und_r, und_c, alive,
                                   counter, stats)
            t0 = perf_counter()
            for j in np.flatnonzero(alive):
                rnk = int(counts[j])
                if len(heap) < k:
                    heapq.heappush(heap, (-rnk, -(ws + int(j))))
                elif rnk < -heap[0][0]:
                    heapq.heapreplace(heap, (-rnk, -(ws + int(j))))
            stats.merge_s += perf_counter() - t0
        return [(-neg_rank, -neg_idx) for neg_rank, neg_idx in heap]

    # ------------------------------------------------------------------
    # the fused multi-query path
    # ------------------------------------------------------------------

    def prepare_batch(self, QM: np.ndarray) -> _BatchState:
        """Per-query skip masks and Domin floors for one fused pass.

        ``QM`` stacks the batch's query points as rows.  The §5.3 cost
        model observation behind the fused path: the Eq. 3/4 boundary
        products per (P-block, W-block) tile are *query independent*, so
        one gather + one matmul can serve every query of the batch; only
        the per-query gates, exclusions and refinement bands differ.
        """
        QM = np.asarray(QM, dtype=np.float64)
        excl: List[Optional[np.ndarray]] = []
        n_dom: List[int] = []
        for qi in range(QM.shape[0]):
            q = QM[qi]
            excluded = duplicate_mask(self.P, q)
            nd = 0
            if self.use_domin:
                domin = np.all(self.P < q, axis=1)
                nd = int(np.count_nonzero(domin))
                if nd:
                    excluded = excluded | domin
            excl.append(np.flatnonzero(excluded) if excluded.any() else None)
            n_dom.append(nd)
        return _BatchState(QM=QM, excl=excl, n_dom=n_dom)

    def classify_batch(self, batch: _BatchState, ws: int, we: int,
                       limits: np.ndarray, counters: List[OpCounter],
                       stats: KernelStats):
        """Bound-classify one W-block for *all* queries off shared tiles.

        One ``(P-tile × W-block)`` gemm pair per tile is shared by every
        query; per-query work is reduced to the cheap elementwise gate
        comparisons, exclusion masking and undecided-pair extraction.
        Per-query column pruning carries over from the per-query path:
        the shared gemm is compacted to the **union** of the queries'
        still-active columns (so the fused pass never multiplies more
        columns than the per-query scans would in total, while the
        gather/matmul itself is paid once), and each query's gate
        comparisons run over only *its* active slice of that union.

        Returns ``(counts, FQ, TOL, und_rows, und_cols)``: per-query
        certain-better counts (Domin floor included, shape ``(nq, B)``),
        the per-query scores/tolerances (shape ``(B, nq)``), and
        per-query COO undecided-pair lists (global P rows, block-local
        weight columns).
        """
        t0 = perf_counter()
        B = we - ws
        nq = batch.QM.shape[0]
        d = self.P.shape[1]
        FQ = self.W[ws:we] @ batch.QM.T
        TOL = TIE_REL_TOL * (1.0 + np.abs(FQ))
        hi_gate = FQ - TOL
        lo_gate = FQ + TOL
        if self._f32:
            hi_cmp, lo_cmp = self._f32_gates(hi_gate, lo_gate)
            pa_hi_f, pa_lo_f = self.pa_hi32, self.pa_lo32
            wb_hi_t = self.wb_hi32[ws:we].T
            wb_lo_t = self.wb_lo32[ws:we].T
        else:
            hi_cmp, lo_cmp = hi_gate, lo_gate
            pa_hi_f, pa_lo_f = self.pa_hi, self.pa_lo
            wb_hi_t = self.wb_hi[ws:we].T
            wb_lo_t = self.wb_lo[ws:we].T
        for counter in counters:
            counter.pairwise += B
        counts = np.empty((nq, B), dtype=np.int64)
        for qi in range(nq):
            counts[qi] = batch.n_dom[qi]
        # The low-side/case-1 tally gap accumulates per column; a
        # nonzero gap locates every undecided pair at block end.
        gap = np.zeros((nq, B), dtype=np.int64)
        active = counts < limits[:, None]
        und_rows: List[List[np.ndarray]] = [[] for _ in range(nq)]
        und_cols: List[List[np.ndarray]] = [[] for _ in range(nq)]
        neg_inf = np.float32(-np.inf) if self._f32 else -np.inf
        wb_hi_all = self.wb_hi32[ws:we] if self._f32 else self.wb_hi[ws:we]
        wb_lo_all = self.wb_lo32[ws:we] if self._f32 else self.wb_lo[ws:we]
        #: Tile score matrices, kept for the deferred undecided-pair
        #: extraction (the refine step only ever touches columns alive
        #: at block end, so extraction waits until then).
        tile_scores: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        for ps, pe in self._tiles(self.P.shape[0]):
            # Union compaction: a column enters the shared gemm while
            # *any* query still needs it (block-local sorted indices).
            live_cols = np.flatnonzero(active.any(axis=0))
            if live_cols.size == 0:
                break
            full = live_cols.size == B
            wb_hi_sel = wb_hi_all if full else wb_hi_all[live_cols]
            wb_lo_sel = wb_lo_all if full else wb_lo_all[live_cols]
            # The amortized work, transposed so each weight column is a
            # contiguous row: one gemm pair per tile feeds every query.
            uT = wb_hi_sel @ pa_hi_f[ps:pe].T          # (U, rows)
            lT = wb_lo_sel @ pa_lo_f[ps:pe].T
            tile_scores.append((ps, live_cols, uT, lT))
            # The tile's scores are query-independent, so sort them
            # once per side and answer *all* queries' gate counts by
            # binary search: O(rows log rows) shared, O(nq log rows)
            # per column — instead of nq dense compare sweeps.  Both
            # sides share one stacked sort + one count pass; the
            # low side's non-strict ``<=`` becomes a strict ``<``
            # against ``nextafter(gate)`` — exact for floats.
            stacked = np.concatenate((uT, lT), axis=0)
            stacked.sort(axis=1)
            # Gates over the union slice, one (U, nq) matrix per side;
            # a column another query keeps live but this one has pruned
            # gets a -inf gate, so it can produce neither case-1 nor
            # undecided hits — masking is O(cols * nq).
            act_u = active.T if full else active.T[live_cols]
            g_hi = np.where(act_u, hi_cmp[live_cols], neg_inf)
            g_lo = np.where(act_u, lo_cmp[live_cols], neg_inf)
            g_lo_open = np.where(act_u,
                                 np.nextafter(lo_cmp[live_cols], np.inf),
                                 neg_inf)
            tallies = _count_sorted(stacked,
                                    np.concatenate((g_hi, g_lo_open)),
                                    strict=True)
            U = uT.shape[0]
            case1_per_col = tallies[:U]
            lowhit_per_col = tallies[U:]
            for qi in range(nq):
                excl = batch.excl[qi]
                if excl is None:
                    continue
                lo_i, hi_i = np.searchsorted(excl, (ps, pe))
                if hi_i <= lo_i:
                    continue
                # The sorted tallies count every row; subtract the
                # excluded rows' contributions directly (|excl| is
                # tiny: dominators and duplicates of one query).
                local = excl[lo_i:hi_i] - ps
                case1_per_col[:, qi] -= np.count_nonzero(
                    uT[:, local] < g_hi[:, qi, None], axis=1)
                lowhit_per_col[:, qi] -= np.count_nonzero(
                    lT[:, local] <= g_lo[:, qi, None], axis=1)
            counts[:, live_cols] += case1_per_col.T
            # Bounds give lower <= upper, so case-1 implies the
            # low-side hit: the tally gap *is* the undecided count.
            diff = lowhit_per_col - case1_per_col
            gap[:, live_cols] += diff.T
            n_act_q = np.count_nonzero(act_u, axis=0)          # (nq,)
            n_case1_q = case1_per_col.sum(axis=0)              # (nq,)
            n_und_q = diff.sum(axis=0)
            for qi in range(nq):
                n_act = int(n_act_q[qi])
                if n_act == 0:
                    continue
                n_pairs = (pe - ps) * n_act
                n_case1 = int(n_case1_q[qi])
                n_und = int(n_und_q[qi])
                counter = counters[qi]
                counter.approx_accessed += pe - ps
                counter.grid_lookups += n_pairs * d + (n_pairs - n_case1) * d
                counter.additions += n_pairs * d + (n_pairs - n_case1) * d
                counter.filtered_case1 += n_case1
                counter.filtered_case2 += n_pairs - n_case1 - n_und
                stats.pairs_total += n_pairs
                stats.pairs_case1 += n_case1
                stats.pairs_case2 += n_pairs - n_case1 - n_und
                if self._f32:
                    stats.pairs_f32 += n_pairs
            np.less(counts, limits[:, None], out=active, where=active)
        # Deferred undecided-pair extraction: only columns that are
        # still alive ever reach the refine step (``_refine`` keeps
        # ``alive[und_cols]``), and an alive column was active in every
        # tile, so scanning the stashed tile scores reproduces exactly
        # the pairs a per-tile extraction would have kept — at the cost
        # of a handful of candidate columns instead of dense sweeps.
        for qi in range(nq):
            cand = np.flatnonzero(active[qi] & (gap[qi] > 0))
            if cand.size == 0:
                continue
            g_hi_q = hi_cmp[cand, qi][:, None]
            g_lo_q = lo_cmp[cand, qi][:, None]
            excl = batch.excl[qi]
            for ps, live_cols, uT, lT in tile_scores:
                pos = np.searchsorted(live_cols, cand)
                und = lT[pos] <= g_lo_q
                und &= ~(uT[pos] < g_hi_q)
                if excl is not None:
                    lo_i, hi_i = np.searchsorted(
                        excl, (ps, ps + uT.shape[1]))
                    if hi_i > lo_i:
                        und[:, excl[lo_i:hi_i] - ps] = False
                cc, rr = np.nonzero(und)
                if rr.size:
                    und_rows[qi].append(rr + ps)
                    und_cols[qi].append(cand[cc])
        rows_cat = [np.concatenate(r) if r else np.empty(0, dtype=np.intp)
                    for r in und_rows]
        cols_cat = [np.concatenate(c) if c else np.empty(0, dtype=np.intp)
                    for c in und_cols]
        stats.filter_s += perf_counter() - t0
        return counts, FQ, TOL, rows_cat, cols_cat

    def rtk_batch(self, QM: np.ndarray, ks: Sequence[int], lo: int, hi: int,
                  counters: List[OpCounter],
                  stats: KernelStats) -> List[List[int]]:
        """Fused RTK: per-query qualifying weight indices in ``[lo, hi)``.

        Answers are byte-identical to per-query :meth:`rtk_indices` —
        the shared-tile classification only changes which pairs the
        bounds decide (everything marginal is refined exactly), never
        the decisions themselves.
        """
        nq = QM.shape[0]
        stats.queries += nq
        stats.fused_batches += 1
        stats.fused_queries += nq
        batch = self.prepare_batch(QM)
        results: List[List[int]] = [[] for _ in range(nq)]
        limits = np.empty(nq, dtype=np.float64)
        done = np.zeros(nq, dtype=bool)
        for qi in range(nq):
            limits[qi] = ks[qi]
            stats.pairs_domin_skipped += batch.n_dom[qi] * (hi - lo)
            counters[qi].dominated_skips += batch.n_dom[qi] * (hi - lo)
            if batch.n_dom[qi] >= ks[qi]:
                # k dominators out-rank q under every weight: empty
                # answer everywhere (Algorithm 2 lines 7-8).
                done[qi] = True
                stats.weights_pruned += hi - lo
                counters[qi].early_terminations += hi - lo
        if done.all():
            return results
        for ws in range(lo, hi, self.w_block):
            we = min(ws + self.w_block, hi)
            B = we - ws
            counts, FQ, TOL, und_r, und_c = self.classify_batch(
                batch, ws, we, limits, counters, stats
            )
            for qi in range(nq):
                if done[qi]:
                    continue
                alive = counts[qi] < ks[qi]
                n_pruned = B - int(np.count_nonzero(alive))
                stats.weights_pruned += n_pruned
                counters[qi].early_terminations += n_pruned
                total = counts[qi] + self._refine(
                    batch.QM[qi], FQ[:, qi], TOL[:, qi], ws, B,
                    und_r[qi], und_c[qi], alive, counters[qi], stats
                )
                t0 = perf_counter()
                hits = np.flatnonzero(total < ks[qi])
                results[qi].extend((hits + ws).tolist())
                stats.merge_s += perf_counter() - t0
        return results

    def rkr_batch(self, QM: np.ndarray, ks: Sequence[int], lo: int, hi: int,
                  counters: List[OpCounter],
                  stats: KernelStats) -> List[List[Tuple[int, int]]]:
        """Fused RKR: per-query k best ``(rank, index)`` pairs in ``[lo, hi)``.

        Per-query minRank feedback is preserved: each query's threshold
        entering a block is its k-th best rank from the blocks before it
        (exactly the per-query :meth:`rkr_pairs` semantics), applied as
        that query's column-pruning limit inside the shared pass.
        """
        nq = QM.shape[0]
        stats.queries += nq
        stats.fused_batches += 1
        stats.fused_queries += nq
        batch = self.prepare_batch(QM)
        for qi in range(nq):
            stats.pairs_domin_skipped += batch.n_dom[qi] * (hi - lo)
            counters[qi].dominated_skips += batch.n_dom[qi] * (hi - lo)
        heaps: List[List[Tuple[int, int]]] = [[] for _ in range(nq)]
        limits = np.empty(nq, dtype=np.float64)
        for ws in range(lo, hi, self.w_block):
            we = min(ws + self.w_block, hi)
            B = we - ws
            for qi in range(nq):
                heap = heaps[qi]
                limits[qi] = (float("inf") if len(heap) < ks[qi]
                              else float(-heap[0][0]))
            counts, FQ, TOL, und_r, und_c = self.classify_batch(
                batch, ws, we, limits, counters, stats
            )
            for qi in range(nq):
                alive = counts[qi] < limits[qi]
                n_pruned = B - int(np.count_nonzero(alive))
                stats.weights_pruned += n_pruned
                counters[qi].early_terminations += n_pruned
                total = counts[qi] + self._refine(
                    batch.QM[qi], FQ[:, qi], TOL[:, qi], ws, B,
                    und_r[qi], und_c[qi], alive, counters[qi], stats
                )
                t0 = perf_counter()
                heap, k = heaps[qi], ks[qi]
                for j in np.flatnonzero(alive):
                    rnk = int(total[j])
                    if len(heap) < k:
                        heapq.heappush(heap, (-rnk, -(ws + int(j))))
                    elif rnk < -heap[0][0]:
                        heapq.heapreplace(heap, (-rnk, -(ws + int(j))))
                stats.merge_s += perf_counter() - t0
        return [[(-nr, -ni) for nr, ni in heap] for heap in heaps]


class GirKernelRRQ(RRQAlgorithm):
    """Grid-index RRQ answered by the weight-blocked kernel.

    Drop-in replacement for :class:`~repro.core.gir.GridIndexRRQ` with
    identical answers and the same construction surface (``partitions``,
    ``grid``, quantizer overrides, ``use_domin``), plus the blocking
    knobs ``w_block`` / ``p_block``.  After every query
    :attr:`last_stats` holds that query's :class:`KernelStats` (the
    scheduler feeds these into ``/metrics``).
    """

    name = "GIR-K"

    def __init__(self, products: ProductSet, weights: WeightSet,
                 partitions: int = DEFAULT_PARTITIONS,
                 grid: Optional[GridIndex] = None,
                 p_quantizer: Optional[Quantizer] = None,
                 w_quantizer: Optional[Quantizer] = None,
                 w_block: int = DEFAULT_W_BLOCK,
                 p_block: int = DEFAULT_P_BLOCK,
                 use_domin: bool = True,
                 filter_dtype: str = "float32"):
        super().__init__(products, weights)
        if grid is None:
            # Identical grid recipe to GridIndexRRQ (see the rationale
            # there): weight-axis resolution spans the observed range.
            w_range = float(self.W.max())
            alpha_p = np.linspace(0.0, products.value_range, partitions + 1)
            alpha_w = np.linspace(0.0, w_range, partitions + 1)
            grid = GridIndex(alpha_p, alpha_w)
        self.grid = grid
        self.p_quantizer = p_quantizer or Quantizer(grid.alpha_p)
        self.w_quantizer = w_quantizer or Quantizer(grid.alpha_w)
        self.PA = quantize_dataset(self.P, self.p_quantizer)
        self.WA = quantize_dataset(self.W, self.w_quantizer)
        self.core = self._build_core(w_block, p_block, use_domin,
                                     filter_dtype)
        #: Stats of the most recent query (None before the first).
        self.last_stats: Optional[KernelStats] = None

    def _build_core(self, w_block: int, p_block: int, use_domin: bool,
                    filter_dtype: str = "float32") -> KernelCore:
        pa = self.PA.astype(np.intp, copy=False)
        wa = self.WA.astype(np.intp, copy=False)
        return KernelCore(
            P=self.P, W=self.W,
            pa_lo=self.grid.alpha_p[pa],
            pa_hi=self.grid.alpha_p[pa + 1],
            wb_lo=self.grid.alpha_w[wa],
            wb_hi=self.grid.alpha_w[wa + 1],
            w_block=w_block, p_block=p_block, use_domin=use_domin,
            filter_dtype=filter_dtype,
        )

    # ------------------------------------------------------------------

    @classmethod
    def from_gir(cls, gir, w_block: int = DEFAULT_W_BLOCK,
                 p_block: int = DEFAULT_P_BLOCK,
                 filter_dtype: str = "float32") -> "GirKernelRRQ":
        """Wrap an existing :class:`GridIndexRRQ`, reusing its grid and
        approximate vectors (no re-quantization)."""
        self = cls.__new__(cls)
        RRQAlgorithm.__init__(self, gir.products, gir.weights)
        self.grid = gir.grid
        self.p_quantizer = gir.p_quantizer
        self.w_quantizer = gir.w_quantizer
        self.PA = gir.PA
        self.WA = gir.WA
        self.core = self._build_core(w_block, p_block, gir.use_domin,
                                     filter_dtype)
        self.last_stats = None
        return self

    @property
    def partitions(self) -> int:
        """Grid resolution ``n``."""
        return self.grid.partitions

    @property
    def use_domin(self) -> bool:
        """Whether the Domin rank floor is applied."""
        return self.core.use_domin

    @property
    def filter_dtype(self) -> str:
        """Dtype of the bound-classification matmuls (filter stage)."""
        return self.core.filter_dtype

    def memory_report(self) -> dict:
        """Bytes held by the grid, codes, and pre-gathered bound matrices."""
        return {
            "grid_bytes": self.grid.memory_bytes,
            "pa_bytes": self.PA.nbytes,
            "wa_bytes": self.WA.nbytes,
            "bound_matrix_bytes": (self.core.pa_lo.nbytes
                                   + self.core.pa_hi.nbytes
                                   + self.core.wb_lo.nbytes
                                   + self.core.wb_hi.nbytes),
            "original_bytes": self.P.nbytes + self.W.nbytes,
        }

    # ------------------------------------------------------------------

    def _reverse_topk(self, q: np.ndarray, k: int,
                      counter: OpCounter) -> RTKResult:
        stats = KernelStats()
        hits = self.core.rtk_indices(q, k, 0, self.W.shape[0], counter, stats)
        self.last_stats = stats
        return RTKResult(weights=frozenset(hits), k=k, counter=counter)

    def _reverse_kranks(self, q: np.ndarray, k: int,
                        counter: OpCounter) -> RKRResult:
        stats = KernelStats()
        pairs = self.core.rkr_pairs(q, k, 0, self.W.shape[0], counter, stats)
        self.last_stats = stats
        return make_rkr_result(pairs, k, counter)

    # ------------------------------------------------------------------
    # fused multi-query entry points
    # ------------------------------------------------------------------

    def _batch_inputs(self, queries: Sequence,
                      k: Union[int, Sequence[int]]):
        from ..data.datasets import check_query_point

        QM = np.stack([check_query_point(q, self.P.shape[1])
                       for q in queries])
        if isinstance(k, (int, np.integer)):
            ks = [int(k)] * len(queries)
        else:
            ks = [int(kk) for kk in k]
            if len(ks) != len(queries):
                raise InvalidParameterError(
                    f"got {len(queries)} queries but {len(ks)} k values"
                )
        if any(kk <= 0 for kk in ks):
            raise InvalidParameterError("k must be positive")
        return QM, ks

    def reverse_topk_batch(self, queries: Sequence,
                           k: Union[int, Sequence[int]]
                           ) -> List[RTKResult]:
        """Answer a whole micro-batch of RTK queries in one fused pass.

        Byte-identical to calling :meth:`reverse_topk` per query; the
        (P-block × W-block) boundary matmuls are computed once per tile
        and shared by every query (``k`` may be a scalar or per-query).
        After the call :attr:`last_stats` holds the batch's accumulated
        :class:`KernelStats` (with ``fused_*`` tallies).
        """
        if not len(queries):
            return []
        QM, ks = self._batch_inputs(queries, k)
        stats = KernelStats()
        counters = [OpCounter() for _ in range(len(queries))]
        hits = self.core.rtk_batch(QM, ks, 0, self.W.shape[0],
                                   counters, stats)
        self.last_stats = stats
        return [RTKResult(weights=frozenset(h), k=kk, counter=counter)
                for h, kk, counter in zip(hits, ks, counters)]

    def reverse_kranks_batch(self, queries: Sequence,
                             k: Union[int, Sequence[int]]
                             ) -> List[RKRResult]:
        """Answer a whole micro-batch of RKR queries in one fused pass.

        Byte-identical to calling :meth:`reverse_kranks` per query,
        per-query minRank feedback included; see
        :meth:`reverse_topk_batch`.
        """
        if not len(queries):
            return []
        QM, ks = self._batch_inputs(queries, k)
        stats = KernelStats()
        counters = [OpCounter() for _ in range(len(queries))]
        pairs = self.core.rkr_batch(QM, ks, 0, self.W.shape[0],
                                    counters, stats)
        self.last_stats = stats
        return [make_rkr_result(p, kk, counter)
                for p, kk, counter in zip(pairs, ks, counters)]
