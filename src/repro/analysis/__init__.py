"""Analytical models of the baselines' behaviour (paper Section 5.1-5.2)."""

from .rtree_model import (
    filtering_collapse_table,
    histogram_bucket_count,
    histogram_expected_occupancy,
    max_filtered_fraction,
    tetra_volume,
)

__all__ = [
    "histogram_bucket_count", "histogram_expected_occupancy",
    "tetra_volume", "max_filtered_fraction", "filtering_collapse_table",
]
