"""Analytical models of the tree-based methods' weaknesses (Section 5.1-5.2).

Two small models the paper uses to argue trees cannot win in high
dimensions:

* the **histogram explosion** of MPA — ``c^d`` buckets versus ``|W|``
  vectors (Section 5.1), and
* the **filterable-volume bound** of an R-tree under an RRQ — the gray
  region of Figure 7 is at best a hyper-tetra times a hyper-prism, whose
  volume collapses factorially with the number of 'triangular' dimensions
  ``g`` (Equations 5-10).
"""

from __future__ import annotations

import math

from ..errors import InvalidParameterError


def histogram_bucket_count(resolution: int, d: int) -> int:
    """``c ** d`` — MPA's theoretical bucket count (Section 5.1)."""
    if resolution <= 0 or d <= 0:
        raise InvalidParameterError("resolution and d must be positive")
    return resolution ** d


def histogram_expected_occupancy(num_weights: int, resolution: int, d: int) -> float:
    """Expected vectors per bucket if weights spread evenly (Section 5.1).

    Below 1, bucket-level pruning cannot beat a plain scan — the paper's
    ``|W| = 100K, d = 10`` example gives ``100K / 9.8M ~ 0.01``.
    """
    if num_weights <= 0:
        raise InvalidParameterError("num_weights must be positive")
    return num_weights / histogram_bucket_count(resolution, d)


def tetra_volume(g: int, gamma: float = 0.0) -> float:
    """Volume of the hyper-tetra part: ``(1 - gamma)^g / g!`` (Equation 7)."""
    if g <= 0:
        raise InvalidParameterError("g must be positive")
    if not 0.0 <= gamma < 1.0:
        raise InvalidParameterError("gamma must be in [0, 1)")
    return (1.0 - gamma) ** g / math.factorial(g)


def max_filtered_fraction(d: int, gamma: float = 0.0, g: int = None) -> float:
    """Upper bound on the space an R-tree can filter for an RRQ (Equation 10).

    ``Vol_max = (1 - gamma)^g / g!`` with the hyper-prism factor bounded by
    ``1/2`` and the two symmetric filtering regions summed.  By default
    half the dimensions are assumed triangular (``g = d // 2``), the
    assumption the paper uses for its ``d = 10 -> 0.8%`` example.
    """
    if d <= 0:
        raise InvalidParameterError("d must be positive")
    if g is None:
        g = max(1, d // 2)
    if g > d:
        raise InvalidParameterError("g cannot exceed d")
    return tetra_volume(g, gamma)


def filtering_collapse_table(dims, gamma: float = 0.0):
    """Rows of ``(d, g, max filtered fraction)`` for a dimension sweep."""
    return [(d, max(1, d // 2), max_filtered_fraction(d, gamma)) for d in dims]
