"""Workload-adaptive grid auto-tuning (closing the paper's §5.3 loop).

The cost model (:mod:`repro.core.model`) predicts filter effectiveness
from ``(d, n)`` under the *uniform* assumption of Lemma 1; the profiler
(:mod:`repro.obs.profile`) measures the live Case-1/2/undecided/refined
split.  On clustered data the two disagree violently — most values share
a handful of equal-width cells, Case 3 balloons, and the measured
undecided+refined fraction dwarfs the model's bound.  The tuner closes
the loop the paper's §7 sketches:

1. **Detect** — the live filter profile (``KernelStats`` tallies folded
   into ``/metrics``) and the slow-query log flag poor filtering.
2. **Enumerate** — candidate configs over grid partitions (via
   :func:`repro.core.model.recommend_partitions` at several target ε),
   equal-width vs quantile boundaries (:mod:`repro.ext.adaptive_grid`),
   the kernel tile schedule and ``use_domin``.
3. **Score** — every candidate gets the model's worst-case prediction
   *and* a short measured probe (:func:`repro.bench.harness.probe_filter_profile`)
   over a sampled workload; measurements dominate, predictions break
   ties and catch measurement noise.
4. **Verify** — the winner is proven byte-identical to
   :class:`~repro.algorithms.naive.NaiveRRQ` on the probe workload
   before anyone is allowed to serve from it.

:class:`AutoTuner` is the pure, offline engine of that loop (used by
``repro-rrq tune`` and the bench harness); the serving-side hot-swap
lives in :mod:`repro.tuning.service`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..algorithms.naive import NaiveRRQ
from ..core.grid import DEFAULT_PARTITIONS
from ..core.model import (
    recommend_partitions,
    worst_case_filtering,
)
from ..data.datasets import ProductSet, WeightSet
from ..errors import InvalidParameterError
from ..ext.adaptive_grid import build_adaptive_grid
from ..vectorized.girkernel import (
    DEFAULT_P_BLOCK,
    DEFAULT_W_BLOCK,
    GirKernelRRQ,
)

#: Boundary families a candidate may use.
BOUNDARY_KINDS = ("uniform", "quantile")

#: Default target-ε ladder for the partition enumeration.
DEFAULT_EPSILONS = (0.05, 0.01)

#: Default probe size (queries sampled from P, replayed per candidate).
DEFAULT_PROBE_QUERIES = 16

#: Pinned tuner seed (shared with the bench harness).
DEFAULT_SEED = 7


@dataclass(frozen=True)
class CandidateConfig:
    """One complete index configuration the tuner can build and score."""

    partitions: int
    boundaries: str = "uniform"
    w_block: int = DEFAULT_W_BLOCK
    p_block: int = DEFAULT_P_BLOCK
    use_domin: bool = True
    filter_dtype: str = "float32"

    def __post_init__(self):
        if int(self.partitions) < 1:
            raise InvalidParameterError("partitions must be >= 1")
        if self.boundaries not in BOUNDARY_KINDS:
            raise InvalidParameterError(
                f"boundaries must be one of {BOUNDARY_KINDS}, "
                f"got {self.boundaries!r}"
            )
        if int(self.w_block) < 1 or int(self.p_block) < 1:
            raise InvalidParameterError("tile blocks must be >= 1")

    def label(self) -> str:
        """Compact human-readable tag (used in reports and metrics)."""
        parts = [f"n{self.partitions}", self.boundaries]
        if not self.use_domin:
            parts.append("nodomin")
        if (self.w_block, self.p_block) != (DEFAULT_W_BLOCK,
                                            DEFAULT_P_BLOCK):
            parts.append(f"w{self.w_block}p{self.p_block}")
        if self.filter_dtype != "float32":
            parts.append(self.filter_dtype)
        return "-".join(parts)

    def as_dict(self) -> dict:
        return {
            "partitions": int(self.partitions),
            "boundaries": self.boundaries,
            "w_block": int(self.w_block),
            "p_block": int(self.p_block),
            "use_domin": bool(self.use_domin),
            "filter_dtype": self.filter_dtype,
        }

    def short(self) -> str:
        """Stable 12-hex digest of the *requested* config (not the built
        boundary vectors — quantile boundaries depend on the data; the
        built kernel's exact digest comes from
        :func:`repro.vectorized.kernelstore.config_digest_of`)."""
        payload = json.dumps(self.as_dict(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:12]

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateConfig":
        try:
            return cls(
                partitions=int(data["partitions"]),
                boundaries=str(data.get("boundaries", "uniform")),
                w_block=int(data.get("w_block", DEFAULT_W_BLOCK)),
                p_block=int(data.get("p_block", DEFAULT_P_BLOCK)),
                use_domin=bool(data.get("use_domin", True)),
                filter_dtype=str(data.get("filter_dtype", "float32")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidParameterError(
                f"malformed candidate config: {exc}") from exc


def default_config(partitions: int = DEFAULT_PARTITIONS) -> CandidateConfig:
    """The library's default serving config (equal-width grid)."""
    return CandidateConfig(partitions=int(partitions))


def build_tuned_kernel(products: ProductSet, weights: WeightSet,
                       config: CandidateConfig) -> GirKernelRRQ:
    """Materialize one candidate as a blocked kernel over ``(P, W)``.

    ``quantile`` boundaries come from :mod:`repro.ext.adaptive_grid`
    (per-axis empirical quantiles); ``uniform`` uses the kernel's own
    equal-width recipe.  Everything downstream — GInTop-k, Domin, the
    fused batch paths — is reused unchanged, so answers stay exact for
    *any* boundary vector.
    """
    kwargs = dict(
        partitions=int(config.partitions),
        w_block=int(config.w_block),
        p_block=int(config.p_block),
        use_domin=bool(config.use_domin),
        filter_dtype=config.filter_dtype,
    )
    if config.boundaries == "quantile":
        grid, p_quant, w_quant = build_adaptive_grid(
            products, weights, int(config.partitions)
        )
        kwargs.update(grid=grid, p_quantizer=p_quant, w_quantizer=w_quant)
    return GirKernelRRQ(products, weights, **kwargs)


def verify_against_naive(kernel, products: ProductSet, weights: WeightSet,
                         queries: Sequence[np.ndarray], k: int) -> bool:
    """True iff ``kernel`` answers byte-identically to ``NaiveRRQ``.

    Both kinds are checked for every probe query; the comparison is on
    the full answer structure (RTK weight sets, RKR ``(rank, id)``
    entries), which is exactly what the HTTP layer encodes.
    """
    naive = NaiveRRQ(products, weights)
    for q in queries:
        expect = naive.reverse_topk(q, k)
        got = kernel.reverse_topk(q, k)
        if got.weights != expect.weights or got.k != expect.k:
            return False
        expect = naive.reverse_kranks(q, k)
        got = kernel.reverse_kranks(q, k)
        if got.entries != expect.entries or got.k != expect.k:
            return False
    return True


def poor_filtering(profile: dict, threshold: float = 0.35) -> dict:
    """Detection verdict from one filter profile (Table-4 style dict).

    ``undecided + refined`` is the fraction of classified pairs the grid
    could *not* settle from bounds — the Case-3 ballooning signal on
    clustered data.  Returns a JSON-ready verdict the service tuner and
    CLI both surface.
    """
    fractions = profile.get("fractions", {})
    undecided = float(fractions.get("undecided", 0.0))
    refined = float(fractions.get("refined", 0.0))
    fraction = undecided + refined
    return {
        "undecided_refined_fraction": fraction,
        "threshold": float(threshold),
        "poor": fraction > float(threshold),
    }


@dataclass
class AutoTuner:
    """Offline candidate enumeration + scoring over one ``(P, W)`` pair.

    Pure and deterministic under a pinned ``seed``: the probe workload
    is sampled from the product set, every candidate is built and
    replayed on it, and the winner must *measure* better — the model
    prediction is reported but never overrides a measurement.
    """

    products: ProductSet
    weights: WeightSet
    k: int = 10
    probe_queries: int = DEFAULT_PROBE_QUERIES
    seed: int = DEFAULT_SEED
    epsilons: Sequence[float] = DEFAULT_EPSILONS
    boundaries: Sequence[str] = BOUNDARY_KINDS
    use_domin_options: Sequence[bool] = (True,)
    tile_schedules: Sequence = ((DEFAULT_W_BLOCK, DEFAULT_P_BLOCK),)
    current: Optional[CandidateConfig] = None
    kinds: Sequence[str] = ("rtk",)
    _queries: Optional[List[np.ndarray]] = field(default=None, repr=False)

    def __post_init__(self):
        if int(self.k) < 1:
            raise InvalidParameterError("k must be positive")
        if int(self.probe_queries) < 1:
            raise InvalidParameterError("probe_queries must be positive")
        if self.current is None:
            self.current = default_config()

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------

    def candidate_partitions(self) -> List[int]:
        """Partition ladder: the current ``n``, Theorem-1 picks, and one
        doubling step.

        The model's recommendation assumes uniform data (Lemma 1); on
        clustered data it routinely sits *below* the current ``n`` even
        while filtering is poor, so the ladder always includes
        ``2 * current`` (capped) to give the measured probe a
        hill-climbing direction the model cannot suggest.
        """
        d = int(self.products.dim)
        current = int(self.current.partitions)
        ns = {current, min(512, 2 * current)}
        for epsilon in self.epsilons:
            ns.add(recommend_partitions(d, float(epsilon)))
        return sorted(ns)

    def candidates(self) -> List[CandidateConfig]:
        """The full (deduplicated) candidate grid, current config first."""
        seen = {}
        ordered: List[CandidateConfig] = []

        def add(config: CandidateConfig) -> None:
            key = config.short()
            if key not in seen:
                seen[key] = config
                ordered.append(config)

        add(self.current)
        for n in self.candidate_partitions():
            for kind in self.boundaries:
                for use_domin in self.use_domin_options:
                    for w_block, p_block in self.tile_schedules:
                        add(CandidateConfig(
                            partitions=n, boundaries=kind,
                            w_block=int(w_block), p_block=int(p_block),
                            use_domin=bool(use_domin),
                            filter_dtype=self.current.filter_dtype,
                        ))
        return ordered

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def probe_workload(self) -> List[np.ndarray]:
        """The pinned-seed probe queries (sampled once, shared by every
        candidate so scores are comparable)."""
        if self._queries is None:
            from ..obs.profile import sample_queries

            self._queries = sample_queries(
                self.products, int(self.probe_queries), seed=int(self.seed)
            )
        return self._queries

    def score(self, config: CandidateConfig) -> dict:
        """Build one candidate and measure it on the probe workload."""
        from ..bench.harness import probe_filter_profile

        kernel = build_tuned_kernel(self.products, self.weights, config)
        measured = probe_filter_profile(
            kernel, self.probe_workload(), k=int(self.k),
            kinds=tuple(self.kinds),
        )
        predicted = worst_case_filtering(int(self.products.dim),
                                         int(config.partitions))
        return {
            "config": config.as_dict(),
            "label": config.label(),
            "short": config.short(),
            "predicted_worst_case_filtering": predicted,
            "measured": measured,
        }

    @staticmethod
    def _score_key(entry: dict):
        """Ranking: lowest undecided+refined fraction, then filter wall
        time, then the model's prediction (descending F) as tie-break."""
        measured = entry["measured"]
        return (
            round(measured["undecided_refined_fraction"], 6),
            round(measured["filter_s"], 6),
            -entry["predicted_worst_case_filtering"],
        )

    def tune(self) -> dict:
        """Enumerate, score, rank, and verify the winner.

        Returns a JSON-ready report: every candidate's score, the
        baseline (current config), the winner, its measured improvement
        over the baseline, and the byte-identity verdict.  The winner is
        *never* reported verified unless it matched ``NaiveRRQ`` on the
        whole probe workload, both query kinds.
        """
        scored = [self.score(config) for config in self.candidates()]
        by_key = sorted(scored, key=self._score_key)
        winner = by_key[0]
        baseline = next(s for s in scored
                        if s["short"] == self.current.short())
        improvement = (
            baseline["measured"]["undecided_refined_fraction"]
            - winner["measured"]["undecided_refined_fraction"]
        )
        winner_config = CandidateConfig.from_dict(winner["config"])
        kernel = build_tuned_kernel(self.products, self.weights,
                                    winner_config)
        verified = verify_against_naive(
            kernel, self.products, self.weights, self.probe_workload(),
            int(self.k),
        )
        return {
            "schema": 1,
            "seed": int(self.seed),
            "k": int(self.k),
            "probe_queries": int(self.probe_queries),
            "dim": int(self.products.dim),
            "n_products": int(self.products.size),
            "n_weights": int(self.weights.size),
            "candidates": scored,
            "baseline": baseline,
            "winner": winner,
            "improvement": improvement,
            "verified": bool(verified),
        }

    def build_winner(self, report: dict) -> GirKernelRRQ:
        """Materialize the report's winning config as a fresh kernel."""
        config = CandidateConfig.from_dict(report["winner"]["config"])
        return build_tuned_kernel(self.products, self.weights, config)


def format_tune_report(report: dict) -> str:
    """Human-readable ``repro-rrq tune`` output (aligned with ``model``)."""
    lines = [
        f"tuned over {report['probe_queries']} probe queries "
        f"(k={report['k']}, seed={report['seed']}) on "
        f"|P|={report['n_products']:,} |W|={report['n_weights']:,} "
        f"d={report['dim']}",
        "",
        f"{'config':<24s} {'undec+ref':>10s} {'filter_s':>9s} "
        f"{'model F':>8s}",
    ]
    for entry in sorted(report["candidates"], key=AutoTuner._score_key):
        measured = entry["measured"]
        marker = ""
        if entry["short"] == report["winner"]["short"]:
            marker = "  <- winner"
        elif entry["short"] == report["baseline"]["short"]:
            marker = "  (current)"
        lines.append(
            f"{entry['label']:<24s} "
            f"{measured['undecided_refined_fraction']:>9.2%} "
            f"{measured['filter_s']:>9.4f} "
            f"{entry['predicted_worst_case_filtering']:>8.4f}"
            f"{marker}"
        )
    lines.append("")
    lines.append(f"improvement (undecided+refined): "
                 f"{report['improvement']:+.2%}")
    lines.append(f"winner verified vs naive oracle: "
                 f"{'yes' if report['verified'] else 'NO'}")
    return "\n".join(lines)
