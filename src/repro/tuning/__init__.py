"""Workload-adaptive auto-tuning (the paper's §7 future-work loop).

:mod:`repro.tuning.tuner` is the pure offline engine — candidate
enumeration over grid partitions / boundary families / kernel tiles,
model-plus-measured scoring, and the mandatory byte-identity check
against the naive oracle.  :mod:`repro.tuning.service` wires it into a
live :class:`~repro.service.server.QueryService` with trigger detection
and the zero-downtime hot-swap.
"""

from .service import (
    DEFAULT_MIN_IMPROVEMENT,
    DEFAULT_TUNE_THRESHOLD,
    ServiceTuner,
)
from .tuner import (
    AutoTuner,
    CandidateConfig,
    build_tuned_kernel,
    default_config,
    format_tune_report,
    poor_filtering,
    verify_against_naive,
)

__all__ = [
    "AutoTuner",
    "CandidateConfig",
    "ServiceTuner",
    "DEFAULT_TUNE_THRESHOLD",
    "DEFAULT_MIN_IMPROVEMENT",
    "build_tuned_kernel",
    "default_config",
    "format_tune_report",
    "poor_filtering",
    "verify_against_naive",
]
