"""Serving-side auto-tuning: trigger, probe, and zero-downtime hot-swap.

:class:`ServiceTuner` closes the loop around one
:class:`~repro.service.server.QueryService`:

* **trigger** — the live ``KernelStats`` tallies folded into
  ``/metrics`` give the serving undecided+refined fraction; the tuner
  fires only when it crosses the threshold (or on an explicit
  ``POST /tuner`` / ``repro-rrq tune``-style force).
* **probe** — the engine's datasets are materialized (for MVCC engines
  through a *pinned snapshot*, so the copy is consistent and mutations
  keep flowing) and handed to the offline
  :class:`~repro.tuning.tuner.AutoTuner`.
* **swap** — only a winner that measured better by at least
  ``min_improvement`` *and* proved byte-identical to ``NaiveRRQ`` on
  the probe workload is allowed to serve:

  - static engines: the scheduler's batch-path kernel is replaced by a
    single reference assignment
    (:meth:`~repro.service.scheduler.MicroBatchScheduler.swap_kernel`);
    in-flight micro-batches finish on the old kernel, the next batch
    sees the new one — no lock, no downtime.
  - MVCC engines: ``engine.snapshot()`` seals the delta and flips the
    CURRENT manifest (the PR-8 path), then the scheduler adopts the
    tuned config for its snapshot kernels; pinned snapshots keep
    in-flight batches on the old generation.

  Either way the result cache is invalidated after the flip — its
  generation keying drops any in-flight put that raced the swap.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from ..data.datasets import ProductSet, WeightSet
from .tuner import (
    DEFAULT_PROBE_QUERIES,
    DEFAULT_SEED,
    AutoTuner,
    CandidateConfig,
    default_config,
    poor_filtering,
)

__all__ = ["ServiceTuner", "DEFAULT_TUNE_THRESHOLD",
           "DEFAULT_MIN_IMPROVEMENT"]

#: Undecided+refined fraction above which the trigger fires.
DEFAULT_TUNE_THRESHOLD = 0.35

#: Minimum measured improvement a winner needs to earn a swap.
DEFAULT_MIN_IMPROVEMENT = 0.01


class ServiceTuner:
    """One service's workload-adaptive tuning loop.

    Runs inline (``run_once``; the ``POST /tuner`` handler) or on its
    own daemon thread (``interval_s > 0``; ``serve --auto-tune``).  All
    tuning work happens under one lock off the dispatcher thread, so at
    most one rebuild is in flight and serving latency never pays for
    candidate scoring.
    """

    def __init__(self, service, threshold: float = DEFAULT_TUNE_THRESHOLD,
                 min_improvement: float = DEFAULT_MIN_IMPROVEMENT,
                 probe_queries: int = DEFAULT_PROBE_QUERIES,
                 interval_s: float = 0.0, seed: int = DEFAULT_SEED,
                 k: int = 10):
        self.service = service
        self.threshold = float(threshold)
        self.min_improvement = float(min_improvement)
        self.probe_queries = int(probe_queries)
        self.interval_s = float(interval_s)
        self.seed = int(seed)
        self.k = int(k)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._current: Optional[CandidateConfig] = None
        self._last_report: Optional[dict] = None
        self._last_status = "idle"
        self._runs = 0
        self._swaps = 0

    # ------------------------------------------------------------------
    # trigger
    # ------------------------------------------------------------------

    def serving_fraction(self) -> Optional[float]:
        """The live undecided+refined fraction from the metrics tallies.

        ``None`` until the kernel has classified at least one pair —
        a cold service has nothing to tune on.
        """
        kernel = self.service.metrics.snapshot()["kernel"]
        pairs = kernel["pairs"]
        total = int(pairs.get("total", 0))
        if total <= 0:
            return None
        undecided = max(0, total - int(pairs.get("case1", 0))
                        - int(pairs.get("case2", 0)))
        return (undecided + int(pairs.get("refined", 0))) / total

    def should_tune(self) -> Optional[dict]:
        """The trigger verdict (``None`` before any kernel traffic)."""
        fraction = self.serving_fraction()
        if fraction is None:
            return None
        return poor_filtering(
            {"fractions": {"undecided": fraction, "refined": 0.0}},
            threshold=self.threshold,
        )

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------

    def _datasets(self):
        """A consistent ``(ProductSet, WeightSet)`` copy of the engine.

        MVCC engines are read through a pinned snapshot (released before
        returning — the tuner holds plain copies, never pins, so it can
        never stall compaction).  ``None`` when the engine exposes no
        tunable dataset (flat dynamic backend, or an empty side).
        """
        engine = self.service.engine
        pin = getattr(engine, "pin_snapshot", None)
        if pin is not None:
            snap = pin()
            if snap is None:
                return None
            try:
                p_rows, _ = snap.live_products()
                w_rows, _ = snap.live_weights()
                if p_rows.shape[0] == 0 or w_rows.shape[0] == 0:
                    return None
                products = ProductSet(
                    np.array(p_rows, dtype=np.float64, copy=True),
                    value_range=snap.value_range,
                )
                weights = WeightSet(
                    np.array(w_rows, dtype=np.float64, copy=True)
                )
            finally:
                snap.release()
            return products, weights
        products = getattr(engine, "products", None)
        weights = getattr(engine, "weights", None)
        if isinstance(products, ProductSet) and isinstance(weights,
                                                           WeightSet):
            return products, weights
        return None

    def _current_config(self) -> CandidateConfig:
        """The config serving right now (baseline for scoring)."""
        if self._current is not None:
            return self._current
        algorithm = getattr(self.service.engine, "algorithm",
                            self.service.engine)
        try:
            partitions = getattr(algorithm, "partitions", None)
            if partitions is None:
                partitions = getattr(getattr(algorithm, "grid", None),
                                     "partitions", None)
            if partitions:
                return CandidateConfig(
                    partitions=int(partitions),
                    use_domin=bool(getattr(algorithm, "use_domin", True)),
                )
        except Exception:
            pass
        return default_config()

    # ------------------------------------------------------------------
    # the loop body
    # ------------------------------------------------------------------

    def run_once(self, force: bool = False) -> dict:
        """One detect → enumerate/score → verify → swap pass.

        With ``force`` the trigger check is skipped (the ``POST /tuner``
        default — an operator asking for a run means it).  Returns a
        JSON-ready outcome dict; the full report is kept for ``status``.
        """
        with self._lock:
            self._runs += 1
            trigger = self.should_tune()
            if not force and (trigger is None or not trigger["poor"]):
                self._last_status = "skipped"
                self.service.metrics.record_tuner(
                    "skipped",
                    fraction=(trigger or {}).get(
                        "undecided_refined_fraction"),
                )
                return {"status": "skipped", "trigger": trigger}
            datasets = self._datasets()
            if datasets is None:
                self._last_status = "skipped"
                self.service.metrics.record_tuner("skipped")
                return {"status": "skipped",
                        "reason": "engine exposes no tunable dataset"}
            products, weights = datasets
            current = self._current_config()
            tuner = AutoTuner(
                products, weights, k=self.k,
                probe_queries=self.probe_queries, seed=self.seed,
                current=current,
            )
            report = tuner.tune()
            winner = CandidateConfig.from_dict(report["winner"]["config"])
            swap = (
                report["verified"]
                and report["improvement"] >= self.min_improvement
                and winner.short() != current.short()
            )
            if swap:
                self._swap(tuner, report, winner)
                self._swaps += 1
                status = "swapped"
            else:
                status = "rejected"
            served = report["winner"] if swap else report["baseline"]
            fraction = served["measured"]["undecided_refined_fraction"]
            self._last_status = status
            self._last_report = report
            self.service.metrics.record_tuner(
                status, improvement=report["improvement"],
                fraction=fraction,
            )
            return {
                "status": status,
                "trigger": trigger,
                "improvement": report["improvement"],
                "verified": report["verified"],
                "winner": report["winner"]["config"],
                "winner_label": report["winner"]["label"],
                "baseline_label": report["baseline"]["label"],
                "undecided_refined_fraction": fraction,
            }

    def _swap(self, tuner: AutoTuner, report: dict,
              winner: CandidateConfig) -> None:
        """Flip the verified winner in with zero downtime."""
        engine = self.service.engine
        scheduler = self.service.scheduler
        if getattr(engine, "pin_snapshot", None) is not None:
            # MVCC path: seal the delta and flip CURRENT so a fresh
            # generation exists, then rebuild snapshot kernels under the
            # tuned config.  Pinned snapshots keep in-flight batches on
            # the old generation until they release.
            engine.snapshot()
            scheduler.set_snapshot_tuning(winner)
        else:
            scheduler.swap_kernel(tuner.build_winner(report), winner)
        self._current = winner
        # Generation keying makes any in-flight put racing this flip
        # land dead: it carries the pre-invalidate generation.
        self.service.cache.invalidate()

    # ------------------------------------------------------------------
    # background thread
    # ------------------------------------------------------------------

    def start(self) -> "ServiceTuner":
        """Start the periodic loop (no-op unless ``interval_s > 0``)."""
        if self.interval_s > 0 and self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="rrq-tuner", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.run_once(force=False)
            except Exception:
                # A failed tuning pass must never take serving down.
                self.service.metrics.record_tuner("rejected")

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """The ``GET /tuner`` body."""
        trigger = self.should_tune()
        body = {
            "enabled": True,
            "auto": self.interval_s > 0,
            "interval_s": self.interval_s,
            "threshold": self.threshold,
            "min_improvement": self.min_improvement,
            "probe_queries": self.probe_queries,
            "seed": self.seed,
            "runs": self._runs,
            "swaps": self._swaps,
            "last_status": self._last_status,
            "trigger": trigger,
            "current_config": (self._current.as_dict()
                               if self._current is not None else None),
        }
        report = self._last_report
        if report is not None:
            body["last_report"] = {
                "improvement": report["improvement"],
                "verified": report["verified"],
                "winner": report["winner"]["config"],
                "winner_label": report["winner"]["label"],
                "baseline_label": report["baseline"]["label"],
                "candidates": len(report["candidates"]),
            }
        return body
